//! # ccsim
//!
//! A trace-driven cache-hierarchy simulation suite reproducing
//! *"Characterizing the impact of last-level cache replacement policies on
//! big-data workloads"* (IISWC 2020).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trace`] — trace records, the instrumented-execution arena, synthetic
//!   pattern generators and trace statistics;
//! * [`graph`] — CSR graphs, GAP input-graph generators and the six GAP
//!   kernels (reference + instrumented);
//! * [`policies`] — LRU, SRRIP, BRRIP, DRRIP, SHiP, Hawkeye, Glider, MPPPB
//!   and friends behind ChampSim-style hooks, plus an offline Belady
//!   oracle;
//! * [`core`] — the cache-hierarchy simulator (Cascade Lake-like core,
//!   three cache levels, DDR4 DRAM) and the experiment harness;
//! * [`workloads`] — the four benchmark suites of the paper (GAP, SPEC-,
//!   XSBench- and Qualcomm-like proxies);
//! * [`ingest`] — streaming ingestion of external simulator traces
//!   (ChampSim, CVP) into the native `CCTR` format;
//! * [`campaign`] — declarative, resumable experiment campaigns with an
//!   on-disk trace cache (synthetic and ingested), dry-run planning,
//!   deterministic JSON/CSV reports and cross-campaign diffing;
//! * [`dist`] — coordinator-free distributed campaign execution:
//!   lease-based workload-band claiming over a shared filesystem (each
//!   claim is one one-pass grid replay), per-worker journal segments,
//!   crash healing, and byte-identical report assembly from any worker
//!   set;
//! * [`obs`] — the zero-allocation telemetry core: a process-wide
//!   metric catalog (sharded counters, gauges, log-bucketed
//!   histograms with quantile summaries, span timers) feeding per-run
//!   JSONL event logs, run manifests and Prometheus-style exposition,
//!   all consumed by `ccsim campaign watch`;
//! * [`trends`] — the cross-revision performance ledger behind
//!   `ccsim trends`: append-only `trends.jsonl` entries distilled
//!   from bench reports, report diffs and obs manifests, deterministic
//!   trend tables with sparklines, and rolling-median regression gates.
//!
//! # Quickstart
//!
//! ```
//! use ccsim::prelude::*;
//!
//! // Build a graph workload trace and compare two LLC policies.
//! let g = ccsim::graph::generators::kronecker(10, 8, 42);
//! let (trace, _) = ccsim::graph::traced::bfs(&g, 0);
//! let config = SimConfig::cascade_lake();
//! let lru = simulate(&trace, &config, PolicyKind::Lru);
//! let hawkeye = simulate(&trace, &config, PolicyKind::Hawkeye);
//! println!("hawkeye speedup over lru: {:+.2}%", hawkeye.speedup_over(&lru));
//! ```

#![warn(missing_docs)]

pub use ccsim_campaign as campaign;
pub use ccsim_core as core;
pub use ccsim_dist as dist;
pub use ccsim_graph as graph;
pub use ccsim_ingest as ingest;
pub use ccsim_obs as obs;
pub use ccsim_policies as policies;
pub use ccsim_trace as trace;
pub use ccsim_trends as trends;
pub use ccsim_workloads as workloads;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use ccsim_campaign::{Campaign, CampaignReport, CampaignSpec, TraceCache};
    pub use ccsim_core::{
        geomean, geomean_speedup_percent, simulate, simulate_grid, simulate_grid_stream,
        simulate_stream, simulate_with_llc_log, GridReplay, SimConfig, SimResult,
    };
    pub use ccsim_graph::Graph;
    pub use ccsim_ingest::{IngestOptions, SourceFormat};
    pub use ccsim_policies::{PolicyKind, ReplacementPolicy};
    pub use ccsim_trace::{Trace, TraceArena, TraceBuffer};
    pub use ccsim_workloads::{GapScale, GapWorkload, Suite, SuiteScale};
}
