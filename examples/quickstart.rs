//! Quickstart: build a workload trace, simulate it under two LLC
//! replacement policies on the paper's Cascade Lake configuration, and
//! compare the results.
//!
//! Run with `cargo run --release --example quickstart`.

use ccsim::prelude::*;

fn main() {
    // 1. Build a graph the way the paper's workloads do: a Kronecker
    //    (Graph500-style) power-law graph.
    let graph = ccsim::graph::generators::kronecker(14, 8, 42);
    println!("input: {graph}");

    // 2. Run the instrumented BFS kernel. Every load/store of the CSR
    //    arrays and property arrays is captured as a trace record.
    let (trace, parents) = ccsim::graph::traced::bfs(&graph, 0);
    let reached = parents.iter().filter(|&&p| p != u32::MAX).count();
    println!(
        "bfs reached {reached} vertices; trace: {} memory ops, {} instructions",
        trace.len(),
        trace.instructions()
    );

    // 3. Characterize the trace itself.
    let stats = ccsim::trace::stats::TraceStats::compute(&trace);
    println!(
        "trace signature: {} distinct PCs, {:.0} blocks per PC, {:.1} MB footprint",
        stats.distinct_pcs,
        stats.mean_blocks_per_pc,
        stats.footprint_bytes as f64 / (1 << 20) as f64
    );

    // 4. Simulate the Cascade Lake hierarchy under LRU and Hawkeye.
    let config = SimConfig::cascade_lake();
    println!("platform: {config}");
    let lru = simulate(&trace, &config, PolicyKind::Lru);
    let hawkeye = simulate(&trace, &config, PolicyKind::Hawkeye);

    println!(
        "LRU    : ipc {:.3}, MPKI l1d {:.1} / l2 {:.1} / llc {:.1}",
        lru.ipc(),
        lru.mpki_l1d(),
        lru.mpki_l2(),
        lru.mpki_llc()
    );
    println!(
        "Hawkeye: ipc {:.3}, llc MPKI {:.1}  ({:+.2}% speed-up over LRU)",
        hawkeye.ipc(),
        hawkeye.mpki_llc(),
        hawkeye.speedup_over(&lru)
    );
    println!("hawkeye diag: {}", hawkeye.llc_diag);
}
