//! Campaign end-to-end: parse a declarative spec, run the grid through
//! the cached, journaled executor, and read the machine-readable report —
//! then run it again to show that traces come from the cache and cells
//! resume from the journal.
//!
//! Run with `cargo run --release --example campaign`.

use ccsim::prelude::*;

const SPEC: &str = r#"{
    "name": "example",
    "scale": "quick",
    "base_config": "cascade_lake",
    "llc_scales": [1, 2],
    "workloads": ["xsbench.small", "bfs.kron"],
    "policies": ["lru", "srrip", "hawkeye"]
}"#;

fn main() {
    // 1. A campaign is data: this spec could equally live in campaigns/.
    let spec = CampaignSpec::from_json_str(SPEC).expect("spec parses");
    println!(
        "campaign {:?}: {} workloads x {} policies x {} configs",
        spec.name,
        spec.expand_workloads().unwrap().len(),
        spec.policies.len(),
        spec.llc_scales.len()
    );

    let dir = std::env::temp_dir().join(format!("ccsim_example_campaign_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journal = dir.join("journal.jsonl");

    // 2. First run: every trace is generated (cache misses) and every
    //    cell is simulated, checkpointed to the journal as it completes.
    let first = Campaign::new(spec.clone())
        .threads(4)
        .cache(TraceCache::new(dir.join("traces")).expect("cache dir"))
        .journal(&journal)
        .run()
        .expect("campaign runs");
    println!(
        "first run : {} cells simulated, cache {} hit(s) / {} miss(es)",
        first.cells_total - first.cells_resumed,
        first.cache_hits,
        first.cache_misses
    );

    // 3. Second run: the journal already has every cell, so nothing is
    //    simulated and no trace is even loaded. An interrupted run would
    //    land in between: only missing cells re-simulate, and their
    //    traces come from the cache.
    let second = Campaign::new(spec)
        .threads(4)
        .cache(TraceCache::new(dir.join("traces")).expect("cache dir"))
        .journal(&journal)
        .run()
        .expect("campaign resumes");
    println!(
        "second run: {} cells resumed from journal, cache {} hit(s) / {} miss(es)",
        second.cells_resumed, second.cache_hits, second.cache_misses
    );
    assert_eq!(second.cells_resumed, second.cells_total);
    assert_eq!(
        first.report.to_json_string(),
        second.report.to_json_string(),
        "resumed report must be byte-identical"
    );

    // 4. The report is deterministic JSON/CSV plus the paper's tables.
    println!("\nper-cell metrics:\n{}", second.report.cells_table().render());
    println!("speed-up over LRU by suite (baseline LLC):");
    println!("{}", second.report.speedup_by_suite_table("llc_x1").render());
    let json = second.report.to_json_string();
    println!(
        "report.json is {} bytes of schema v{} JSON",
        json.len(),
        ccsim::campaign::REPORT_SCHEMA_VERSION
    );

    let _ = std::fs::remove_dir_all(&dir);
}
