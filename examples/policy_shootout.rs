//! Policy shootout: pit every implemented replacement policy against each
//! other on two contrasting workloads — a PC-predictable SPEC-like mix
//! where learned policies shine, and a graph kernel where they do not.
//! This is the paper's Figure 3 contrast in miniature.
//!
//! Run with `cargo run --release --example policy_shootout`.

use ccsim::prelude::*;
use ccsim::workloads::{spec_suite, GapGraph, GapKernel};

fn shootout(name: &str, trace: &Trace, config: &SimConfig) {
    let lru = simulate(trace, config, PolicyKind::Lru);
    println!(
        "\n{name}: {} memory ops, LRU ipc {:.3}, LLC hit rate {:.1}%",
        trace.len(),
        lru.ipc(),
        100.0 * lru.llc.hit_rate()
    );
    println!("{:<10} {:>10} {:>12} {:>12}", "policy", "ipc", "llc_hit_%", "vs_lru_%");
    for kind in PolicyKind::ALL {
        let r = simulate(trace, config, kind);
        println!(
            "{:<10} {:>10.3} {:>12.1} {:>+12.2}",
            kind.name(),
            r.ipc(),
            100.0 * r.llc.hit_rate(),
            r.speedup_over(&lru)
        );
    }
}

fn main() {
    let config = SimConfig::cascade_lake();

    // A SPEC-like workload with learnable per-PC behaviour.
    let spec = &spec_suite(SuiteScale::Quick)[1]; // the blocked-loop mix
    shootout(spec.name(), spec, &config);

    // A graph workload: few PCs, enormous per-PC footprints.
    let gap = GapWorkload { kernel: GapKernel::Pr, graph: GapGraph::Kron };
    let trace = gap.trace(GapScale::Quick);
    shootout(&gap.to_string(), &trace, &config);

    println!(
        "\nNote the contrast the paper reports: predictors that separate \
         PCs cleanly on SPEC-class code lose their edge when every PC maps \
         to millions of addresses."
    );
}
