//! GAP characterization walkthrough: reproduce a slice of the paper's
//! Figure 2 — per-level MPKI for one kernel across all six input-graph
//! classes — at a reduced scale that runs in seconds.
//!
//! Run with `cargo run --release --example gap_characterization`.

use ccsim::prelude::*;
use ccsim::workloads::{GapGraph, GapKernel};

fn main() {
    let config = SimConfig::cascade_lake();
    println!("BFS across the six GAP input-graph classes (quick scale)\n");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>9} {:>7}",
        "graph", "L1D", "L2C", "LLC", "reach_%", "ipc"
    );
    for graph in GapGraph::ALL {
        let workload = GapWorkload { kernel: GapKernel::Bfs, graph };
        let trace = workload.trace(GapScale::Quick);
        let r = simulate(&trace, &config, PolicyKind::Lru);
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>7.3}",
            graph.name(),
            r.mpki_l1d(),
            r.mpki_l2(),
            r.mpki_llc(),
            100.0 * r.dram_reach_fraction(),
            r.ipc()
        );
    }
    println!(
        "\nThe paper's observation: graph inputs with power-law structure \
         (kron, twitter, friendster, urand) miss at every level, while the \
         high-diameter road network retains locality. Run \
         `cargo run --release -p ccsim-bench --bin fig2` for the full grid."
    );
}
