//! External-trace ingestion end-to-end: fabricate a ChampSim instruction
//! trace with the fixture encoder, stream-convert it to the native
//! `CCTR` format, inspect the conversion report, and drive the simulator
//! and a campaign with the result — including the content-addressed
//! cache that makes the second conversion free.
//!
//! Run with `cargo run --release --example ingest`.

use std::fs::File;
use std::io::BufWriter;

use ccsim::campaign::{Campaign, CampaignSpec, TraceCache};
use ccsim::ingest::champsim::{ChampSimRecord, ChampSimWriter};
use ccsim::ingest::ingest_file;
use ccsim::prelude::*;
use ccsim::trace::read_trace;

fn main() {
    let dir = std::env::temp_dir().join(format!("ccsim_example_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Fabricate a foreign trace: 40k ChampSim instructions walking a
    //    64 KiB ring with a pointer-chase flavored store stream. In real
    //    use this file comes from ChampSim's tracer, not from us.
    let source = dir.join("ring.champsim");
    let mut w = ChampSimWriter::new(BufWriter::new(File::create(&source).expect("source file")));
    for i in 0..10_000u64 {
        let pc = 0x40_0000 + 4 * (i % 64);
        w.write(&ChampSimRecord::nonmem(pc)).unwrap();
        w.write(&ChampSimRecord::branch(pc + 4, i % 5 == 0)).unwrap();
        w.write(&ChampSimRecord::load(pc + 8, 0x1000_0000 + 64 * (i % 1024))).unwrap();
        w.write(&ChampSimRecord::store(pc + 12, 0x2000_0000 + 64 * (i % 128))).unwrap();
    }
    drop(w);

    // 2. Stream-convert it (auto-detected format). Multi-gigabyte inputs
    //    flow through the same path without ever materializing.
    let converted = dir.join("ring.cctr");
    let report = ingest_file(&source, &converted, &Default::default()).expect("ingest");
    println!("ingested: {}", report.summary());

    // 3. The result is a first-class ccsim trace.
    let trace = read_trace(File::open(&converted).expect("open")).expect("decode");
    let result = simulate(&trace, &SimConfig::cascade_lake(), PolicyKind::Hawkeye);
    println!(
        "{}: ipc {:.3}, llc mpki {:.2} under hawkeye",
        trace.name(),
        result.ipc(),
        result.mpki_llc()
    );

    // 4. Campaigns reference foreign traces directly via `trace:`
    //    selectors; the trace cache keys on the file's content digest,
    //    so the conversion happens exactly once.
    let spec = CampaignSpec::from_json_str(&format!(
        r#"{{"name": "ingest_example",
             "workloads": ["trace:{}"],
             "policies": ["lru", "srrip", "hawkeye"]}}"#,
        source.display()
    ))
    .expect("spec parses");
    let cache = || TraceCache::new(dir.join("traces")).expect("cache dir");
    let first = Campaign::new(spec.clone()).threads(4).cache(cache()).run().expect("run");
    println!("\n{}", first.report.cells_table().render());
    let second = Campaign::new(spec).threads(4).cache(cache()).run().expect("rerun");
    println!(
        "first run: {} ingest miss(es); second run: {} cache hit(s), 0 conversions",
        first.cache_misses, second.cache_hits
    );
    assert_eq!(second.cache_misses, 0);

    std::fs::remove_dir_all(&dir).ok();
}
