//! Reuse-distance analysis: compute stack-distance profiles for
//! contrasting access patterns and read off what cache capacity each
//! workload would need — the cache-size-independent locality view that
//! explains the paper's MPKI results.
//!
//! Run with `cargo run --release --example reuse_distance`.

use ccsim::prelude::*;
use ccsim::trace::stats::ReuseProfile;
use ccsim::trace::synth::{PatternGen, PointerChase, SequentialStream};
use ccsim::workloads::{GapGraph, GapKernel};

/// Capacities (64 B blocks) bracketing the simulated hierarchy:
/// L1D = 512 blocks, L2 = 16 384, LLC = 22 528.
const CAPS: [u64; 5] = [512, 2048, 16_384, 32_768, 1 << 18];

fn profile(name: &str, trace: &Trace) {
    let p = ReuseProfile::compute(trace);
    print!("{name:<14} cold {:>5.1}% |", 100.0 * p.cold() as f64 / p.total().max(1) as f64);
    for c in CAPS {
        print!(" <{c:>6}: {:>5.1}%", 100.0 * p.hit_fraction_within(c));
    }
    println!();
}

fn main() {
    println!("Fraction of accesses a fully-associative LRU cache of the given");
    println!("block capacity would hit (L1D=512, L2=16384, LLC=22528 blocks):\n");

    // A tight loop: everything within a tiny working set.
    let mut hot = TraceBuffer::new("hot-loop");
    SequentialStream::new(0, 16 << 10).laps(20).emit(&mut hot);
    let hot = hot.finish();
    profile("hot-loop", &hot);

    // A pointer chase over 8 MB: reuse exists but only at huge distances.
    let mut chase = TraceBuffer::new("chase-8mb");
    PointerChase::new(0, 1 << 17, 64).steps(1 << 18).emit(&mut chase);
    let chase = chase.finish();
    profile("chase-8mb", &chase);

    // A real graph kernel.
    let gap = GapWorkload { kernel: GapKernel::Bfs, graph: GapGraph::Kron };
    let trace = gap.trace(GapScale::Quick);
    profile("bfs.kron", &trace);

    println!(
        "\nGraph traversals sit between the extremes: some near reuse \
         (frontier, offsets) and a long tail far beyond any LLC — which is \
         why bigger caches and smarter policies both disappoint on them."
    );
}
