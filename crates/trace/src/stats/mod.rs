//! Trace-level characterization statistics.
//!
//! [`TraceStats`] summarizes a trace's instruction mix, footprint and PC
//! diversity — the quantities the paper uses to explain why PC-correlating
//! replacement policies fail on graph workloads. [`ReuseProfile`] captures
//! locality as an LRU stack-distance histogram.

mod fenwick;
mod reuse;

pub use fenwick::Fenwick;
pub use reuse::{ReuseProfile, ReuseProfileBuilder, EXACT_LIMIT};

use std::collections::{HashMap, HashSet};

use crate::{Trace, TraceRecord};

/// Summary statistics of a trace.
///
/// # Examples
///
/// ```
/// use ccsim_trace::{stats::TraceStats, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("t");
/// buf.nonmem(10);
/// buf.load(0x400, 0x0, 8);
/// buf.store(0x404, 0x40, 8);
/// let stats = TraceStats::compute(&buf.finish());
/// assert_eq!(stats.loads, 1);
/// assert_eq!(stats.stores, 1);
/// assert_eq!(stats.instructions, 12);
/// assert_eq!(stats.footprint_blocks, 2);
/// assert_eq!(stats.distinct_pcs, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total instructions (memory + non-memory).
    pub instructions: u64,
    /// Demand loads.
    pub loads: u64,
    /// Demand stores.
    pub stores: u64,
    /// Distinct 64-byte blocks touched.
    pub footprint_blocks: u64,
    /// Footprint in bytes (blocks x 64).
    pub footprint_bytes: u64,
    /// Distinct program counters issuing memory operations.
    pub distinct_pcs: u64,
    /// Mean distinct blocks addressed per PC.
    pub mean_blocks_per_pc: f64,
    /// Maximum distinct blocks addressed by any single PC.
    pub max_blocks_per_pc: u64,
}

impl TraceStats {
    /// Computes summary statistics over `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut b = TraceStatsBuilder::new();
        for r in trace {
            b.push(r);
        }
        b.finish(trace.trailing_nonmem())
    }

    /// An incremental builder, for characterizing a record stream in one
    /// pass without materializing it (see `ccsim ingest --stats`).
    pub fn builder() -> TraceStatsBuilder {
        TraceStatsBuilder::new()
    }

    /// Memory operations per kilo-instruction, a density measure.
    pub fn mem_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 * 1000.0 / self.instructions as f64
    }
}

/// Streaming accumulator behind [`TraceStats::compute`].
///
/// Feed every record of a stream through [`TraceStatsBuilder::push`] in
/// order, then call [`TraceStatsBuilder::finish`] with the trailing
/// non-memory epilogue; the result is identical to running
/// [`TraceStats::compute`] over the materialized trace. Memory is bounded
/// by the footprint (distinct blocks and PCs), not the stream length.
///
/// # Examples
///
/// ```
/// use ccsim_trace::{stats::TraceStats, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("t");
/// buf.nonmem(10);
/// buf.load(0x400, 0x0, 8);
/// let trace = buf.finish();
/// let mut b = TraceStats::builder();
/// for r in &trace {
///     b.push(r);
/// }
/// assert_eq!(b.finish(trace.trailing_nonmem()), TraceStats::compute(&trace));
/// ```
#[derive(Debug, Default)]
pub struct TraceStatsBuilder {
    blocks: HashSet<u64>,
    per_pc: HashMap<u64, HashSet<u64>>,
    loads: u64,
    stores: u64,
    nonmem: u64,
}

impl TraceStatsBuilder {
    /// An empty accumulator.
    pub fn new() -> TraceStatsBuilder {
        TraceStatsBuilder::default()
    }

    /// Accounts one record (its memory operation plus the non-memory
    /// instructions preceding it).
    pub fn push(&mut self, r: &TraceRecord) {
        let b = r.block();
        self.blocks.insert(b);
        self.per_pc.entry(r.pc).or_default().insert(b);
        if r.kind.is_store() {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
        self.nonmem += r.nonmem_before as u64;
    }

    /// Finalizes the statistics; `trailing_nonmem` is the non-memory
    /// epilogue after the last record ([`Trace::trailing_nonmem`]).
    pub fn finish(self, trailing_nonmem: u64) -> TraceStats {
        let distinct_pcs = self.per_pc.len() as u64;
        let (sum, max) = self
            .per_pc
            .values()
            .fold((0u64, 0u64), |(s, m), v| (s + v.len() as u64, m.max(v.len() as u64)));
        TraceStats {
            instructions: self.loads + self.stores + self.nonmem + trailing_nonmem,
            loads: self.loads,
            stores: self.stores,
            footprint_blocks: self.blocks.len() as u64,
            footprint_bytes: self.blocks.len() as u64 * crate::BLOCK_BYTES,
            distinct_pcs,
            mean_blocks_per_pc: if distinct_pcs == 0 {
                0.0
            } else {
                sum as f64 / distinct_pcs as f64
            },
            max_blocks_per_pc: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    #[test]
    fn pc_diversity_accounting() {
        let mut b = TraceBuffer::new("t");
        // PC 1 touches 3 blocks; PC 2 touches 1 block.
        for blk in [0u64, 1, 2] {
            b.load(1, blk * 64, 8);
        }
        b.load(2, 0, 8);
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.distinct_pcs, 2);
        assert_eq!(s.max_blocks_per_pc, 3);
        assert!((s.mean_blocks_per_pc - 2.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_counts_blocks_not_accesses() {
        let mut b = TraceBuffer::new("t");
        for _ in 0..100 {
            b.load(1, 128, 8);
        }
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.footprint_blocks, 1);
        assert_eq!(s.footprint_bytes, 64);
        assert_eq!(s.loads, 100);
    }

    #[test]
    fn mem_density() {
        let mut b = TraceBuffer::new("t");
        b.nonmem(999);
        b.load(1, 0, 8);
        let s = TraceStats::compute(&b.finish());
        assert!((s.mem_per_kilo_instruction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = TraceStats::compute(&TraceBuffer::new("t").finish());
        assert_eq!(s.instructions, 0);
        assert_eq!(s.distinct_pcs, 0);
        assert_eq!(s.mean_blocks_per_pc, 0.0);
        assert_eq!(s.mem_per_kilo_instruction(), 0.0);
    }
}
