//! Trace-level characterization statistics.
//!
//! [`TraceStats`] summarizes a trace's instruction mix, footprint and PC
//! diversity — the quantities the paper uses to explain why PC-correlating
//! replacement policies fail on graph workloads. [`ReuseProfile`] captures
//! locality as an LRU stack-distance histogram.

mod fenwick;
mod reuse;

pub use fenwick::Fenwick;
pub use reuse::{ReuseProfile, EXACT_LIMIT};

use std::collections::{HashMap, HashSet};

use crate::Trace;

/// Summary statistics of a trace.
///
/// # Examples
///
/// ```
/// use ccsim_trace::{stats::TraceStats, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("t");
/// buf.nonmem(10);
/// buf.load(0x400, 0x0, 8);
/// buf.store(0x404, 0x40, 8);
/// let stats = TraceStats::compute(&buf.finish());
/// assert_eq!(stats.loads, 1);
/// assert_eq!(stats.stores, 1);
/// assert_eq!(stats.instructions, 12);
/// assert_eq!(stats.footprint_blocks, 2);
/// assert_eq!(stats.distinct_pcs, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total instructions (memory + non-memory).
    pub instructions: u64,
    /// Demand loads.
    pub loads: u64,
    /// Demand stores.
    pub stores: u64,
    /// Distinct 64-byte blocks touched.
    pub footprint_blocks: u64,
    /// Footprint in bytes (blocks x 64).
    pub footprint_bytes: u64,
    /// Distinct program counters issuing memory operations.
    pub distinct_pcs: u64,
    /// Mean distinct blocks addressed per PC.
    pub mean_blocks_per_pc: f64,
    /// Maximum distinct blocks addressed by any single PC.
    pub max_blocks_per_pc: u64,
}

impl TraceStats {
    /// Computes summary statistics over `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut blocks = HashSet::new();
        let mut per_pc: HashMap<u64, HashSet<u64>> = HashMap::new();
        let mut loads = 0u64;
        let mut stores = 0u64;
        for r in trace {
            let b = r.block();
            blocks.insert(b);
            per_pc.entry(r.pc).or_default().insert(b);
            if r.kind.is_store() {
                stores += 1;
            } else {
                loads += 1;
            }
        }
        let distinct_pcs = per_pc.len() as u64;
        let (sum, max) = per_pc
            .values()
            .fold((0u64, 0u64), |(s, m), v| (s + v.len() as u64, m.max(v.len() as u64)));
        TraceStats {
            instructions: trace.instructions(),
            loads,
            stores,
            footprint_blocks: blocks.len() as u64,
            footprint_bytes: blocks.len() as u64 * crate::BLOCK_BYTES,
            distinct_pcs,
            mean_blocks_per_pc: if distinct_pcs == 0 {
                0.0
            } else {
                sum as f64 / distinct_pcs as f64
            },
            max_blocks_per_pc: max,
        }
    }

    /// Memory operations per kilo-instruction, a density measure.
    pub fn mem_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 * 1000.0 / self.instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    #[test]
    fn pc_diversity_accounting() {
        let mut b = TraceBuffer::new("t");
        // PC 1 touches 3 blocks; PC 2 touches 1 block.
        for blk in [0u64, 1, 2] {
            b.load(1, blk * 64, 8);
        }
        b.load(2, 0, 8);
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.distinct_pcs, 2);
        assert_eq!(s.max_blocks_per_pc, 3);
        assert!((s.mean_blocks_per_pc - 2.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_counts_blocks_not_accesses() {
        let mut b = TraceBuffer::new("t");
        for _ in 0..100 {
            b.load(1, 128, 8);
        }
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.footprint_blocks, 1);
        assert_eq!(s.footprint_bytes, 64);
        assert_eq!(s.loads, 100);
    }

    #[test]
    fn mem_density() {
        let mut b = TraceBuffer::new("t");
        b.nonmem(999);
        b.load(1, 0, 8);
        let s = TraceStats::compute(&b.finish());
        assert!((s.mem_per_kilo_instruction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = TraceStats::compute(&TraceBuffer::new("t").finish());
        assert_eq!(s.instructions, 0);
        assert_eq!(s.distinct_pcs, 0);
        assert_eq!(s.mean_blocks_per_pc, 0.0);
        assert_eq!(s.mem_per_kilo_instruction(), 0.0);
    }
}
