//! Binary indexed tree over access timestamps, used for stack-distance
//! computation.

/// A Fenwick (binary indexed) tree of `u32` counters supporting point update
/// and prefix sum in `O(log n)`.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// Creates a tree over indices `0..n`, all zero.
    pub fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Capacity (largest index + 1).
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// `true` if the tree has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn add(&mut self, i: usize, delta: i32) {
        assert!(i < self.len(), "fenwick index out of range");
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of values at indices `0..=i`.
    pub fn prefix(&self, i: usize) -> u32 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s = 0u32;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the inclusive range `[lo, hi]`; zero when `lo > hi`.
    pub fn range(&self, lo: usize, hi: usize) -> u32 {
        if lo > hi {
            return 0;
        }
        let upper = self.prefix(hi);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix(lo - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_match_naive() {
        let mut f = Fenwick::new(10);
        let vals = [3, 0, 5, 1, 0, 2, 7, 0, 0, 4];
        for (i, &v) in vals.iter().enumerate() {
            f.add(i, v);
        }
        let mut acc = 0;
        for (i, &v) in vals.iter().enumerate() {
            acc += v as u32;
            assert_eq!(f.prefix(i), acc);
        }
    }

    #[test]
    fn range_queries() {
        let mut f = Fenwick::new(8);
        for i in 0..8 {
            f.add(i, 1);
        }
        assert_eq!(f.range(0, 7), 8);
        assert_eq!(f.range(3, 5), 3);
        assert_eq!(f.range(5, 3), 0);
        assert_eq!(f.range(7, 7), 1);
    }

    #[test]
    fn add_negative_removes() {
        let mut f = Fenwick::new(4);
        f.add(2, 5);
        f.add(2, -3);
        assert_eq!(f.range(2, 2), 2);
    }

    #[test]
    #[should_panic(expected = "fenwick index out of range")]
    fn out_of_range_add_panics() {
        let mut f = Fenwick::new(4);
        f.add(4, 1);
    }

    /// Randomized oracle: interleaved adds and queries against a naive
    /// O(n) array over several hundred operations.
    #[test]
    fn matches_naive_oracle_under_random_ops() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        const N: usize = 97; // deliberately not a power of two
        let mut rng = StdRng::seed_from_u64(0xFE2117);
        let mut fen = Fenwick::new(N);
        let mut naive = [0i64; N];
        for _ in 0..500 {
            let i = rng.gen_range(0..N);
            // Mix increments and (bounded) decrements like the reuse
            // profiler does, never driving a counter negative.
            let delta = if naive[i] > 0 && rng.gen_bool(0.3) { -1 } else { rng.gen_range(1..4) };
            naive[i] += delta;
            fen.add(i, delta as i32);

            let q = rng.gen_range(0..N);
            let expect: i64 = naive[..=q].iter().sum();
            assert_eq!(fen.prefix(q) as i64, expect, "prefix({q}) diverged");

            let (mut lo, mut hi) = (rng.gen_range(0..N), rng.gen_range(0..N));
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            let expect: i64 = naive[lo..=hi].iter().sum();
            assert_eq!(fen.range(lo, hi) as i64, expect, "range({lo}, {hi}) diverged");
        }
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Fenwick::new(10).len(), 10);
        assert!(Fenwick::new(0).is_empty());
        assert!(!Fenwick::new(1).is_empty());
    }
}
