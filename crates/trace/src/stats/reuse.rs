//! LRU stack-distance (reuse-distance) profiling.
//!
//! The reuse distance of an access is the number of *distinct* cache blocks
//! touched since the previous access to the same block. A fully-associative
//! LRU cache of `C` blocks hits exactly the accesses whose reuse distance is
//! `< C`, which makes the profile a cache-size-independent locality
//! signature — the right tool for explaining *why* graph workloads defeat a
//! 1.375 MB LLC.

use std::collections::HashMap;

use crate::stats::Fenwick;
use crate::Trace;

/// Distances below this bound are counted exactly; larger ones fall into
/// power-of-two buckets. 2^16 blocks = 4 MB of cache, comfortably above the
/// simulated LLC (22 528 blocks), so capacity questions about the modelled
/// hierarchy are answered exactly.
pub const EXACT_LIMIT: u64 = 1 << 16;

/// Reuse-distance histogram: exact counts for distances `< EXACT_LIMIT`,
/// power-of-two buckets beyond, plus cold (first-touch) misses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `exact[d]` = number of accesses with reuse distance exactly `d`.
    exact: Vec<u64>,
    /// `coarse[k]` = accesses with distance in `[2^k, 2^(k+1))`, for
    /// `2^k >= EXACT_LIMIT`.
    coarse: Vec<u64>,
    cold: u64,
    total: u64,
}

impl ReuseProfile {
    /// Computes the block-granular reuse profile of `trace`.
    ///
    /// Runs in `O(n log n)` time using the Fenwick-tree formulation of
    /// Mattson stack distances.
    pub fn compute(trace: &Trace) -> Self {
        let mut b = ReuseProfileBuilder::new();
        for rec in trace {
            b.push_block(rec.block());
        }
        b.finish()
    }

    /// An incremental builder over a block-id stream, for profiling a
    /// record stream in one pass without materializing it (see
    /// `ccsim ingest --stats`).
    pub fn builder() -> ReuseProfileBuilder {
        ReuseProfileBuilder::new()
    }

    /// Total profiled accesses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Accesses with finite reuse distance strictly less than `blocks` —
    /// i.e. the hit count of a fully-associative LRU cache of `blocks`
    /// blocks.
    ///
    /// Exact for `blocks <= EXACT_LIMIT`; beyond that the result is a lower
    /// bound that only counts coarse buckets lying entirely below `blocks`.
    pub fn hits_within(&self, blocks: u64) -> u64 {
        let exact_part: u64 = self.exact.iter().take(blocks.min(EXACT_LIMIT) as usize).sum();
        let coarse_part: u64 = self
            .coarse
            .iter()
            .enumerate()
            .filter(|&(k, _)| {
                // Bucket k covers [2^k, 2^(k+1)); include iff fully below.
                (1u64 << (k + 1)) - 1 < blocks
            })
            .map(|(_, &c)| c)
            .sum();
        exact_part + coarse_part
    }

    /// Fraction of all accesses (cold included in the denominator) that a
    /// fully-associative LRU cache of `blocks` blocks would hit.
    pub fn hit_fraction_within(&self, blocks: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.hits_within(blocks) as f64 / self.total as f64
    }

    /// Power-of-two CDF points: `(capacity_in_blocks, cumulative_fraction)`
    /// for capacities 1, 2, 4, ... up to the largest populated bucket.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        (0..40u32)
            .map(|k| {
                let c = 1u64 << k;
                (c, self.hit_fraction_within(c))
            })
            .collect()
    }

    /// Conservation check: exact + coarse + cold equals total.
    pub fn mass(&self) -> u64 {
        self.cold + self.exact.iter().sum::<u64>() + self.coarse.iter().sum::<u64>()
    }
}

/// Streaming accumulator behind [`ReuseProfile::compute`].
///
/// The Fenwick tree over access timestamps is grown by doubling as the
/// stream advances, rebuilding from the live last-occurrence positions
/// (one `1` per distinct block) — `O(log n)` amortized per access, with
/// memory bounded by the stream length like the batch computation.
///
/// # Examples
///
/// ```
/// use ccsim_trace::stats::ReuseProfile;
///
/// let mut b = ReuseProfile::builder();
/// for blk in [1u64, 2, 1, 2] {
///     b.push_block(blk);
/// }
/// let p = b.finish();
/// assert_eq!(p.cold(), 2);
/// assert_eq!(p.hits_within(2), 2);
/// ```
#[derive(Debug)]
pub struct ReuseProfileBuilder {
    fen: Fenwick,
    last: HashMap<u64, usize>,
    exact: Vec<u64>,
    coarse: Vec<u64>,
    cold: u64,
    t: usize,
}

impl Default for ReuseProfileBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ReuseProfileBuilder {
    /// An empty accumulator.
    pub fn new() -> ReuseProfileBuilder {
        ReuseProfileBuilder {
            fen: Fenwick::new(1024),
            last: HashMap::new(),
            exact: vec![0u64; EXACT_LIMIT as usize],
            coarse: vec![0u64; 48],
            cold: 0,
            t: 0,
        }
    }

    /// Accounts one access to the 64-byte block `block`
    /// ([`crate::TraceRecord::block`]).
    pub fn push_block(&mut self, block: u64) {
        let t = self.t;
        if t >= self.fen.len() {
            // Double the timestamp range, re-marking the single live `1`
            // per distinct block (the last occurrence); everything else is
            // zero by construction.
            let mut grown = Fenwick::new(self.fen.len() * 2);
            for &pos in self.last.values() {
                grown.add(pos, 1);
            }
            self.fen = grown;
        }
        match self.last.insert(block, t) {
            None => self.cold += 1,
            Some(prev) => {
                // Distinct blocks touched strictly between prev and t.
                let d = self.fen.range(prev + 1, t.saturating_sub(1)) as u64;
                if d < EXACT_LIMIT {
                    self.exact[d as usize] += 1;
                } else {
                    let k = (63 - d.leading_zeros() as usize).min(self.coarse.len() - 1);
                    self.coarse[k] += 1;
                }
                self.fen.add(prev, -1);
            }
        }
        self.fen.add(t, 1);
        self.t += 1;
    }

    /// Finalizes the profile.
    pub fn finish(self) -> ReuseProfile {
        ReuseProfile {
            exact: self.exact,
            coarse: self.coarse,
            cold: self.cold,
            total: self.t as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    fn trace_of_blocks(blocks: &[u64]) -> Trace {
        let mut b = TraceBuffer::new("t");
        for &blk in blocks {
            b.load(0x400, blk * 64, 8);
        }
        b.finish()
    }

    #[test]
    fn immediate_rereference_is_distance_zero() {
        let t = trace_of_blocks(&[1, 1, 1]);
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.cold(), 1);
        assert_eq!(p.hits_within(1), 2);
    }

    #[test]
    fn cyclic_scan_distance_equals_working_set_minus_one() {
        // Blocks 0..4 twice: second lap has distance 3 for each block.
        let t = trace_of_blocks(&[0, 1, 2, 3, 0, 1, 2, 3]);
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.cold(), 4);
        assert_eq!(p.mass(), 8);
        assert_eq!(p.hits_within(4), 4); // distance 3 < 4: all hit
        assert_eq!(p.hits_within(3), 0); // distance 3 >= 3: all miss
    }

    #[test]
    fn all_cold_when_no_reuse() {
        let t = trace_of_blocks(&[10, 20, 30, 40]);
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.cold(), 4);
        assert_eq!(p.hits_within(1 << 20), 0);
        assert_eq!(p.hit_fraction_within(1 << 20), 0.0);
    }

    #[test]
    fn duplicate_between_does_not_inflate_distance() {
        // a b b a : distance of final a is 1 distinct block (b), not 2.
        let t = trace_of_blocks(&[5, 6, 6, 5]);
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.hits_within(2), 2); // b at d=0, a at d=1
    }

    #[test]
    fn sub_block_accesses_coalesce() {
        // Two addresses in the same 64 B block are the same block.
        let mut b = TraceBuffer::new("t");
        b.load(1, 0, 8);
        b.load(1, 8, 8);
        let t = b.finish();
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.cold(), 1);
        assert_eq!(p.hits_within(1), 1);
    }

    #[test]
    fn mass_is_conserved_on_larger_mix() {
        let mut b = TraceBuffer::new("t");
        for i in 0..1000u64 {
            b.load(0x1, (i % 37) * 64, 8);
            b.store(0x2, ((i % 11) * 64) + (1 << 20), 8);
        }
        let t = b.finish();
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.mass(), t.len() as u64);
    }

    #[test]
    fn cdf_is_monotone() {
        let t = trace_of_blocks(&(0..100).chain(0..100).chain(50..150).collect::<Vec<_>>());
        let p = ReuseProfile::compute(&t);
        let cdf = p.cdf();
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "cdf must be monotone");
        }
    }

    #[test]
    fn empty_trace_profile() {
        let t = TraceBuffer::new("t").finish();
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.total(), 0);
        assert_eq!(p.hit_fraction_within(64), 0.0);
    }

    #[test]
    fn streaming_builder_equals_batch_across_fenwick_growth() {
        // 5000 accesses forces several doubling rebuilds past the 1024
        // seed capacity; the mix has cold, short- and long-distance reuse.
        let blocks: Vec<u64> = (0..5000u64)
            .map(|i| if i % 7 == 0 { i % 13 } else { i.wrapping_mul(31) % 997 })
            .collect();
        let t = trace_of_blocks(&blocks);
        let batch = ReuseProfile::compute(&t);
        let mut b = ReuseProfile::builder();
        for r in &t {
            b.push_block(r.block());
        }
        let streamed = b.finish();
        assert_eq!(streamed, batch);
        assert_eq!(streamed.mass(), blocks.len() as u64);
    }

    /// Fully hand-computed 10-access stream.
    ///
    /// Stream (block ids):  A B C A A B D C B A
    /// Reuse distances:     -  -  -  2  0  2  -  3  2  3
    /// (cold = 4; distance counts: d0 x1, d2 x3, d3 x2)
    #[test]
    fn hand_computed_ten_access_cdf() {
        let (a, b, c, d) = (10, 20, 30, 40);
        let t = trace_of_blocks(&[a, b, c, a, a, b, d, c, b, a]);
        let p = ReuseProfile::compute(&t);

        assert_eq!(p.total(), 10);
        assert_eq!(p.cold(), 4);
        assert_eq!(p.mass(), 10);

        // Cumulative hits by LRU capacity (in blocks).
        assert_eq!(p.hits_within(1), 1); // only d=0
        assert_eq!(p.hits_within(2), 1); // no d=1 accesses
        assert_eq!(p.hits_within(3), 4); // + three d=2
        assert_eq!(p.hits_within(4), 6); // + two d=3
        assert_eq!(p.hits_within(1 << 16), 6); // no larger distances

        // Same points through the CDF view (denominator includes cold).
        let cdf = p.cdf();
        assert_eq!(cdf[0], (1, 0.1));
        assert_eq!(cdf[1], (2, 0.1));
        assert_eq!(cdf[2], (4, 0.6));
        assert_eq!(cdf[3], (8, 0.6));
    }
}
