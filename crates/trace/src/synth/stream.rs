//! Dense sequential streaming, the canonical prefetch-friendly pattern.

use crate::synth::PatternGen;
use crate::TraceBuffer;

/// Streams sequentially through a region, optionally for several laps and
/// with a store mixed in every `store_every` accesses.
///
/// Models dense array sweeps (STREAM, `libquantum`-style loops, matrix rows).
#[derive(Debug, Clone)]
pub struct SequentialStream {
    base: u64,
    bytes: u64,
    stride: u64,
    elem: u8,
    laps: u32,
    store_every: u32,
    nonmem_per_access: u32,
    pc_load: u64,
    pc_store: u64,
}

impl SequentialStream {
    /// Creates a single-lap, 8-byte-stride, load-only stream over
    /// `[base, base + bytes)`.
    pub fn new(base: u64, bytes: u64) -> Self {
        SequentialStream {
            base,
            bytes,
            stride: 8,
            elem: 8,
            laps: 1,
            store_every: 0,
            nonmem_per_access: 2,
            pc_load: 0x0100_0000,
            pc_store: 0x0100_0004,
        }
    }

    /// Sets the access stride in bytes (default 8).
    pub fn stride(mut self, stride: u64) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        self.stride = stride;
        self
    }

    /// Sets the number of full passes over the region (default 1).
    pub fn laps(mut self, laps: u32) -> Self {
        self.laps = laps;
        self
    }

    /// Emits a store every `n` accesses (0 = never, the default).
    pub fn store_every(mut self, n: u32) -> Self {
        self.store_every = n;
        self
    }

    /// Sets non-memory instructions accounted per access (default 2).
    pub fn work(mut self, nonmem: u32) -> Self {
        self.nonmem_per_access = nonmem;
        self
    }

    /// Overrides the load/store code sites.
    pub fn sites(mut self, pc_load: u64, pc_store: u64) -> Self {
        self.pc_load = pc_load;
        self.pc_store = pc_store;
        self
    }
}

impl PatternGen for SequentialStream {
    fn emit(&self, buf: &mut TraceBuffer) {
        let mut n = 0u32;
        for _ in 0..self.laps {
            let mut off = 0;
            while off < self.bytes {
                buf.nonmem(self.nonmem_per_access as u64);
                let addr = self.base + off;
                n = n.wrapping_add(1);
                if self.store_every != 0 && n % self.store_every == 0 {
                    buf.store(self.pc_store, addr, self.elem);
                } else {
                    buf.load(self.pc_load, addr, self.elem);
                }
                off += self.stride;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_region_once_per_lap() {
        let s = SequentialStream::new(0x1000, 512).stride(64).laps(3);
        let mut buf = TraceBuffer::new("t");
        s.emit(&mut buf);
        let t = buf.finish();
        assert_eq!(t.len(), (512 / 64) * 3);
        assert_eq!(t.records()[0].vaddr, 0x1000);
        assert_eq!(t.records()[7].vaddr, 0x1000 + 448);
        assert_eq!(t.records()[8].vaddr, 0x1000); // second lap restarts
    }

    #[test]
    fn store_mix_ratio_respected() {
        let s = SequentialStream::new(0, 8 * 100).store_every(4);
        let mut buf = TraceBuffer::new("t");
        s.emit(&mut buf);
        let t = buf.finish();
        let stores = t.iter().filter(|r| r.kind.is_store()).count();
        assert_eq!(stores, 25);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_rejected() {
        let _ = SequentialStream::new(0, 64).stride(0);
    }
}
