//! Dependent pointer chasing, the canonical latency-bound pattern.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::synth::PatternGen;
use crate::TraceBuffer;

/// Walks a random Sattolo cycle over `nodes` fixed-size nodes: each load's
/// address depends on the previous load's value, defeating both prefetching
/// and memory-level parallelism.
///
/// Models linked-list/tree traversal (`mcf`, `xalancbmk`-style behaviour).
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    nodes: u64,
    node_bytes: u64,
    steps: u64,
    seed: u64,
    nonmem_per_step: u32,
    pc: u64,
}

impl PointerChase {
    /// Creates a chase over `nodes` nodes of `node_bytes` bytes each,
    /// starting at `base`. Defaults: `steps = nodes`, seed 0.
    pub fn new(base: u64, nodes: u64, node_bytes: u64) -> Self {
        assert!(node_bytes >= 8, "a node must hold at least a pointer");
        PointerChase {
            base,
            nodes,
            node_bytes,
            steps: nodes,
            seed: 0,
            nonmem_per_step: 3,
            pc: 0x0200_0000,
        }
    }

    /// Sets the number of chase steps (default: one per node).
    pub fn steps(mut self, steps: u64) -> Self {
        self.steps = steps;
        self
    }

    /// Sets the permutation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets non-memory instructions per step (default 3).
    pub fn work(mut self, nonmem: u32) -> Self {
        self.nonmem_per_step = nonmem;
        self
    }

    /// Overrides the load code site.
    pub fn site(mut self, pc: u64) -> Self {
        self.pc = pc;
        self
    }

    /// Builds the underlying Sattolo cycle: `next[i]` is the node index the
    /// chase visits after node `i`. Exposed for tests.
    pub fn cycle(&self) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<u64> = (0..self.nodes).collect();
        order.shuffle(&mut rng);
        // order defines the visit sequence; next[order[k]] = order[k+1].
        let mut next = vec![0u64; self.nodes as usize];
        for k in 0..order.len() {
            let to = order[(k + 1) % order.len()];
            next[order[k] as usize] = to;
        }
        next
    }
}

impl PatternGen for PointerChase {
    fn emit(&self, buf: &mut TraceBuffer) {
        if self.nodes == 0 {
            return;
        }
        let next = self.cycle();
        let mut cur = 0u64;
        for _ in 0..self.steps {
            buf.nonmem(self.nonmem_per_step as u64);
            buf.load(self.pc, self.base + cur * self.node_bytes, 8);
            cur = next[cur as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_a_single_permutation_cycle() {
        let c = PointerChase::new(0, 64, 64).seed(7);
        let next = c.cycle();
        let mut seen = [false; 64];
        let mut cur = 0u64;
        for _ in 0..64 {
            assert!(!seen[cur as usize], "revisited before full cycle");
            seen[cur as usize] = true;
            cur = next[cur as usize];
        }
        assert_eq!(cur, 0, "must return to start after n steps");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn emits_requested_steps_within_region() {
        let c = PointerChase::new(0x4000, 16, 64).steps(100).seed(3);
        let mut buf = TraceBuffer::new("t");
        c.emit(&mut buf);
        let t = buf.finish();
        assert_eq!(t.len(), 100);
        for r in &t {
            assert!(r.vaddr >= 0x4000 && r.vaddr < 0x4000 + 16 * 64);
            assert_eq!(r.vaddr % 64, 0);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mk = || {
            let mut buf = TraceBuffer::new("t");
            PointerChase::new(0, 32, 64).seed(9).emit(&mut buf);
            buf.finish()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn zero_nodes_emits_nothing() {
        let mut buf = TraceBuffer::new("t");
        PointerChase::new(0, 0, 64).emit(&mut buf);
        assert!(buf.is_empty());
    }
}
