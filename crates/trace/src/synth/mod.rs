//! Synthetic access-pattern primitives.
//!
//! These generators are the building blocks from which
//! `ccsim-workloads` assembles the SPEC-like, XSBench-like and
//! Qualcomm-server-like benchmark proxies. Each primitive emits records into
//! a [`TraceBuffer`] and is fully deterministic given its
//! configuration (seeds are explicit).

mod chase;
mod random;
mod search;
mod stack;
mod stream;
mod zipf;

pub use chase::PointerChase;
pub use random::{AccessDistribution, RandomAccess};
pub use search::BinarySearchProbe;
pub use stack::StackWalk;
pub use stream::SequentialStream;
pub use zipf::Zipf;

use crate::TraceBuffer;

/// A synthetic access-pattern generator that appends records to a trace
/// under construction.
///
/// The trait is object-safe so heterogeneous phases can be composed:
///
/// ```
/// use ccsim_trace::synth::{PatternGen, SequentialStream, StackWalk};
/// use ccsim_trace::TraceBuffer;
///
/// let phases: Vec<Box<dyn PatternGen>> = vec![
///     Box::new(SequentialStream::new(0x1000_0000, 1 << 16).laps(2)),
///     Box::new(StackWalk::new(0x7fff_0000, 64).calls(100)),
/// ];
/// let mut buf = TraceBuffer::new("composite");
/// for p in &phases {
///     p.emit(&mut buf);
/// }
/// assert!(!buf.is_empty());
/// ```
pub trait PatternGen {
    /// Appends this pattern's records to `buf`.
    fn emit(&self, buf: &mut TraceBuffer);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_compose() {
        let phases: Vec<Box<dyn PatternGen>> = vec![
            Box::new(SequentialStream::new(0, 1 << 10)),
            Box::new(PointerChase::new(0x2000_0000, 128, 64).steps(32).seed(1)),
        ];
        let mut buf = TraceBuffer::new("t");
        for p in &phases {
            p.emit(&mut buf);
        }
        assert!(buf.len() > 32);
    }
}
