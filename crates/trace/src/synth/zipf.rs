//! Zipf-distributed index sampling.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to
/// `1 / (rank + 1)^theta` (rank 0 is the hottest element).
///
/// Implemented with an exact inverse-CDF table, so sampling is one uniform
/// draw plus a binary search. Suitable for `n` up to a few million.
///
/// # Examples
///
/// ```
/// use ccsim_trace::synth::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = z.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` elements with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(16, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 16];
        for _ in 0..16_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "count {c} far from uniform 1000");
        }
    }

    #[test]
    fn high_theta_concentrates_on_head() {
        let z = Zipf::new(1024, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let head = (0..10_000).filter(|_| z.sample(&mut rng) < 10).count();
        assert!(head > 5_000, "head mass {head} too small for theta=1.2");
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(3, 0.8);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "zipf domain must be non-empty")]
    fn empty_domain_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
