//! Call-stack-like access locality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::synth::PatternGen;
use crate::TraceBuffer;

/// Simulates function call/return frames: a pointer walks down and back up a
/// small region, touching every slot of a frame on entry (spills) and exit
/// (reloads). Extremely cache-friendly; it supplies the high-hit-rate,
/// PC-stable component of general-purpose workloads.
#[derive(Debug, Clone)]
pub struct StackWalk {
    top: u64,
    frame_slots: u32,
    calls: u64,
    max_depth: u32,
    seed: u64,
    pc_push: u64,
    pc_pop: u64,
}

impl StackWalk {
    /// Creates a stack walker whose stack top is at `top` (grows downward)
    /// with `frame_slots` 8-byte slots per frame.
    pub fn new(top: u64, frame_slots: u32) -> Self {
        assert!(frame_slots > 0, "frames must have at least one slot");
        StackWalk {
            top,
            frame_slots,
            calls: 1000,
            max_depth: 16,
            seed: 0,
            pc_push: 0x0400_0000,
            pc_pop: 0x0400_0004,
        }
    }

    /// Sets total simulated calls (default 1000).
    pub fn calls(mut self, calls: u64) -> Self {
        self.calls = calls;
        self
    }

    /// Sets maximum call depth (default 16).
    pub fn max_depth(mut self, d: u32) -> Self {
        assert!(d > 0, "depth must be positive");
        self.max_depth = d;
        self
    }

    /// Sets the RNG seed driving call/return decisions.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the push/pop code sites.
    pub fn sites(mut self, pc_push: u64, pc_pop: u64) -> Self {
        self.pc_push = pc_push;
        self.pc_pop = pc_pop;
        self
    }
}

impl PatternGen for StackWalk {
    fn emit(&self, buf: &mut TraceBuffer) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let frame_bytes = self.frame_slots as u64 * 8;
        let mut depth: u32 = 0;
        for _ in 0..self.calls {
            // Biased walk: calls slightly more likely at shallow depth.
            let go_deeper = depth == 0 || (depth < self.max_depth && rng.gen::<f64>() < 0.55);
            if go_deeper {
                depth += 1;
                let frame_base = self.top - depth as u64 * frame_bytes;
                for s in 0..self.frame_slots {
                    buf.nonmem(1);
                    buf.store(self.pc_push, frame_base + s as u64 * 8, 8);
                }
            } else {
                let frame_base = self.top - depth as u64 * frame_bytes;
                for s in 0..self.frame_slots {
                    buf.nonmem(1);
                    buf.load(self.pc_pop, frame_base + s as u64 * 8, 8);
                }
                depth -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_bounded_by_max_depth() {
        let w = StackWalk::new(0x8000_0000, 8).calls(5000).max_depth(4).seed(2);
        let mut buf = TraceBuffer::new("t");
        w.emit(&mut buf);
        let t = buf.finish();
        let lo = t.iter().map(|r| r.vaddr).min().unwrap();
        assert!(lo >= 0x8000_0000 - 4 * 8 * 8, "stack grew past max depth");
    }

    #[test]
    fn first_call_touches_full_frame_as_stores() {
        let w = StackWalk::new(0x1000, 4).calls(1);
        let mut buf = TraceBuffer::new("t");
        w.emit(&mut buf);
        let t = buf.finish();
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|r| r.kind.is_store()));
    }

    #[test]
    fn balanced_walk_returns_to_shallow_depths() {
        let w = StackWalk::new(0x10_0000, 2).calls(10_000).max_depth(8).seed(11);
        let mut buf = TraceBuffer::new("t");
        w.emit(&mut buf);
        let t = buf.finish();
        // The top frame address must recur many times: the walk keeps coming back.
        let top_frame = 0x10_0000u64 - 2 * 8;
        let hits = t.iter().filter(|r| r.vaddr == top_frame).count();
        assert!(hits > 100, "top frame touched only {hits} times");
    }
}
