//! Binary-search probe pattern (the XSBench/RSBench macroscopic kernel).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::synth::PatternGen;
use crate::TraceBuffer;

/// Repeated binary searches over a large sorted table, each followed by a
/// short sequential read of the located entry's payload.
///
/// This is the documented dominant access pattern of XSBench: locate an
/// energy grid point by binary search, then read the nuclide cross-section
/// data for that point. Each probe performs `log2(elems)` dependent loads
/// spread over the whole table — a pattern with a tiny PC set but an
/// enormous, uniformly-touched footprint.
#[derive(Debug, Clone)]
pub struct BinarySearchProbe {
    base: u64,
    elems: u64,
    elem_bytes: u64,
    payload_base: u64,
    payload_bytes: u64,
    probes: u64,
    seed: u64,
    pc_search: u64,
    pc_payload: u64,
}

impl BinarySearchProbe {
    /// Creates a probe pattern over a sorted table of `elems` entries of
    /// `elem_bytes` bytes at `base`, with per-entry payload of
    /// `payload_bytes` at `payload_base`.
    pub fn new(
        base: u64,
        elems: u64,
        elem_bytes: u64,
        payload_base: u64,
        payload_bytes: u64,
    ) -> Self {
        assert!(elems >= 2, "need at least two elements to search");
        BinarySearchProbe {
            base,
            elems,
            elem_bytes,
            payload_base,
            payload_bytes,
            probes: 1000,
            seed: 0,
            pc_search: 0x0500_0000,
            pc_payload: 0x0500_0004,
        }
    }

    /// Sets the number of lookups performed (default 1000).
    pub fn probes(mut self, probes: u64) -> Self {
        self.probes = probes;
        self
    }

    /// Sets the RNG seed choosing lookup keys.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl PatternGen for BinarySearchProbe {
    fn emit(&self, buf: &mut TraceBuffer) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.probes {
            let target = rng.gen_range(0..self.elems);
            let (mut lo, mut hi) = (0u64, self.elems);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                buf.nonmem(4); // compare + branch + bound updates
                buf.load(self.pc_search, self.base + mid * self.elem_bytes, 8);
                if mid < target {
                    lo = mid + 1;
                } else if mid > target {
                    hi = mid;
                } else {
                    break;
                }
            }
            // Sequentially read the payload for the located entry.
            let pbase = self.payload_base + target * self.payload_bytes;
            let mut off = 0;
            while off < self.payload_bytes {
                buf.nonmem(2);
                buf.load(self.pc_payload, pbase + off, 8);
                off += 8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_probe_costs_about_log_n_searches() {
        let p = BinarySearchProbe::new(0, 1 << 16, 8, 1 << 30, 0).probes(100).seed(1);
        let mut buf = TraceBuffer::new("t");
        p.emit(&mut buf);
        let t = buf.finish();
        let per_probe = t.len() as f64 / 100.0;
        assert!(
            (8.0..=17.0).contains(&per_probe),
            "expected ~log2(65536)=16 loads per probe, got {per_probe}"
        );
    }

    #[test]
    fn payload_reads_are_sequential() {
        let p = BinarySearchProbe::new(0, 16, 8, 0x4000_0000, 32).probes(1).seed(2);
        let mut buf = TraceBuffer::new("t");
        p.emit(&mut buf);
        let t = buf.finish();
        let payload: Vec<_> = t.iter().filter(|r| r.vaddr >= 0x4000_0000).collect();
        assert_eq!(payload.len(), 4);
        for w in payload.windows(2) {
            assert_eq!(w[1].vaddr - w[0].vaddr, 8);
        }
    }

    #[test]
    fn searches_touch_wide_address_range() {
        let p = BinarySearchProbe::new(0, 1 << 20, 8, 1 << 40, 0).probes(200).seed(3);
        let mut buf = TraceBuffer::new("t");
        p.emit(&mut buf);
        let t = buf.finish();
        let max = t.iter().map(|r| r.vaddr).max().unwrap();
        assert!(max > (1 << 20) * 8 / 2, "searches never reached upper half");
    }
}
