//! Random-access patterns with uniform or Zipfian locality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::synth::{PatternGen, Zipf};
use crate::TraceBuffer;

/// Element-selection distribution for [`RandomAccess`].
#[derive(Debug, Clone)]
pub enum AccessDistribution {
    /// Every element equally likely (worst-case locality).
    Uniform,
    /// Zipfian with the given exponent (hot/cold skew, models lookup tables
    /// and software caches).
    Zipf(f64),
}

/// Emits `count` random accesses into a region of `elems` elements.
///
/// Uniform random access is the pattern of hash joins, XSBench-like lookups
/// and GUPS; the Zipfian variant models key-value and lookup-table skew.
#[derive(Debug, Clone)]
pub struct RandomAccess {
    base: u64,
    elems: u64,
    elem_bytes: u64,
    count: u64,
    dist: AccessDistribution,
    store_fraction: f64,
    seed: u64,
    nonmem_per_access: u32,
    pc_load: u64,
    pc_store: u64,
}

impl RandomAccess {
    /// Creates a uniform random-load pattern over `elems` elements of
    /// `elem_bytes` bytes at `base`, emitting `count` accesses.
    pub fn new(base: u64, elems: u64, elem_bytes: u64, count: u64) -> Self {
        assert!(elems > 0, "region must contain elements");
        assert!(elem_bytes > 0 && elem_bytes <= 64, "element must be 1..=64 bytes");
        RandomAccess {
            base,
            elems,
            elem_bytes,
            count,
            dist: AccessDistribution::Uniform,
            store_fraction: 0.0,
            seed: 0,
            nonmem_per_access: 4,
            pc_load: 0x0300_0000,
            pc_store: 0x0300_0004,
        }
    }

    /// Sets the selection distribution (default uniform).
    pub fn distribution(mut self, dist: AccessDistribution) -> Self {
        self.dist = dist;
        self
    }

    /// Fraction of accesses that are stores (default 0).
    pub fn store_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "store fraction must be in [0, 1]");
        self.store_fraction = f;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets non-memory instructions per access (default 4).
    pub fn work(mut self, nonmem: u32) -> Self {
        self.nonmem_per_access = nonmem;
        self
    }

    /// Overrides the load/store code sites.
    pub fn sites(mut self, pc_load: u64, pc_store: u64) -> Self {
        self.pc_load = pc_load;
        self.pc_store = pc_store;
        self
    }
}

impl PatternGen for RandomAccess {
    fn emit(&self, buf: &mut TraceBuffer) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = match &self.dist {
            AccessDistribution::Uniform => None,
            AccessDistribution::Zipf(theta) => Some(Zipf::new(self.elems as usize, *theta)),
        };
        let size = self.elem_bytes.min(8) as u8;
        for _ in 0..self.count {
            buf.nonmem(self.nonmem_per_access as u64);
            let idx = match &zipf {
                Some(z) => z.sample(&mut rng) as u64,
                None => rng.gen_range(0..self.elems),
            };
            let addr = self.base + idx * self.elem_bytes;
            if self.store_fraction > 0.0 && rng.gen::<f64>() < self.store_fraction {
                buf.store(self.pc_store, addr, size);
            } else {
                buf.load(self.pc_load, addr, size);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_count_records_in_region() {
        let r = RandomAccess::new(0x1_0000, 256, 16, 500).seed(5);
        let mut buf = TraceBuffer::new("t");
        r.emit(&mut buf);
        let t = buf.finish();
        assert_eq!(t.len(), 500);
        for rec in &t {
            assert!(rec.vaddr >= 0x1_0000);
            assert!(rec.vaddr < 0x1_0000 + 256 * 16);
            assert_eq!((rec.vaddr - 0x1_0000) % 16, 0);
        }
    }

    #[test]
    fn store_fraction_approximately_respected() {
        let r = RandomAccess::new(0, 64, 8, 10_000).store_fraction(0.3).seed(1);
        let mut buf = TraceBuffer::new("t");
        r.emit(&mut buf);
        let t = buf.finish();
        let stores = t.iter().filter(|x| x.kind.is_store()).count();
        assert!((2_500..3_500).contains(&stores), "stores {stores} not ~30%");
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let r = RandomAccess::new(0, 1 << 12, 8, 20_000)
            .distribution(AccessDistribution::Zipf(1.1))
            .seed(3);
        let mut buf = TraceBuffer::new("t");
        r.emit(&mut buf);
        let t = buf.finish();
        let hot = t.iter().filter(|x| x.vaddr < 64 * 8).count();
        assert!(hot > 4_000, "hot-head count {hot} too small");
    }

    #[test]
    #[should_panic(expected = "store fraction must be in [0, 1]")]
    fn bad_store_fraction_rejected() {
        let _ = RandomAccess::new(0, 4, 8, 1).store_fraction(1.5);
    }
}
