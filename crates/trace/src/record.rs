//! Core trace record types.
//!
//! A [`Trace`] is an ordered sequence of [`TraceRecord`]s. Each record
//! describes one *memory instruction* (a load or a store) together with the
//! number of non-memory instructions that executed immediately before it.
//! This compact encoding lets a trace carry a full instruction count (needed
//! for MPKI and IPC) while only materializing the memory operations that the
//! cache hierarchy actually observes.

use std::fmt;

/// The architectural kind of a traced memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// A demand load (read).
    Load,
    /// A demand store (write). Stores allocate on miss (write-allocate) and
    /// mark the line dirty.
    Store,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Store`].
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// One memory instruction in a trace.
///
/// `nonmem_before` is the number of non-memory instructions (ALU, branches,
/// address generation, ...) that retire between the previous record and this
/// one; it is how traces account for total instruction counts without
/// materializing every instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Virtual byte address touched by the operation.
    pub vaddr: u64,
    /// Operation size in bytes (1..=64).
    pub size: u8,
    /// Load or store.
    pub kind: AccessKind,
    /// Number of non-memory instructions executed immediately before this
    /// record.
    pub nonmem_before: u16,
}

impl TraceRecord {
    /// Creates a load record with no preceding non-memory instructions.
    pub fn load(pc: u64, vaddr: u64, size: u8) -> Self {
        TraceRecord { pc, vaddr, size, kind: AccessKind::Load, nonmem_before: 0 }
    }

    /// Creates a store record with no preceding non-memory instructions.
    pub fn store(pc: u64, vaddr: u64, size: u8) -> Self {
        TraceRecord { pc, vaddr, size, kind: AccessKind::Store, nonmem_before: 0 }
    }

    /// The 64-byte cache-block address (`vaddr >> 6`) this access maps to.
    ///
    /// Accesses in ccsim never straddle block boundaries: the arena and the
    /// synthetic generators align operands to their size.
    #[inline]
    pub fn block(&self) -> u64 {
        self.vaddr >> crate::BLOCK_SHIFT
    }

    /// Number of instructions this record accounts for (itself plus the
    /// preceding non-memory instructions).
    #[inline]
    pub fn instructions(&self) -> u64 {
        1 + self.nonmem_before as u64
    }
}

/// An immutable, named memory-access trace.
///
/// Construct traces through [`TraceBuffer`](crate::TraceBuffer) (synthetic
/// generators), [`TraceArena`](crate::TraceArena) (instrumented execution) or
/// [`read_trace`](crate::read_trace) (deserialization).
///
/// # Examples
///
/// ```
/// use ccsim_trace::{Trace, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("demo");
/// let pc = 0x400000;
/// for i in 0..16u64 {
///     buf.nonmem(3);
///     buf.load(pc, i * 64, 8);
/// }
/// let trace: Trace = buf.finish();
/// assert_eq!(trace.len(), 16);
/// assert_eq!(trace.instructions(), 16 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    records: Vec<TraceRecord>,
    /// Non-memory instructions after the last record (trailing epilogue).
    trailing_nonmem: u64,
}

impl Trace {
    /// Builds a trace directly from parts. Prefer [`TraceBuffer`] in
    /// application code; this is the low-level constructor used by readers.
    ///
    /// [`TraceBuffer`]: crate::TraceBuffer
    pub fn from_parts(
        name: impl Into<String>,
        records: Vec<TraceRecord>,
        trailing_nonmem: u64,
    ) -> Self {
        Trace { name: name.into(), records, trailing_nonmem }
    }

    /// The workload name this trace was captured from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the trace (used by suite assembly to tag kernel x input).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of memory records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the trace contains no memory records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions represented: every record plus its preamble of
    /// non-memory instructions, plus the trailing epilogue.
    pub fn instructions(&self) -> u64 {
        self.trailing_nonmem + self.records.iter().map(TraceRecord::instructions).sum::<u64>()
    }

    /// Non-memory instructions after the final memory record.
    pub fn trailing_nonmem(&self) -> u64 {
        self.trailing_nonmem
    }

    /// The records as a slice.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Truncates the trace to at most `max_records` memory records.
    ///
    /// Used by the experiment harness to cap simulation cost uniformly.
    pub fn truncate(&mut self, max_records: usize) {
        self.records.truncate(max_records);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_block_address() {
        let r = TraceRecord::load(0x400, 130, 4);
        assert_eq!(r.block(), 2);
        let r = TraceRecord::store(0x400, 63, 1);
        assert_eq!(r.block(), 0);
    }

    #[test]
    fn record_instruction_accounting() {
        let mut r = TraceRecord::load(1, 2, 8);
        assert_eq!(r.instructions(), 1);
        r.nonmem_before = 9;
        assert_eq!(r.instructions(), 10);
    }

    #[test]
    fn trace_instruction_totals_include_trailing() {
        let recs = vec![
            TraceRecord { nonmem_before: 4, ..TraceRecord::load(1, 0, 8) },
            TraceRecord { nonmem_before: 0, ..TraceRecord::store(2, 64, 8) },
        ];
        let t = Trace::from_parts("t", recs, 7);
        assert_eq!(t.len(), 2);
        assert_eq!(t.instructions(), 4 + 1 + 1 + 7);
    }

    #[test]
    fn kind_display_and_predicates() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
        assert!(AccessKind::Store.is_store());
        assert!(!AccessKind::Load.is_store());
    }

    #[test]
    fn truncate_drops_tail_records() {
        let recs = (0..10).map(|i| TraceRecord::load(1, i * 64, 8)).collect::<Vec<_>>();
        let mut t = Trace::from_parts("t", recs, 0);
        t.truncate(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[2].vaddr, 128);
    }
}
