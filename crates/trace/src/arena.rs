//! Instrumented-execution arena.
//!
//! [`TraceArena`] stands in for a binary-instrumentation tracer (Intel PIN /
//! the ChampSim tracer): it lays program data structures out in a synthetic
//! virtual address space and records every load and store they receive,
//! tagged with a static *code site* (a pseudo-PC). Algorithms written
//! against [`TracedVec`] therefore produce the same address streams their
//! native counterparts would, with a realistic (small) set of distinct PCs —
//! the property the paper identifies as decisive for learned replacement
//! policies.
//!
//! # Examples
//!
//! Summing an array through the arena records one load per element, all from
//! the same code site:
//!
//! ```
//! use ccsim_trace::TraceArena;
//!
//! let arena = TraceArena::new("sum");
//! let site = arena.code_site();
//! let xs = arena.vec_of((0..64u64).collect::<Vec<_>>());
//! let mut total = 0;
//! for i in 0..xs.len() {
//!     total += xs.get(site, i);
//!     arena.work(2); // loop increment + add
//! }
//! drop(xs);
//! let trace = arena.finish();
//! assert_eq!(total, 64 * 63 / 2);
//! assert_eq!(trace.len(), 64);
//! assert!(trace.iter().all(|r| r.pc == site.addr()));
//! ```

use std::cell::{Cell, RefCell};

use crate::{Trace, TraceBuffer};

/// Base of the synthetic code segment (pseudo-PC space).
const CODE_BASE: u64 = 0x0040_0000;
/// Base of the synthetic data segment.
const DATA_BASE: u64 = 0x1000_0000;
/// Alignment and guard spacing between arena allocations.
const REGION_ALIGN: u64 = 4096;

/// A static code site (pseudo program counter) handed out by
/// [`TraceArena::code_site`].
///
/// Every syntactic load/store location in an instrumented kernel should use
/// its own `Pc`, mirroring how a compiled binary has one instruction address
/// per memory operation in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pc(u64);

impl Pc {
    /// The raw pseudo-PC address.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0
    }
}

/// Types that may be stored in a [`TracedVec`].
///
/// The trait is sealed to scalar types whose size (1..=8 bytes) matches a
/// single architectural memory operand.
pub trait TraceScalar: Copy + private::Sealed {}

mod private {
    pub trait Sealed {}
}

macro_rules! impl_trace_scalar {
    ($($t:ty),*) => {$(
        impl private::Sealed for $t {}
        impl TraceScalar for $t {}
    )*};
}

impl_trace_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Virtual-address-space allocator plus trace recorder for instrumented
/// execution.
///
/// See the [crate-level docs](crate) for an end-to-end arena example.
#[derive(Debug)]
pub struct TraceArena {
    buf: RefCell<TraceBuffer>,
    next_base: Cell<u64>,
    next_pc: Cell<u64>,
}

impl TraceArena {
    /// Creates an arena recording a workload called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TraceArena {
            buf: RefCell::new(TraceBuffer::new(name)),
            next_base: Cell::new(DATA_BASE),
            next_pc: Cell::new(CODE_BASE),
        }
    }

    /// Allocates a fresh code site. Sites are 4 bytes apart, mimicking
    /// x86-64 instruction spacing.
    pub fn code_site(&self) -> Pc {
        let pc = self.next_pc.get();
        self.next_pc.set(pc + 4);
        Pc(pc)
    }

    /// Allocates `n` consecutive code sites (convenience for kernels that
    /// declare all their sites up front).
    pub fn code_sites<const N: usize>(&self) -> [Pc; N] {
        std::array::from_fn(|_| self.code_site())
    }

    /// Accounts `n` non-memory instructions (arithmetic, branches, address
    /// generation) at the current point of execution.
    #[inline]
    pub fn work(&self, n: u64) {
        self.buf.borrow_mut().nonmem(n);
    }

    /// Moves `init` into the arena's address space, returning a traced view.
    ///
    /// The region is page-aligned and followed by a guard gap so distinct
    /// structures never share a cache block.
    pub fn vec_of<T: TraceScalar>(&self, init: Vec<T>) -> TracedVec<'_, T> {
        let elem = std::mem::size_of::<T>() as u64;
        let base = self.next_base.get();
        let bytes = (init.len() as u64 * elem).max(1);
        let padded = bytes.div_ceil(REGION_ALIGN) * REGION_ALIGN + REGION_ALIGN;
        self.next_base.set(base + padded);
        TracedVec { arena: self, base, data: init }
    }

    /// Allocates a zero-filled traced vector of `len` elements.
    pub fn zeroed<T: TraceScalar + Default>(&self, len: usize) -> TracedVec<'_, T> {
        self.vec_of(vec![T::default(); len])
    }

    /// Records a raw load outside any [`TracedVec`] (used for auxiliary
    /// structures such as visit stacks modelled at address granularity).
    #[inline]
    pub fn raw_load(&self, pc: Pc, vaddr: u64, size: u8) {
        self.buf.borrow_mut().load(pc.0, vaddr, size);
    }

    /// Records a raw store outside any [`TracedVec`].
    #[inline]
    pub fn raw_store(&self, pc: Pc, vaddr: u64, size: u8) {
        self.buf.borrow_mut().store(pc.0, vaddr, size);
    }

    /// Number of memory records captured so far.
    pub fn recorded(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Total instructions (memory + non-memory) captured so far.
    pub fn instructions(&self) -> u64 {
        self.buf.borrow().instructions()
    }

    /// Finalizes the arena into an immutable [`Trace`].
    ///
    /// All [`TracedVec`]s borrow the arena, so the borrow checker guarantees
    /// they have been dropped (or their data extracted via
    /// [`TracedVec::into_inner`]) before `finish` can be called.
    pub fn finish(self) -> Trace {
        self.buf.into_inner().finish()
    }
}

/// A vector living in a [`TraceArena`]'s address space whose element
/// accesses are recorded as loads and stores.
#[derive(Debug)]
pub struct TracedVec<'a, T> {
    arena: &'a TraceArena,
    base: u64,
    data: Vec<T>,
}

impl<'a, T: TraceScalar> TracedVec<'a, T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Base virtual address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Virtual address of element `i` (no bounds check, no trace emission).
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base + (i * std::mem::size_of::<T>()) as u64
    }

    /// Reads element `i`, recording a load at code site `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, pc: Pc, i: usize) -> T {
        let v = self.data[i];
        self.arena.raw_load(pc, self.addr_of(i), std::mem::size_of::<T>() as u8);
        v
    }

    /// Writes element `i`, recording a store at code site `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, pc: Pc, i: usize, v: T) {
        self.data[i] = v;
        self.arena.raw_store(pc, self.addr_of(i), std::mem::size_of::<T>() as u8);
    }

    /// Read-modify-write of element `i`: records a load at `pc_load` and a
    /// store at `pc_store`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn update(&mut self, pc_load: Pc, pc_store: Pc, i: usize, f: impl FnOnce(T) -> T) {
        let v = self.get(pc_load, i);
        self.set(pc_store, i, f(v));
    }

    /// Untraced view of the underlying data (for result verification).
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Untraced mutable view (initialization that should not be traced).
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the view, returning the underlying data untraced.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;

    #[test]
    fn regions_are_disjoint_and_page_aligned() {
        let arena = TraceArena::new("t");
        let a = arena.vec_of(vec![0u64; 100]);
        let b = arena.vec_of(vec![0u32; 7]);
        assert_eq!(a.base() % REGION_ALIGN, 0);
        assert_eq!(b.base() % REGION_ALIGN, 0);
        let a_end = a.addr_of(99) + 8;
        assert!(b.base() >= a_end + REGION_ALIGN, "guard gap missing");
    }

    #[test]
    fn get_set_record_correct_addresses_and_kinds() {
        let arena = TraceArena::new("t");
        let s_load = arena.code_site();
        let s_store = arena.code_site();
        let mut v = arena.vec_of(vec![1u32, 2, 3]);
        assert_eq!(v.get(s_load, 2), 3);
        v.set(s_store, 0, 9);
        assert_eq!(v.raw(), &[9, 2, 3]);
        let base = v.base();
        drop(v);
        let t = arena.finish();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].vaddr, base + 8);
        assert_eq!(t.records()[0].kind, AccessKind::Load);
        assert_eq!(t.records()[0].size, 4);
        assert_eq!(t.records()[1].vaddr, base);
        assert_eq!(t.records()[1].kind, AccessKind::Store);
    }

    #[test]
    fn update_records_load_then_store() {
        let arena = TraceArena::new("t");
        let [lp, sp] = arena.code_sites::<2>();
        let mut v = arena.vec_of(vec![10i64]);
        v.update(lp, sp, 0, |x| x + 5);
        assert_eq!(v.raw()[0], 15);
        drop(v);
        let t = arena.finish();
        assert_eq!(t.records()[0].pc, lp.addr());
        assert_eq!(t.records()[1].pc, sp.addr());
    }

    #[test]
    fn code_sites_are_distinct() {
        let arena = TraceArena::new("t");
        let sites = arena.code_sites::<8>();
        for (i, a) in sites.iter().enumerate() {
            for b in sites.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn work_accumulates_nonmem_instructions() {
        let arena = TraceArena::new("t");
        let s = arena.code_site();
        let v = arena.vec_of(vec![0u8; 4]);
        arena.work(10);
        v.get(s, 0);
        drop(v);
        let t = arena.finish();
        assert_eq!(t.records()[0].nonmem_before, 10);
        assert_eq!(t.instructions(), 11);
    }

    #[test]
    fn raw_access_is_untraced() {
        let arena = TraceArena::new("t");
        let mut v = arena.vec_of(vec![0u16; 3]);
        v.raw_mut()[1] = 7;
        assert_eq!(v.raw()[1], 7);
        assert_eq!(v.into_inner(), vec![0, 7, 0]);
        assert_eq!(arena.finish().len(), 0);
    }

    #[test]
    fn empty_vec_still_gets_a_region() {
        let arena = TraceArena::new("t");
        let a = arena.vec_of(Vec::<u64>::new());
        let b = arena.vec_of(vec![0u64; 1]);
        assert!(a.is_empty());
        assert_ne!(a.base(), b.base());
    }
}
