//! Error types for trace serialization.

use std::error::Error;
use std::fmt;
use std::io;

/// Error returned when decoding a serialized trace fails.
#[derive(Debug)]
pub enum DecodeTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not begin with the `CCTR` magic bytes.
    BadMagic([u8; 4]),
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// A length or count field is implausible (corrupt stream).
    Corrupt(&'static str),
    /// The workload name is not valid UTF-8.
    BadName,
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeTraceError::Io(e) => write!(f, "i/o error while decoding trace: {e}"),
            DecodeTraceError::BadMagic(m) => {
                write!(f, "bad trace magic {m:02x?}, expected \"CCTR\"")
            }
            DecodeTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            DecodeTraceError::Corrupt(what) => write!(f, "corrupt trace stream: {what}"),
            DecodeTraceError::BadName => write!(f, "trace name is not valid utf-8"),
        }
    }
}

impl Error for DecodeTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecodeTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeTraceError {
    fn from(e: io::Error) -> Self {
        DecodeTraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DecodeTraceError::BadMagic(*b"NOPE");
        assert!(e.to_string().contains("CCTR"));
        let e = DecodeTraceError::UnsupportedVersion(99);
        assert!(e.to_string().contains("99"));
        let e = DecodeTraceError::Corrupt("record count");
        assert!(e.to_string().contains("record count"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e = DecodeTraceError::from(inner);
        assert!(e.source().is_some());
    }
}
