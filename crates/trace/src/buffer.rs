//! Incremental trace construction.

use crate::{AccessKind, Trace, TraceRecord};

/// Builder that accumulates [`TraceRecord`]s and pending non-memory
/// instruction counts.
///
/// # The `nonmem_before` splitting invariant
///
/// Non-memory instructions registered through [`TraceBuffer::nonmem`] are
/// attached to the *next* emitted memory record's `nonmem_before` field.
/// That field is a `u16`, so a gap `g > u16::MAX` cannot be carried by one
/// record; instead it is **split**: each subsequent record acts as a
/// filler, absorbing up to `u16::MAX` of the remaining gap until it is
/// drained, and any residue left after the final record lands in the
/// trace's `trailing_nonmem` (a `u64`, lossless). The placement of
/// individual non-memory instructions within a huge gap is therefore
/// approximate, but the **total instruction count is preserved exactly**
/// — `Trace::instructions()` equals the number of `nonmem` instructions
/// registered plus the number of records pushed, whatever the gap sizes.
/// `ccsim-ingest` applies the same rule when folding foreign traces, and
/// `tests/proptests.rs` pins the round-trip through the `CCTR` format.
///
/// # Examples
///
/// ```
/// use ccsim_trace::TraceBuffer;
///
/// let mut buf = TraceBuffer::new("loop");
/// buf.nonmem(2);
/// buf.load(0x400_000, 0x1000, 8);
/// buf.store(0x400_008, 0x1008, 8);
/// let t = buf.finish();
/// assert_eq!(t.instructions(), 2 + 1 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    name: String,
    records: Vec<TraceRecord>,
    pending_nonmem: u64,
}

impl TraceBuffer {
    /// Creates an empty buffer for a workload called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuffer { name: name.into(), records: Vec::new(), pending_nonmem: 0 }
    }

    /// Creates an empty buffer with capacity pre-allocated for `records`.
    pub fn with_capacity(name: impl Into<String>, records: usize) -> Self {
        TraceBuffer { name: name.into(), records: Vec::with_capacity(records), pending_nonmem: 0 }
    }

    /// Accounts `n` non-memory instructions at the current position.
    #[inline]
    pub fn nonmem(&mut self, n: u64) {
        self.pending_nonmem += n;
    }

    /// Emits a load of `size` bytes at `vaddr` from instruction `pc`.
    #[inline]
    pub fn load(&mut self, pc: u64, vaddr: u64, size: u8) {
        self.push(pc, vaddr, size, AccessKind::Load);
    }

    /// Emits a store of `size` bytes at `vaddr` from instruction `pc`.
    #[inline]
    pub fn store(&mut self, pc: u64, vaddr: u64, size: u8) {
        self.push(pc, vaddr, size, AccessKind::Store);
    }

    /// Emits an arbitrary record, draining the pending non-memory count.
    #[inline]
    pub fn push(&mut self, pc: u64, vaddr: u64, size: u8, kind: AccessKind) {
        debug_assert!(size as u64 <= crate::BLOCK_BYTES, "operand larger than a block");
        let take = self.pending_nonmem.min(u16::MAX as u64);
        self.pending_nonmem -= take;
        self.records.push(TraceRecord { pc, vaddr, size, kind, nonmem_before: take as u16 });
    }

    /// Number of memory records emitted so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no memory records have been emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions represented so far (memory + non-memory).
    pub fn instructions(&self) -> u64 {
        self.pending_nonmem + self.records.iter().map(TraceRecord::instructions).sum::<u64>()
    }

    /// Finalizes the buffer into an immutable [`Trace`]. Any non-memory
    /// instructions still pending become the trace's trailing epilogue.
    pub fn finish(self) -> Trace {
        Trace::from_parts(self.name, self.records, self.pending_nonmem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_nonmem_attaches_to_next_record() {
        let mut b = TraceBuffer::new("t");
        b.nonmem(5);
        b.load(1, 0, 8);
        b.store(2, 8, 8);
        let t = b.finish();
        assert_eq!(t.records()[0].nonmem_before, 5);
        assert_eq!(t.records()[1].nonmem_before, 0);
    }

    #[test]
    fn nonmem_overflow_carries_to_later_records() {
        let mut b = TraceBuffer::new("t");
        b.nonmem(u16::MAX as u64 + 10);
        b.load(1, 0, 8);
        b.load(1, 64, 8);
        let t = b.finish();
        assert_eq!(t.records()[0].nonmem_before, u16::MAX);
        assert_eq!(t.records()[1].nonmem_before, 10);
        assert_eq!(t.instructions(), u16::MAX as u64 + 10 + 2);
    }

    #[test]
    fn trailing_nonmem_preserved_by_finish() {
        let mut b = TraceBuffer::new("t");
        b.load(1, 0, 8);
        b.nonmem(42);
        assert_eq!(b.instructions(), 43);
        let t = b.finish();
        assert_eq!(t.trailing_nonmem(), 42);
        assert_eq!(t.instructions(), 43);
    }

    #[test]
    fn with_capacity_reserves() {
        let b = TraceBuffer::with_capacity("t", 128);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
