//! Binary trace serialization.
//!
//! Format (`CCTR` version 1), all integers little-endian:
//!
//! ```text
//! magic   : 4 bytes  "CCTR"
//! version : u32      (1)
//! namelen : u32
//! name    : namelen bytes of UTF-8
//! trailing: u64      trailing non-memory instruction count
//! count   : u64      number of records
//! records : count x 20 bytes:
//!     pc            u64
//!     vaddr         u64
//!     size          u8
//!     kind          u8   (0 = load, 1 = store)
//!     nonmem_before u16
//! ```

use std::io::{self, Read, Seek, SeekFrom, Write};

use crate::{AccessKind, DecodeTraceError, Trace, TraceRecord};

/// The `CCTR` file magic.
pub const MAGIC: [u8; 4] = *b"CCTR";
/// The current `CCTR` format version.
pub const VERSION: u32 = 1;
const RECORD_BYTES: usize = 20;

fn encode_record(r: &TraceRecord, rec: &mut [u8; RECORD_BYTES]) {
    rec[0..8].copy_from_slice(&r.pc.to_le_bytes());
    rec[8..16].copy_from_slice(&r.vaddr.to_le_bytes());
    rec[16] = r.size;
    rec[17] = r.kind.is_store() as u8;
    rec[18..20].copy_from_slice(&r.nonmem_before.to_le_bytes());
}

fn decode_record(rec: &[u8; RECORD_BYTES]) -> Result<TraceRecord, DecodeTraceError> {
    let kind = match rec[17] {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        _ => return Err(DecodeTraceError::Corrupt("access kind")),
    };
    Ok(TraceRecord {
        pc: u64::from_le_bytes(rec[0..8].try_into().unwrap()),
        vaddr: u64::from_le_bytes(rec[8..16].try_into().unwrap()),
        size: rec[16],
        kind,
        nonmem_before: u16::from_le_bytes(rec[18..20].try_into().unwrap()),
    })
}

/// Serializes `trace` into `writer` in the `CCTR` binary format.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ccsim_trace::{read_trace, write_trace, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("roundtrip");
/// buf.load(0x400000, 0x1000, 8);
/// let trace = buf.finish();
///
/// let mut bytes = Vec::new();
/// write_trace(&trace, &mut bytes)?;
/// let back = read_trace(&bytes[..])?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&trace.trailing_nonmem().to_le_bytes())?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_BYTES];
    for r in trace.records() {
        encode_record(r, &mut rec);
        writer.write_all(&rec)?;
    }
    Ok(())
}

/// Incremental `CCTR` writer for streams whose record count is unknown up
/// front (e.g. ingestion of multi-gigabyte foreign traces).
///
/// The header is written immediately with placeholder `trailing`/`count`
/// fields; [`TraceWriter::finish`] seeks back and patches them, so the
/// finished file is byte-identical to [`write_trace`] over the same
/// records. The writer itself holds O(1) memory regardless of trace
/// length.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ccsim_trace::{read_trace, TraceRecord, TraceWriter};
///
/// let mut cursor = std::io::Cursor::new(Vec::new());
/// let mut w = TraceWriter::new(&mut cursor, "streamed")?;
/// w.write_record(&TraceRecord::load(0x400000, 0x1000, 8))?;
/// w.finish(3)?; // 3 trailing non-memory instructions
/// let trace = read_trace(&cursor.get_ref()[..])?;
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.trailing_nonmem(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    writer: W,
    /// Byte offset of the `trailing` header field (just past the name).
    patch_offset: u64,
    count: u64,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a `CCTR` stream named `name` at `writer`'s current
    /// position (which need not be 0 — the trace may be appended inside
    /// a larger container), emitting the header with zeroed
    /// `trailing`/`count` placeholders.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut writer: W, name: &str) -> io::Result<TraceWriter<W>> {
        let start = writer.stream_position()?;
        writer.write_all(&MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        let name = name.as_bytes();
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name)?;
        let patch_offset = start + 4 + 4 + 4 + name.len() as u64;
        writer.write_all(&0u64.to_le_bytes())?; // trailing, patched by finish
        writer.write_all(&0u64.to_le_bytes())?; // count, patched by finish
        Ok(TraceWriter { writer, patch_offset, count: 0 })
    }

    /// Appends one record to the stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, r: &TraceRecord) -> io::Result<()> {
        let mut rec = [0u8; RECORD_BYTES];
        encode_record(r, &mut rec);
        self.writer.write_all(&rec)?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Completes the stream: patches the header's `trailing` and `count`
    /// fields, flushes, and returns the underlying writer (positioned at
    /// the end of the trace).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self, trailing_nonmem: u64) -> io::Result<W> {
        let end = self.writer.stream_position()?;
        self.writer.seek(SeekFrom::Start(self.patch_offset))?;
        self.writer.write_all(&trailing_nonmem.to_le_bytes())?;
        self.writer.write_all(&self.count.to_le_bytes())?;
        self.writer.seek(SeekFrom::Start(end))?;
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// The header of a `CCTR` stream, as returned by [`read_trace_header`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// The embedded workload name.
    pub name: String,
    /// Trailing non-memory instruction count.
    pub trailing_nonmem: u64,
    /// Number of records that follow the header.
    pub count: u64,
}

impl TraceHeader {
    /// Total bytes a well-formed file with this header occupies.
    pub fn expected_file_len(&self) -> u64 {
        4 + 4 + 4 + self.name.len() as u64 + 8 + 8 + self.count * RECORD_BYTES as u64
    }
}

/// Reads and validates just the header of a `CCTR` stream, leaving the
/// reader positioned at the first record. Used to probe files cheaply
/// (cache validation, campaign dry-runs) without decoding every record.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] exactly as [`read_trace`] would for the
/// same malformed header.
pub fn read_trace_header<R: Read>(mut reader: R) -> Result<TraceHeader, DecodeTraceError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(DecodeTraceError::BadMagic(magic));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(DecodeTraceError::UnsupportedVersion(version));
    }
    let namelen = read_u32(&mut reader)? as usize;
    if namelen > 1 << 20 {
        return Err(DecodeTraceError::Corrupt("name length"));
    }
    let mut name = vec![0u8; namelen];
    reader.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| DecodeTraceError::BadName)?;
    let trailing_nonmem = read_u64(&mut reader)?;
    let count = read_u64(&mut reader)?;
    if count > 1 << 40 {
        return Err(DecodeTraceError::Corrupt("record count"));
    }
    Ok(TraceHeader { name, trailing_nonmem, count })
}

/// Streaming record reader over a `CCTR` stream: one record at a time,
/// O(1) memory. [`read_trace`] is a thin wrapper that collects it.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    reader: R,
    header: TraceHeader,
    remaining: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a `CCTR` stream, consuming and validating its header.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeTraceError`] on a malformed header.
    pub fn new(mut reader: R) -> Result<TraceReader<R>, DecodeTraceError> {
        let header = read_trace_header(&mut reader)?;
        let remaining = header.count;
        Ok(TraceReader { reader, header, remaining })
    }

    /// The stream's header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Decodes the next record, or `None` once `count` records were read.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeTraceError`] on a truncated or corrupt record.
    #[allow(clippy::should_implement_trait)] // fallible next, as in std::io
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, DecodeTraceError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut rec = [0u8; RECORD_BYTES];
        self.reader.read_exact(&mut rec)?;
        self.remaining -= 1;
        Ok(Some(decode_record(&rec)?))
    }
}

/// Deserializes a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on I/O failure, bad magic, unsupported
/// version, or a corrupt stream (implausible lengths, bad UTF-8, unknown
/// access kind).
pub fn read_trace<R: Read>(reader: R) -> Result<Trace, DecodeTraceError> {
    let mut stream = TraceReader::new(reader)?;
    // Cap the pre-allocation: a corrupt-but-plausible header count must
    // not commit gigabytes before the short read surfaces.
    let mut records = Vec::with_capacity(stream.header().count.min(1 << 20) as usize);
    while let Some(r) = stream.next_record()? {
        records.push(r);
    }
    let TraceHeader { name, trailing_nonmem, .. } = stream.header().clone();
    Ok(Trace::from_parts(name, records, trailing_nonmem))
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    reader.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    fn sample_trace() -> Trace {
        let mut b = TraceBuffer::new("sample");
        b.nonmem(3);
        b.load(0x400100, 0x7000_0000, 8);
        b.store(0x400108, 0x7000_0040, 4);
        b.nonmem(11);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.instructions(), t.instructions());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = TraceBuffer::new("empty").finish();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::BadMagic(_))));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        bytes[4..8].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::UnsupportedVersion(7))));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::Io(_))));
    }

    #[test]
    fn unknown_access_kind_rejected() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        // Kind byte of the first record: header is 4+4+4+6("sample")+8+8.
        let kind_off = 4 + 4 + 4 + 6 + 8 + 8 + 17;
        bytes[kind_off] = 9;
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::Corrupt("access kind"))));
    }

    #[test]
    fn implausible_name_length_rejected() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::Corrupt("name length"))));
    }

    #[test]
    fn streaming_writer_is_byte_identical_to_write_trace() {
        let t = sample_trace();
        let mut whole = Vec::new();
        write_trace(&t, &mut whole).unwrap();

        let mut cursor = std::io::Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut cursor, t.name()).unwrap();
        for r in t.records() {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.count(), t.len() as u64);
        w.finish(t.trailing_nonmem()).unwrap();
        assert_eq!(cursor.into_inner(), whole);
    }

    #[test]
    fn streaming_writer_appends_inside_a_container() {
        // The writer must patch its own header even when the trace does
        // not start at offset 0 of the underlying stream.
        let prefix = b"CONTAINER-HEADER";
        let mut cursor = std::io::Cursor::new(prefix.to_vec());
        cursor.seek(SeekFrom::End(0)).unwrap();
        let mut w = TraceWriter::new(&mut cursor, "inner").unwrap();
        w.write_record(&TraceRecord::load(0x400, 0x1000, 8)).unwrap();
        w.finish(5).unwrap();
        let bytes = cursor.into_inner();
        assert_eq!(&bytes[..prefix.len()], prefix, "prefix untouched");
        let inner = read_trace(&bytes[prefix.len()..]).unwrap();
        assert_eq!(inner.name(), "inner");
        assert_eq!(inner.len(), 1);
        assert_eq!(inner.trailing_nonmem(), 5);
    }

    #[test]
    fn streaming_writer_of_empty_trace_roundtrips() {
        let mut cursor = std::io::Cursor::new(Vec::new());
        let w = TraceWriter::new(&mut cursor, "empty").unwrap();
        w.finish(17).unwrap();
        let back = read_trace(&cursor.get_ref()[..]).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.trailing_nonmem(), 17);
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn header_probe_reads_counts_without_records() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let h = read_trace_header(&bytes[..]).unwrap();
        assert_eq!(h.name, "sample");
        assert_eq!(h.count, 2);
        assert_eq!(h.trailing_nonmem, 11);
        assert_eq!(h.expected_file_len(), bytes.len() as u64);
        // The probe succeeds even when every record is missing...
        let header_len = bytes.len() - 2 * RECORD_BYTES;
        assert_eq!(read_trace_header(&bytes[..header_len]).unwrap(), h);
        // ...but a torn header is still an error.
        assert!(read_trace_header(&bytes[..10]).is_err());
    }

    #[test]
    fn streaming_reader_yields_records_in_order() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let mut got = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            got.push(rec);
        }
        assert_eq!(got, t.records());
        assert!(r.next_record().unwrap().is_none(), "reader stays exhausted");
    }
}
