//! Binary trace serialization.
//!
//! Format (`CCTR` version 1), all integers little-endian:
//!
//! ```text
//! magic   : 4 bytes  "CCTR"
//! version : u32      (1)
//! namelen : u32
//! name    : namelen bytes of UTF-8
//! trailing: u64      trailing non-memory instruction count
//! count   : u64      number of records
//! records : count x 20 bytes:
//!     pc            u64
//!     vaddr         u64
//!     size          u8
//!     kind          u8   (0 = load, 1 = store)
//!     nonmem_before u16
//! ```

use std::io::{self, Read, Write};

use crate::{AccessKind, DecodeTraceError, Trace, TraceRecord};

const MAGIC: [u8; 4] = *b"CCTR";
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 20;

/// Serializes `trace` into `writer` in the `CCTR` binary format.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ccsim_trace::{read_trace, write_trace, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("roundtrip");
/// buf.load(0x400000, 0x1000, 8);
/// let trace = buf.finish();
///
/// let mut bytes = Vec::new();
/// write_trace(&trace, &mut bytes)?;
/// let back = read_trace(&bytes[..])?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&trace.trailing_nonmem().to_le_bytes())?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_BYTES];
    for r in trace.records() {
        rec[0..8].copy_from_slice(&r.pc.to_le_bytes());
        rec[8..16].copy_from_slice(&r.vaddr.to_le_bytes());
        rec[16] = r.size;
        rec[17] = r.kind.is_store() as u8;
        rec[18..20].copy_from_slice(&r.nonmem_before.to_le_bytes());
        writer.write_all(&rec)?;
    }
    Ok(())
}

/// Deserializes a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on I/O failure, bad magic, unsupported
/// version, or a corrupt stream (implausible lengths, bad UTF-8, unknown
/// access kind).
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, DecodeTraceError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(DecodeTraceError::BadMagic(magic));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(DecodeTraceError::UnsupportedVersion(version));
    }
    let namelen = read_u32(&mut reader)? as usize;
    if namelen > 1 << 20 {
        return Err(DecodeTraceError::Corrupt("name length"));
    }
    let mut name = vec![0u8; namelen];
    reader.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| DecodeTraceError::BadName)?;
    let trailing = read_u64(&mut reader)?;
    let count = read_u64(&mut reader)?;
    if count > 1 << 40 {
        return Err(DecodeTraceError::Corrupt("record count"));
    }
    let mut records = Vec::with_capacity(count as usize);
    let mut rec = [0u8; RECORD_BYTES];
    for _ in 0..count {
        reader.read_exact(&mut rec)?;
        let kind = match rec[17] {
            0 => AccessKind::Load,
            1 => AccessKind::Store,
            _ => return Err(DecodeTraceError::Corrupt("access kind")),
        };
        records.push(TraceRecord {
            pc: u64::from_le_bytes(rec[0..8].try_into().unwrap()),
            vaddr: u64::from_le_bytes(rec[8..16].try_into().unwrap()),
            size: rec[16],
            kind,
            nonmem_before: u16::from_le_bytes(rec[18..20].try_into().unwrap()),
        });
    }
    Ok(Trace::from_parts(name, records, trailing))
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    reader.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    fn sample_trace() -> Trace {
        let mut b = TraceBuffer::new("sample");
        b.nonmem(3);
        b.load(0x400100, 0x7000_0000, 8);
        b.store(0x400108, 0x7000_0040, 4);
        b.nonmem(11);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.instructions(), t.instructions());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = TraceBuffer::new("empty").finish();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::BadMagic(_))));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        bytes[4..8].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::UnsupportedVersion(7))));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::Io(_))));
    }

    #[test]
    fn unknown_access_kind_rejected() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        // Kind byte of the first record: header is 4+4+4+6("sample")+8+8.
        let kind_off = 4 + 4 + 4 + 6 + 8 + 8 + 17;
        bytes[kind_off] = 9;
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::Corrupt("access kind"))));
    }

    #[test]
    fn implausible_name_length_rejected() {
        let mut bytes = Vec::new();
        write_trace(&sample_trace(), &mut bytes).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_trace(&bytes[..]), Err(DecodeTraceError::Corrupt("name length"))));
    }
}
