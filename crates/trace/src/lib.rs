//! # ccsim-trace
//!
//! Memory-access traces for the ccsim cache-characterization suite.
//!
//! This crate provides everything needed to *produce*, *persist* and
//! *characterize* the instruction/memory traces that drive the simulator in
//! `ccsim-core`:
//!
//! * [`TraceRecord`] / [`Trace`] — the compact trace representation: one
//!   record per memory instruction, with interleaved non-memory instruction
//!   counts so MPKI and IPC can be computed.
//! * [`TraceBuffer`] — incremental construction.
//! * [`TraceArena`] / [`TracedVec`] — an instrumented-execution layer that
//!   plays the role of a PIN-style tracer: real algorithms (the GAP graph
//!   kernels in `ccsim-graph`) run against arena-allocated arrays and every
//!   load/store is captured with a static pseudo-PC.
//! * [`synth`] — reusable synthetic pattern primitives (streams, pointer
//!   chases, Zipf random access, stack frames, binary-search probes) from
//!   which the SPEC/XSBench/Qualcomm workload proxies are assembled.
//! * [`stats`] — footprint, PC-diversity and reuse-distance
//!   characterization.
//! * [`write_trace`] / [`read_trace`] — binary serialization.
//!
//! # Example
//!
//! ```
//! use ccsim_trace::{stats::TraceStats, synth::{PatternGen, SequentialStream}, TraceBuffer};
//!
//! let mut buf = TraceBuffer::new("stream");
//! SequentialStream::new(0x1000_0000, 1 << 16).laps(2).emit(&mut buf);
//! let trace = buf.finish();
//! let stats = TraceStats::compute(&trace);
//! assert_eq!(stats.footprint_bytes, 1 << 16);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod buffer;
mod error;
mod io;
mod record;
pub mod stats;
pub mod synth;

pub use arena::{Pc, TraceArena, TraceScalar, TracedVec};
pub use buffer::TraceBuffer;
pub use error::DecodeTraceError;
pub use io::{
    read_trace, read_trace_header, write_trace, TraceHeader, TraceReader, TraceWriter,
    MAGIC as CCTR_MAGIC, VERSION as CCTR_VERSION,
};
pub use record::{AccessKind, Trace, TraceRecord};

/// log2 of the cache block size.
pub const BLOCK_SHIFT: u32 = 6;
/// Cache block size in bytes (64, as on all modern x86 parts).
pub const BLOCK_BYTES: u64 = 1 << BLOCK_SHIFT;
