//! Parallel (trace x policy) sweep execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use ccsim_policies::PolicyKind;
use ccsim_trace::Trace;

use crate::config::SimConfig;
use crate::result::SimResult;
use crate::simulator::simulate;

/// Default worker count for sweeps: available parallelism capped at 8
/// (simulation is memory-bandwidth-bound; more threads rarely help).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(4)
}

/// Execution context handed to every job run by [`run_jobs_ctx`].
///
/// Local sweeps only care about `thread`; distributed campaign workers
/// (`ccsim-dist`) additionally thread their identity through so per-cell
/// diagnostics and progress lines can attribute work to the process that
/// did it.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx<'a> {
    /// Index of the OS worker thread executing this job (0-based, within
    /// this process).
    pub thread: usize,
    /// Identity of the distributed campaign worker this process acts as;
    /// empty for plain local runs.
    pub worker: &'a str,
    /// Caller-defined epoch/generation tag — distributed workers pass the
    /// highest lease epoch of the batch so reclaimed work is visible in
    /// logs; 0 for plain local runs.
    pub epoch: u64,
}

/// Runs `jobs` independent jobs on `threads` worker threads with
/// work-stealing (an atomic job counter), collecting each result lock-free
/// into its own slot. Results are returned in job order.
///
/// This is the generic engine behind [`run_matrix`], the campaign
/// executor and the distributed campaign worker: jobs may be
/// heterogeneous (different traces, configs and policies) as long as
/// `f(ctx, j)` computes job `j` independently. `worker` and `epoch` are
/// passed through verbatim in every job's [`JobCtx`].
///
/// # Examples
///
/// ```
/// use ccsim_core::experiment::run_jobs_ctx;
///
/// let out = run_jobs_ctx(3, 2, "w1", 7, |ctx, j| {
///     assert_eq!((ctx.worker, ctx.epoch), ("w1", 7));
///     j * 10
/// });
/// assert_eq!(out, vec![0, 10, 20]);
/// ```
pub fn run_jobs_ctx<T, F>(jobs: usize, threads: usize, worker: &str, epoch: u64, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(JobCtx<'_>, usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let next = AtomicUsize::new(0);
    // One slot per job: each index is claimed by exactly one worker via the
    // atomic counter, so every OnceLock is set exactly once and no lock is
    // shared across completed cells.
    let mut slots: Vec<OnceLock<T>> = Vec::new();
    slots.resize_with(jobs, OnceLock::new);
    std::thread::scope(|scope| {
        let (next, slots, f) = (&next, &slots, &f);
        for thread in 0..threads.min(jobs) {
            scope.spawn(move || loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs {
                    break;
                }
                let ctx = JobCtx { thread, worker, epoch };
                assert!(slots[j].set(f(ctx, j)).is_ok(), "job claimed twice");
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().expect("all jobs completed")).collect()
}

/// [`run_jobs_ctx`] without the context: the common entry point for local
/// sweeps that don't care which thread runs which job.
///
/// # Examples
///
/// ```
/// use ccsim_core::experiment::run_jobs;
///
/// let squares = run_jobs(5, 2, |j| j * j);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_jobs<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    run_jobs_ctx(jobs, threads, "", 0, |_, j| f(j))
}

/// One completed cell of a sweep.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Index of the trace in the input slice.
    pub trace_index: usize,
    /// The policy simulated.
    pub policy: PolicyKind,
    /// The simulation result.
    pub result: SimResult,
}

/// Simulates every trace under every policy, in parallel across OS threads,
/// and returns results ordered by `(trace_index, policy order)`.
///
/// The function is deterministic: simulation is single-threaded per cell
/// and cells are independent.
///
/// # Examples
///
/// ```
/// use ccsim_core::{experiment::run_matrix, SimConfig};
/// use ccsim_policies::PolicyKind;
/// use ccsim_trace::{synth::{PatternGen, SequentialStream}, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("t");
/// SequentialStream::new(0, 1 << 12).emit(&mut buf);
/// let traces = vec![buf.finish()];
/// let out = run_matrix(&traces, &[PolicyKind::Lru, PolicyKind::Srrip],
///                      &SimConfig::tiny(), 2);
/// assert_eq!(out.len(), 2);
/// ```
pub fn run_matrix(
    traces: &[Trace],
    policies: &[PolicyKind],
    config: &SimConfig,
    threads: usize,
) -> Vec<MatrixEntry> {
    let jobs: Vec<(usize, PolicyKind)> = traces
        .iter()
        .enumerate()
        .flat_map(|(i, _)| policies.iter().map(move |&p| (i, p)))
        .collect();
    run_jobs(jobs.len(), threads, |j| {
        let (trace_index, policy) = jobs[j];
        MatrixEntry { trace_index, policy, result: simulate(&traces[trace_index], config, policy) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::synth::{PatternGen, RandomAccess};
    use ccsim_trace::TraceBuffer;

    fn traces(n: usize) -> Vec<Trace> {
        (0..n)
            .map(|i| {
                let mut b = TraceBuffer::new(format!("t{i}"));
                RandomAccess::new(0, 1 << 10, 64, 2000).seed(i as u64).emit(&mut b);
                b.finish()
            })
            .collect()
    }

    #[test]
    fn matrix_covers_all_cells_in_order() {
        let ts = traces(3);
        let ps = [PolicyKind::Lru, PolicyKind::Srrip];
        let out = run_matrix(&ts, &ps, &SimConfig::tiny(), 4);
        assert_eq!(out.len(), 6);
        for (k, e) in out.iter().enumerate() {
            assert_eq!(e.trace_index, k / 2);
            assert_eq!(e.policy, ps[k % 2]);
            assert_eq!(e.result.workload, format!("t{}", k / 2));
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let ts = traces(2);
        let ps = [PolicyKind::Lru, PolicyKind::Drrip];
        let serial = run_matrix(&ts, &ps, &SimConfig::tiny(), 1);
        let parallel = run_matrix(&ts, &ps, &SimConfig::tiny(), 8);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.result, b.result);
        }
    }

    #[test]
    fn empty_traces_yield_empty_results() {
        let out = run_matrix(&[], &[PolicyKind::Lru], &SimConfig::tiny(), 2);
        assert!(out.is_empty());
    }

    #[test]
    fn run_jobs_orders_heterogeneous_results() {
        let out = run_jobs(100, 7, |j| 3 * j + 1);
        assert_eq!(out.len(), 100);
        for (j, v) in out.iter().enumerate() {
            assert_eq!(*v, 3 * j + 1);
        }
    }

    #[test]
    fn run_jobs_with_more_threads_than_jobs() {
        assert_eq!(run_jobs(1, 64, |j| j), vec![0]);
        assert_eq!(run_jobs(0, 4, |j| j), Vec::<usize>::new());
    }

    #[test]
    fn job_ctx_carries_worker_identity_and_thread_index() {
        let out = run_jobs_ctx(16, 4, "worker-a", 3, |ctx, j| {
            assert_eq!(ctx.worker, "worker-a");
            assert_eq!(ctx.epoch, 3);
            assert!(ctx.thread < 4);
            (ctx.thread, j)
        });
        assert_eq!(out.len(), 16);
        for (j, (_, job)) in out.iter().enumerate() {
            assert_eq!(*job, j, "results stay in job order");
        }
        // The plain wrapper reports an anonymous local context.
        let ctxs = run_jobs_ctx(1, 1, "", 0, |ctx, _| (ctx.worker.to_owned(), ctx.epoch));
        assert_eq!(ctxs[0], (String::new(), 0));
    }
}
