//! Parallel (trace x policy) sweep execution.

use ccsim_policies::PolicyKind;
use ccsim_trace::Trace;

use crate::config::SimConfig;
use crate::result::SimResult;
use crate::simulator::simulate;

/// One completed cell of a sweep.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Index of the trace in the input slice.
    pub trace_index: usize,
    /// The policy simulated.
    pub policy: PolicyKind,
    /// The simulation result.
    pub result: SimResult,
}

/// Simulates every trace under every policy, in parallel across OS threads,
/// and returns results ordered by `(trace_index, policy order)`.
///
/// The function is deterministic: simulation is single-threaded per cell
/// and cells are independent.
///
/// # Examples
///
/// ```
/// use ccsim_core::{experiment::run_matrix, SimConfig};
/// use ccsim_policies::PolicyKind;
/// use ccsim_trace::{synth::{PatternGen, SequentialStream}, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("t");
/// SequentialStream::new(0, 1 << 12).emit(&mut buf);
/// let traces = vec![buf.finish()];
/// let out = run_matrix(&traces, &[PolicyKind::Lru, PolicyKind::Srrip],
///                      &SimConfig::tiny(), 2);
/// assert_eq!(out.len(), 2);
/// ```
pub fn run_matrix(
    traces: &[Trace],
    policies: &[PolicyKind],
    config: &SimConfig,
    threads: usize,
) -> Vec<MatrixEntry> {
    assert!(threads > 0, "need at least one worker thread");
    let jobs: Vec<(usize, PolicyKind)> = traces
        .iter()
        .enumerate()
        .flat_map(|(i, _)| policies.iter().map(move |&p| (i, p)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<MatrixEntry>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    let results_mutex = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (trace_index, policy) = jobs[j];
                let result = simulate(&traces[trace_index], config, policy);
                let entry = MatrixEntry { trace_index, policy, result };
                results_mutex.lock().expect("no panics hold the lock")[j] = Some(entry);
            });
        }
    });
    results.into_iter().map(|e| e.expect("all jobs completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::synth::{PatternGen, RandomAccess};
    use ccsim_trace::TraceBuffer;

    fn traces(n: usize) -> Vec<Trace> {
        (0..n)
            .map(|i| {
                let mut b = TraceBuffer::new(format!("t{i}"));
                RandomAccess::new(0, 1 << 10, 64, 2000).seed(i as u64).emit(&mut b);
                b.finish()
            })
            .collect()
    }

    #[test]
    fn matrix_covers_all_cells_in_order() {
        let ts = traces(3);
        let ps = [PolicyKind::Lru, PolicyKind::Srrip];
        let out = run_matrix(&ts, &ps, &SimConfig::tiny(), 4);
        assert_eq!(out.len(), 6);
        for (k, e) in out.iter().enumerate() {
            assert_eq!(e.trace_index, k / 2);
            assert_eq!(e.policy, ps[k % 2]);
            assert_eq!(e.result.workload, format!("t{}", k / 2));
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let ts = traces(2);
        let ps = [PolicyKind::Lru, PolicyKind::Drrip];
        let serial = run_matrix(&ts, &ps, &SimConfig::tiny(), 1);
        let parallel = run_matrix(&ts, &ps, &SimConfig::tiny(), 8);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.result, b.result);
        }
    }

    #[test]
    fn empty_traces_yield_empty_results() {
        let out = run_matrix(&[], &[PolicyKind::Lru], &SimConfig::tiny(), 2);
        assert!(out.is_empty());
    }
}
