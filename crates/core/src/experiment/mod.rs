//! Experiment harness: parallel sweeps and report formatting.
//!
//! The binaries in `ccsim-bench` and the `ccsim-campaign` engine use this
//! module to regenerate the paper's figures: [`run_jobs`] executes
//! independent jobs with work-stealing and lock-free per-slot result
//! collection, [`run_matrix`] specializes it to (trace x policy) sweeps,
//! [`grid`] replays every cell of a (config × policy) grid from one pass
//! over the trace, and [`report`] renders aligned ASCII tables and CSV
//! for the results.

pub mod grid;
pub mod report;
mod runner;

pub use grid::{simulate_grid, simulate_grid_stream, GridReplay};
pub use report::Table;
pub use runner::{default_threads, run_jobs, run_jobs_ctx, run_matrix, JobCtx, MatrixEntry};
