//! Experiment harness: parallel sweeps and report formatting.
//!
//! The binaries in `ccsim-bench` use this module to regenerate the paper's
//! figures: [`run_matrix`] simulates every (trace x policy) combination in
//! parallel, and [`report`] renders aligned
//! ASCII tables and CSV for the results.

pub mod report;
mod runner;

pub use report::Table;
pub use runner::{run_matrix, MatrixEntry};
