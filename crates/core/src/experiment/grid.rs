//! One-pass grid replay: drive every (config × policy) cell of a
//! workload from a single pass over its trace.
//!
//! The paper's characterization grids replay one workload under many
//! (replacement policy × LLC size) cells. Replaying per cell reads and
//! decodes the identical byte stream once *per cell* — a 12-policy ×
//! 4-size grid makes 48 passes over the same records. [`GridReplay`]
//! makes one: records are decoded into a fixed-size, reusable chunk
//! buffer, and N independent replay engines (one [`crate::Hierarchy`] +
//! core pair per cell) advance in lockstep through each chunk.
//!
//! Chunking matters twice over. It amortizes every per-record decode
//! across all cells, and it keeps each engine's working state
//! cache-resident while it burns through a chunk instead of alternating
//! engines record by record. Because every engine still observes the
//! exact record sequence in order, the per-cell results are
//! **bit-identical** to [`crate::simulate`] / [`crate::simulate_stream`]
//! over the same records, for any chunk size (`tests/grid_replay.rs`
//! pins this with proptests and the ingest golden fixture).
//!
//! The steady state allocates nothing: the chunk buffer is reserved up
//! front and reused, and the per-engine hot path is already
//! allocation-free (`tests/alloc_free.rs` pins both).
//!
//! Chunk length is autotuned by default: [`autotune_chunk_records`]
//! sums the engines' SoA tag-state footprints
//! ([`crate::Hierarchy::hot_state_bytes`]) and, once the grid overflows
//! the host LLC budget, grows the chunk with the overflow ratio so each
//! engine's DRAM re-warm amortizes over more records. Pass an explicit
//! `chunk_records` (the CLI's `--chunk-records`) to override.

use std::io::Read;

use ccsim_policies::PolicyKind;
use ccsim_trace::{DecodeTraceError, Trace, TraceReader, TraceRecord};

use crate::config::SimConfig;
use crate::result::SimResult;
use crate::simulator::Engine;

/// Default records per lockstep chunk: 4096 records (80 KB of CCTR
/// bytes) keep decode amortization high while the chunk itself stays
/// L2-resident alongside the active engine's hot tag state.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// Ceiling the autotuner never exceeds: past 64 K records per chunk the
/// re-warm amortization has flattened out and longer chunks only grow
/// the decode buffer.
pub const MAX_CHUNK_RECORDS: usize = 65_536;

/// Host LLC budget the autotuner sizes chunks against, in bytes (32 MiB
/// covers common server parts; override with
/// [`HOST_LLC_BYTES_ENV`] for a specific machine).
pub const DEFAULT_HOST_LLC_BYTES: u64 = 32 << 20;

/// Environment override for the host LLC budget, in bytes.
pub const HOST_LLC_BYTES_ENV: &str = "CCSIM_HOST_LLC_BYTES";

/// Picks the lockstep chunk length for a grid whose engines' combined
/// hot tag state (sum of [`crate::Hierarchy::hot_state_bytes`] across
/// cells) occupies `combined_tag_bytes`, against a host LLC `budget`.
///
/// While the combined state fits the budget, engines stay LLC-resident
/// across chunk switches and [`DEFAULT_CHUNK_RECORDS`] is already
/// optimal. Once it overflows, every switch re-warms the next engine's
/// tags from DRAM — a cost proportional to its tag bytes and
/// independent of chunk length — so the chunk grows with the overflow
/// ratio to amortize the re-warm over proportionally more records,
/// clamped to [`MAX_CHUNK_RECORDS`]. Chunk size never affects results
/// (replay is bit-identical for any chunking), only wall-clock.
pub fn autotune_chunk_records_for_budget(combined_tag_bytes: u64, budget: u64) -> usize {
    let budget = budget.max(1);
    if combined_tag_bytes <= budget {
        return DEFAULT_CHUNK_RECORDS;
    }
    let scaled = (DEFAULT_CHUNK_RECORDS as u64).saturating_mul(combined_tag_bytes.div_ceil(budget));
    scaled.min(MAX_CHUNK_RECORDS as u64) as usize
}

/// [`autotune_chunk_records_for_budget`] against the ambient budget:
/// [`HOST_LLC_BYTES_ENV`] if set to a positive byte count, else
/// [`DEFAULT_HOST_LLC_BYTES`].
pub fn autotune_chunk_records(combined_tag_bytes: u64) -> usize {
    let budget = std::env::var(HOST_LLC_BYTES_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(DEFAULT_HOST_LLC_BYTES);
    autotune_chunk_records_for_budget(combined_tag_bytes, budget)
}

/// A one-pass lockstep replay over N grid cells.
///
/// Build one with the `(config, policy)` of every cell, feed it records
/// — chunked from a stream ([`GridReplay::replay_reader`]), from memory
/// ([`GridReplay::replay_trace`]), or directly ([`GridReplay::step_records`])
/// — then [`GridReplay::finish`] into per-cell [`SimResult`]s in cell
/// order.
///
/// # Examples
///
/// ```
/// use ccsim_core::experiment::grid::simulate_grid;
/// use ccsim_core::{simulate, SimConfig};
/// use ccsim_policies::PolicyKind;
/// use ccsim_trace::{synth::{PatternGen, SequentialStream}, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("stream");
/// SequentialStream::new(0x1000_0000, 1 << 14).emit(&mut buf);
/// let trace = buf.finish();
///
/// let config = SimConfig::tiny();
/// let cells =
///     [(config, PolicyKind::Lru), (config.with_llc_scale(2), PolicyKind::Srrip)];
/// let results = simulate_grid(&trace, &cells, 0);
/// assert_eq!(results[0], simulate(&trace, &cells[0].0, cells[0].1));
/// assert_eq!(results[1], simulate(&trace, &cells[1].0, cells[1].1));
/// ```
pub struct GridReplay {
    engines: Vec<Engine>,
    policies: Vec<PolicyKind>,
    chunk: Vec<TraceRecord>,
    chunk_records: usize,
}

impl GridReplay {
    /// Builds one replay engine per `(config, policy)` cell with the
    /// given chunk size. `0` means *autotune*: size the chunk against
    /// the combined engines' hot tag-state footprint via
    /// [`autotune_chunk_records`] (which yields
    /// [`DEFAULT_CHUNK_RECORDS`] whenever the grid fits the host LLC
    /// budget — small grids are unaffected).
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`SimConfig`], like [`crate::simulate`].
    pub fn new(cells: &[(SimConfig, PolicyKind)], chunk_records: usize) -> GridReplay {
        let engines: Vec<Engine> =
            cells.iter().map(|(cfg, policy)| Engine::new(cfg, *policy, false)).collect();
        let chunk_records = if chunk_records == 0 {
            autotune_chunk_records(engines.iter().map(Engine::hot_state_bytes).sum())
        } else {
            chunk_records
        };
        GridReplay {
            engines,
            policies: cells.iter().map(|&(_, policy)| policy).collect(),
            chunk: Vec::with_capacity(chunk_records),
            chunk_records,
        }
    }

    /// Number of grid cells driven in lockstep.
    pub fn cells(&self) -> usize {
        self.engines.len()
    }

    /// Records per lockstep chunk.
    pub fn chunk_records(&self) -> usize {
        self.chunk_records
    }

    /// Advances every cell through `records`, in order — one lockstep
    /// chunk. Allocation-free in the steady state (the chunk counters
    /// are pre-registered sharded atomics).
    pub fn step_records(&mut self, records: &[TraceRecord]) {
        for engine in &mut self.engines {
            for rec in records {
                engine.step(rec);
            }
        }
        let m = ccsim_obs::metrics();
        m.grid_chunks.inc();
        m.grid_records.add((records.len() * self.engines.len()) as u64);
    }

    /// Replays an in-memory trace through every cell, chunked.
    pub fn replay_trace(&mut self, trace: &Trace) {
        // The records are already resident; chunking still bounds how
        // much engine state is cycled between consecutive touches.
        let chunk_records = self.chunk_records;
        for chunk in trace.records().chunks(chunk_records) {
            self.step_records(chunk);
        }
    }

    /// Replays a `CCTR` stream through every cell: each chunk is decoded
    /// once into the reusable buffer, then every engine replays it.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeTraceError`] on a truncated or corrupt record;
    /// the partial replay state is unusable and should be dropped.
    pub fn replay_reader<R: Read>(
        &mut self,
        reader: &mut TraceReader<R>,
    ) -> Result<(), DecodeTraceError> {
        loop {
            self.chunk.clear();
            while self.chunk.len() < self.chunk_records {
                match reader.next_record()? {
                    Some(rec) => self.chunk.push(rec),
                    None => break,
                }
            }
            if self.chunk.is_empty() {
                return Ok(());
            }
            // Split the borrow: the chunk buffer is read-only while the
            // engines advance.
            let (chunk, engines) = (&self.chunk, &mut self.engines);
            for engine in engines {
                for rec in chunk {
                    engine.step(rec);
                }
            }
            let m = ccsim_obs::metrics();
            m.grid_chunks.inc();
            m.grid_records.add((self.chunk.len() * self.engines.len()) as u64);
            if self.chunk.len() < self.chunk_records {
                return Ok(()); // short chunk: the stream is exhausted
            }
        }
    }

    /// Finishes every cell into its [`SimResult`], in cell order.
    pub fn finish(self, workload: &str, trailing_nonmem: u64) -> Vec<SimResult> {
        ccsim_obs::metrics().grid_cells.add(self.engines.len() as u64);
        self.engines
            .into_iter()
            .zip(self.policies)
            .map(|(engine, policy)| engine.finish(workload, trailing_nonmem, policy).0)
            .collect()
    }
}

impl std::fmt::Debug for GridReplay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridReplay")
            .field("cells", &self.engines.len())
            .field("chunk_records", &self.chunk_records)
            .finish()
    }
}

/// One-pass replay of an in-memory trace over every `(config, policy)`
/// cell; results in cell order, bit-identical to [`crate::simulate`]
/// per cell. `chunk_records = 0` autotunes the chunk against the grid's
/// combined tag-state footprint ([`autotune_chunk_records`]).
pub fn simulate_grid(
    trace: &Trace,
    cells: &[(SimConfig, PolicyKind)],
    chunk_records: usize,
) -> Vec<SimResult> {
    let mut grid = GridReplay::new(cells, chunk_records);
    grid.replay_trace(trace);
    grid.finish(trace.name(), trace.trailing_nonmem())
}

/// One-pass replay of a `CCTR` stream over every `(config, policy)`
/// cell; results in cell order, bit-identical to
/// [`crate::simulate_stream`] per cell (workload name and trailing
/// non-memory count come from the stream header). `chunk_records = 0`
/// autotunes the chunk ([`autotune_chunk_records`]).
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on a truncated or corrupt record; the
/// partial simulation is discarded.
pub fn simulate_grid_stream<R: Read>(
    mut reader: TraceReader<R>,
    cells: &[(SimConfig, PolicyKind)],
    chunk_records: usize,
) -> Result<Vec<SimResult>, DecodeTraceError> {
    let mut grid = GridReplay::new(cells, chunk_records);
    grid.replay_reader(&mut reader)?;
    let header = reader.header();
    Ok(grid.finish(&header.name, header.trailing_nonmem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use ccsim_trace::synth::{PatternGen, RandomAccess};
    use ccsim_trace::{write_trace, TraceBuffer};

    fn mixed_trace() -> Trace {
        let mut buf = TraceBuffer::new("grid");
        RandomAccess::new(0x1000_0000, 1 << 12, 64, 6_000)
            .store_fraction(0.2)
            .seed(7)
            .emit(&mut buf);
        buf.finish()
    }

    fn paper_cells() -> Vec<(SimConfig, PolicyKind)> {
        let mut cells = Vec::new();
        for scale in [1u32, 2, 4] {
            let config = SimConfig::tiny().with_llc_scale(scale);
            for policy in [PolicyKind::Lru, PolicyKind::Ship, PolicyKind::Hawkeye] {
                cells.push((config, policy));
            }
        }
        cells
    }

    #[test]
    fn grid_replay_matches_per_cell_simulate_for_any_chunk_size() {
        let trace = mixed_trace();
        let cells = paper_cells();
        let reference: Vec<SimResult> =
            cells.iter().map(|(cfg, p)| simulate(&trace, cfg, *p)).collect();
        for chunk in [1, 7, 512, 1 << 20] {
            assert_eq!(simulate_grid(&trace, &cells, chunk), reference, "chunk={chunk}");
        }
    }

    #[test]
    fn streamed_grid_replay_matches_in_memory_grid_replay() {
        let trace = mixed_trace();
        let cells = paper_cells();
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let streamed =
            simulate_grid_stream(TraceReader::new(&bytes[..]).unwrap(), &cells, 100).unwrap();
        assert_eq!(streamed, simulate_grid(&trace, &cells, 100));
        // A chunk size exactly dividing the record count exercises the
        // empty-final-chunk path.
        let exact =
            simulate_grid_stream(TraceReader::new(&bytes[..]).unwrap(), &cells, trace.len())
                .unwrap();
        assert_eq!(exact, streamed);
    }

    #[test]
    fn grid_replay_surfaces_decode_errors() {
        let trace = mixed_trace();
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        let cells = [(SimConfig::tiny(), PolicyKind::Lru)];
        let err = simulate_grid_stream(TraceReader::new(&bytes[..]).unwrap(), &cells, 64);
        assert!(err.is_err(), "truncated stream must not produce results");
    }

    #[test]
    fn empty_grid_and_empty_trace_are_fine() {
        let trace = mixed_trace();
        assert!(simulate_grid(&trace, &[], 0).is_empty());
        let empty = Trace::from_parts("empty", Vec::new(), 3);
        let results = simulate_grid(&empty, &[(SimConfig::tiny(), PolicyKind::Lru)], 0);
        assert_eq!(results[0], simulate(&empty, &SimConfig::tiny(), PolicyKind::Lru));
    }

    #[test]
    fn default_chunk_is_applied_when_the_grid_fits_the_llc_budget() {
        // A single tiny cell is far below the host LLC budget, so the
        // autotuned chunk (chunk_records = 0) is the default.
        let grid = GridReplay::new(&[(SimConfig::tiny(), PolicyKind::Lru)], 0);
        assert_eq!(grid.chunk_records(), DEFAULT_CHUNK_RECORDS);
        assert_eq!(grid.cells(), 1);
        assert!(format!("{grid:?}").contains("cells: 1"));
    }

    #[test]
    fn autotune_scales_chunks_with_the_overflow_ratio() {
        let budget = 32 << 20;
        // Within budget: the default chunk is already optimal.
        assert_eq!(autotune_chunk_records_for_budget(0, budget), DEFAULT_CHUNK_RECORDS);
        assert_eq!(autotune_chunk_records_for_budget(budget, budget), DEFAULT_CHUNK_RECORDS);
        // 3x overflow: chunks triple.
        assert_eq!(
            autotune_chunk_records_for_budget(3 * budget, budget),
            3 * DEFAULT_CHUNK_RECORDS
        );
        // Partial overflow rounds up.
        assert_eq!(
            autotune_chunk_records_for_budget(budget + 1, budget),
            2 * DEFAULT_CHUNK_RECORDS
        );
        // Absurd overflow clamps at the ceiling instead of ballooning
        // the decode buffer.
        assert_eq!(autotune_chunk_records_for_budget(u64::MAX, budget), MAX_CHUNK_RECORDS);
        assert_eq!(autotune_chunk_records_for_budget(u64::MAX, 0), MAX_CHUNK_RECORDS);
    }

    #[test]
    fn autotuned_chunk_tracks_the_grid_tag_footprint() {
        // Enough cascade-lake cells at large LLC scales to overflow the
        // default 32 MiB budget: the autotuned chunk must grow past the
        // default, and replay results must be unaffected (chunking is
        // pure mechanics).
        let mut cells = Vec::new();
        for scale in [32u32, 64, 128] {
            for policy in [PolicyKind::Lru, PolicyKind::Srrip] {
                cells.push((SimConfig::cascade_lake().with_llc_scale(scale), policy));
            }
        }
        let grid = GridReplay::new(&cells, 0);
        assert!(
            grid.chunk_records() > DEFAULT_CHUNK_RECORDS,
            "combined tag state should overflow the budget, got chunk {}",
            grid.chunk_records()
        );
        assert!(grid.chunk_records() <= MAX_CHUNK_RECORDS);
    }
}
