//! Aligned ASCII tables and CSV emission for experiment results.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use ccsim_core::experiment::Table;
///
/// let mut t = Table::new(vec!["workload".into(), "mpki".into()]);
/// t.row(vec!["bfs.kron".into(), "41.8".into()]);
/// let s = t.render();
/// assert!(s.contains("bfs.kron"));
/// assert!(s.starts_with("workload"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders as CSV (comma-separated; cells containing commas are
    /// double-quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["wide-cell-content".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // The second column starts at the same offset in header and row.
        let hpos = lines[0].find("long-header").unwrap();
        let rpos = lines[2].find('1').unwrap();
        assert_eq!(hpos, rpos);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["x".into()]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_f_digits() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(-0.5, 1), "-0.5");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
