//! Simulation results and derived metrics.

use crate::cache::CacheStats;
use crate::dram::DramStats;

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Workload (trace) name.
    pub workload: String,
    /// LLC replacement policy name.
    pub policy: String,
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// L1D statistics.
    pub l1d: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// LLC statistics.
    pub llc: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// LLC policy diagnostic line.
    pub llc_diag: String,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// L1D demand misses per kilo-instruction (the paper's Figure 2 metric).
    pub fn mpki_l1d(&self) -> f64 {
        self.l1d.mpki(self.instructions)
    }

    /// L2 demand misses per kilo-instruction.
    pub fn mpki_l2(&self) -> f64 {
        self.l2.mpki(self.instructions)
    }

    /// LLC demand misses per kilo-instruction.
    pub fn mpki_llc(&self) -> f64 {
        self.llc.mpki(self.instructions)
    }

    /// Fraction of L1D demand misses that also miss the L2 and LLC and are
    /// served by DRAM (the paper reports 78.6 % for GAP).
    pub fn dram_reach_fraction(&self) -> f64 {
        if self.l1d.demand_misses == 0 {
            return 0.0;
        }
        self.llc.demand_misses as f64 / self.l1d.demand_misses as f64
    }

    /// Percentage speed-up of this run over `baseline` (same workload):
    /// `(ipc / ipc_base - 1) * 100`.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        let base = baseline.ipc();
        if base == 0.0 {
            return 0.0;
        }
        (self.ipc() / base - 1.0) * 100.0
    }
}

/// Geometric mean of `values` (arithmetic-in-log-space).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Geometric-mean *speed-up in percent* from per-workload IPC ratios:
/// `(geomean(ratios) - 1) * 100`, the exact quantity in the paper's
/// Figure 3.
pub fn geomean_speedup_percent(ipc_ratios: &[f64]) -> f64 {
    (geomean(ipc_ratios) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(instr: u64, cycles: u64) -> SimResult {
        SimResult {
            workload: "w".into(),
            policy: "p".into(),
            instructions: instr,
            cycles,
            l1d: CacheStats::default(),
            l2: CacheStats::default(),
            llc: CacheStats::default(),
            dram: DramStats::default(),
            llc_diag: String::new(),
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = result(1000, 1000);
        let fast = result(1000, 800);
        assert!((fast.ipc() - 1.25).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 25.0).abs() < 1e-9);
        assert!((base.speedup_over(&fast) + 20.0).abs() < 1e-9);
    }

    #[test]
    fn mpki_uses_instruction_count() {
        let mut r = result(10_000, 1);
        r.llc.demand_misses = 420;
        assert!((r.mpki_llc() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn dram_reach_fraction_ratio() {
        let mut r = result(1, 1);
        r.l1d.demand_misses = 100;
        r.llc.demand_misses = 78;
        assert!((r.dram_reach_fraction() - 0.78).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_speedup_percent_matches_figure_semantics() {
        // Two workloads at +2% and -1%: geomean of 1.02 and 0.99 is
        // sqrt(1.0098) = 1.004888 -> +0.4888 %.
        let pct = geomean_speedup_percent(&[1.02, 0.99]);
        assert!((pct - 0.4888).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "geomean of empty slice")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_nonpositive_panics() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
