//! Trace replay: ties the core model to the memory hierarchy.
//!
//! Two equivalent drivers share one replay engine:
//!
//! * [`simulate`] replays an in-memory [`Trace`];
//! * [`simulate_stream`] replays records straight from a
//!   [`ccsim_trace::TraceReader`], so a multi-gigabyte `CCTR` file on
//!   disk simulates in O(1) memory without ever materializing.
//!
//! The two produce byte-identical [`SimResult`]s for the same records
//! (`tests/stream_replay.rs` pins this with proptests and the ingest
//! golden fixture).

use std::io::Read;

use ccsim_policies::PolicyKind;
use ccsim_trace::{DecodeTraceError, Trace, TraceReader, TraceRecord};

use crate::config::SimConfig;
use crate::cpu::Core;
use crate::hierarchy::{Hierarchy, Level};
use crate::result::SimResult;

/// The replay engine: one core driving one hierarchy, record by record.
/// Both simulation entry points are thin loops over [`Engine::step`], and
/// the one-pass grid driver (`experiment::grid`) advances many engines in
/// lockstep through shared record chunks.
pub(crate) struct Engine {
    hierarchy: Hierarchy,
    core: Core,
}

impl Engine {
    pub(crate) fn new(config: &SimConfig, llc_policy: PolicyKind, log_llc: bool) -> Engine {
        config.validate().expect("invalid simulator config");
        let mut hierarchy =
            Hierarchy::new(config, llc_policy.build_dispatch(config.llc.sets, config.llc.ways));
        if log_llc {
            hierarchy.enable_llc_log();
        }
        Engine { hierarchy, core: Core::new(config.core) }
    }

    /// Hot tag-state bytes of this engine's hierarchy (the chunk
    /// autotuner sums this across lockstep cells).
    pub(crate) fn hot_state_bytes(&self) -> u64 {
        self.hierarchy.hot_state_bytes()
    }

    #[inline]
    pub(crate) fn step(&mut self, rec: &TraceRecord) {
        if rec.nonmem_before > 0 {
            self.core.dispatch_nonmem(rec.nonmem_before as u64);
        }
        let is_store = rec.kind.is_store();
        let (pc, vaddr) = (rec.pc, rec.vaddr);
        let hierarchy = &mut self.hierarchy;
        self.core.dispatch_mem(|at| {
            let done = hierarchy.demand_access(pc, vaddr, is_store, at);
            if is_store {
                // Stores retire through the store buffer: the RFO proceeds
                // in the background and does not stall the core.
                at + 1
            } else {
                done
            }
        });
    }

    pub(crate) fn finish(
        mut self,
        workload: &str,
        trailing_nonmem: u64,
        llc_policy: PolicyKind,
    ) -> (SimResult, Option<Vec<(u32, u64)>>) {
        if trailing_nonmem > 0 {
            self.core.dispatch_nonmem(trailing_nonmem);
        }
        let (instructions, cycles) = self.core.finish();
        let log = self.hierarchy.take_llc_log();
        let result = SimResult {
            workload: workload.to_owned(),
            policy: llc_policy.name().to_owned(),
            instructions,
            cycles,
            l1d: *self.hierarchy.cache_stats(Level::L1d),
            l2: *self.hierarchy.cache_stats(Level::L2),
            llc: *self.hierarchy.cache_stats(Level::Llc),
            dram: *self.hierarchy.dram_stats(),
            llc_diag: self.hierarchy.llc_policy_diag(),
        };
        (result, log)
    }
}

/// Simulates `trace` on `config` with `llc_policy` at the last level.
///
/// # Examples
///
/// ```
/// use ccsim_core::{simulate, SimConfig};
/// use ccsim_policies::PolicyKind;
/// use ccsim_trace::{synth::{PatternGen, SequentialStream}, TraceBuffer};
///
/// let mut buf = TraceBuffer::new("stream");
/// SequentialStream::new(0x1000_0000, 1 << 14).emit(&mut buf);
/// let trace = buf.finish();
/// let result = simulate(&trace, &SimConfig::cascade_lake(), PolicyKind::Lru);
/// assert!(result.ipc() > 0.0);
/// assert_eq!(result.instructions, trace.instructions());
/// ```
pub fn simulate(trace: &Trace, config: &SimConfig, llc_policy: PolicyKind) -> SimResult {
    run(trace, config, llc_policy, false).0
}

/// Like [`simulate`], additionally returning the LLC demand stream
/// (`(set, block)` pairs) for offline OPT analysis.
pub fn simulate_with_llc_log(
    trace: &Trace,
    config: &SimConfig,
    llc_policy: PolicyKind,
) -> (SimResult, Vec<(u32, u64)>) {
    let (result, log) = run(trace, config, llc_policy, true);
    (result, log.expect("log was enabled"))
}

/// Replays a `CCTR` stream straight from `reader` — one record in memory
/// at a time, so campaign cells over multi-gigabyte ingested traces never
/// materialize them. Produces a [`SimResult`] byte-identical to
/// [`simulate`] over the same records (workload name and trailing
/// non-memory count come from the stream header).
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on a truncated or corrupt record; the
/// partial simulation is discarded.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ccsim_core::{simulate, simulate_stream, SimConfig};
/// use ccsim_policies::PolicyKind;
/// use ccsim_trace::{write_trace, TraceBuffer, TraceReader};
///
/// let mut buf = TraceBuffer::new("demo");
/// for i in 0..512u64 {
///     buf.load(0x400, i * 64, 8);
/// }
/// let trace = buf.finish();
/// let mut bytes = Vec::new();
/// write_trace(&trace, &mut bytes)?;
///
/// let config = SimConfig::tiny();
/// let streamed = simulate_stream(TraceReader::new(&bytes[..])?, &config, PolicyKind::Lru)?;
/// assert_eq!(streamed, simulate(&trace, &config, PolicyKind::Lru));
/// # Ok(())
/// # }
/// ```
pub fn simulate_stream<R: Read>(
    mut reader: TraceReader<R>,
    config: &SimConfig,
    llc_policy: PolicyKind,
) -> Result<SimResult, DecodeTraceError> {
    let span = ccsim_obs::metrics().sim_wall_ns.span();
    let mut engine = Engine::new(config, llc_policy, false);
    let mut records = 0u64;
    while let Some(rec) = reader.next_record()? {
        engine.step(&rec);
        records += 1;
    }
    let header = reader.header();
    let result = engine.finish(&header.name, header.trailing_nonmem, llc_policy).0;
    let m = ccsim_obs::metrics();
    m.sim_runs.inc();
    m.sim_records.add(records);
    span.stop();
    Ok(result)
}

fn run(
    trace: &Trace,
    config: &SimConfig,
    llc_policy: PolicyKind,
    log_llc: bool,
) -> (SimResult, Option<Vec<(u32, u64)>>) {
    let span = ccsim_obs::metrics().sim_wall_ns.span();
    let mut engine = Engine::new(config, llc_policy, log_llc);
    for rec in trace {
        engine.step(rec);
    }
    let out = engine.finish(trace.name(), trace.trailing_nonmem(), llc_policy);
    let m = ccsim_obs::metrics();
    m.sim_runs.inc();
    m.sim_records.add(trace.len() as u64);
    span.stop();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::synth::{PatternGen, PointerChase, RandomAccess, SequentialStream};
    use ccsim_trace::{write_trace, TraceBuffer};

    fn trace_of(gen: &dyn PatternGen, name: &str) -> Trace {
        let mut buf = TraceBuffer::new(name);
        gen.emit(&mut buf);
        buf.finish()
    }

    #[test]
    fn cache_resident_loop_has_high_ipc_and_low_mpki() {
        // 8 KB working set looped 50 times: fits in L1D.
        let t = trace_of(&SequentialStream::new(0x1000_0000, 8 << 10).laps(50), "hot");
        let r = simulate(&t, &SimConfig::cascade_lake(), PolicyKind::Lru);
        assert!(r.l1d.hit_rate() > 0.95, "l1 hit rate {}", r.l1d.hit_rate());
        assert!(r.mpki_llc() < 1.0, "llc mpki {}", r.mpki_llc());
        assert!(r.ipc() > 1.0, "ipc {}", r.ipc());
    }

    #[test]
    fn dram_bound_random_access_has_low_ipc() {
        // 64 MB of random accesses: misses everywhere.
        let t = trace_of(&RandomAccess::new(0x1000_0000, 1 << 20, 64, 50_000).seed(1), "rand");
        let r = simulate(&t, &SimConfig::cascade_lake(), PolicyKind::Lru);
        assert!(r.l1d.hit_rate() < 0.1, "l1 hit rate {}", r.l1d.hit_rate());
        assert!(r.dram_reach_fraction() > 0.9, "reach {}", r.dram_reach_fraction());
        assert!(r.ipc() < 1.0, "random dram-bound ipc {}", r.ipc());
    }

    #[test]
    fn pointer_chase_is_slower_than_stream_per_access() {
        let cfg = SimConfig::cascade_lake();
        let chase =
            trace_of(&PointerChase::new(0x2000_0000, 1 << 16, 64).steps(30_000).seed(2), "chase");
        // One access per block so both traces have 30 000 records.
        let stream =
            trace_of(&SequentialStream::new(0x1000_0000, 30_000 * 64).stride(64), "stream");
        let rc = simulate(&chase, &cfg, PolicyKind::Lru);
        let rs = simulate(&stream, &cfg, PolicyKind::Lru);
        // Same record count; the chase misses everywhere while the stream
        // enjoys row-buffer locality, so the chase takes more cycles.
        assert!(rc.cycles > rs.cycles, "chase {} vs stream {}", rc.cycles, rs.cycles);
    }

    #[test]
    fn instruction_count_matches_trace() {
        let t = trace_of(&SequentialStream::new(0, 1 << 12).work(7), "w");
        let r = simulate(&t, &SimConfig::tiny(), PolicyKind::Srrip);
        assert_eq!(r.instructions, t.instructions());
    }

    #[test]
    fn llc_log_covers_l2_misses() {
        let t = trace_of(&RandomAccess::new(0, 1 << 16, 64, 5_000).seed(3), "r");
        let (r, log) = simulate_with_llc_log(&t, &SimConfig::cascade_lake(), PolicyKind::Lru);
        assert_eq!(
            log.len() as u64,
            r.llc.demand_accesses,
            "log must contain every llc demand access"
        );
    }

    #[test]
    fn policies_differ_only_at_llc() {
        // L1/L2 behaviour must be identical across LLC policies.
        let t = trace_of(&RandomAccess::new(0, 1 << 18, 64, 20_000).seed(4), "r");
        let cfg = SimConfig::cascade_lake();
        let a = simulate(&t, &cfg, PolicyKind::Lru);
        let b = simulate(&t, &cfg, PolicyKind::Hawkeye);
        assert_eq!(a.l1d.demand_misses, b.l1d.demand_misses);
        assert_eq!(a.l2.demand_accesses, b.l2.demand_accesses);
    }

    #[test]
    fn stream_replay_equals_in_memory_replay() {
        let t = trace_of(&RandomAccess::new(0, 1 << 16, 64, 8_000).seed(5), "r");
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        let cfg = SimConfig::cascade_lake();
        for policy in [PolicyKind::Lru, PolicyKind::Mpppb] {
            let streamed =
                simulate_stream(TraceReader::new(&bytes[..]).unwrap(), &cfg, policy).unwrap();
            assert_eq!(streamed, simulate(&t, &cfg, policy), "{policy}");
        }
    }

    #[test]
    fn stream_replay_surfaces_decode_errors() {
        let t = trace_of(&SequentialStream::new(0, 1 << 12), "w");
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        let reader = TraceReader::new(&bytes[..]).unwrap();
        let err = simulate_stream(reader, &SimConfig::tiny(), PolicyKind::Lru);
        assert!(err.is_err(), "truncated stream must not produce a result");
    }
}
