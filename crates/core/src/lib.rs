//! # ccsim-core
//!
//! A trace-driven cache-hierarchy simulator in the spirit of ChampSim,
//! modelling the paper's experimental platform: one Cascade Lake-like
//! out-of-order core, a three-level cache hierarchy (32 KB L1D, 1 MB L2,
//! 1.375 MB 11-way LLC) and DDR4-2933 DRAM with banked row buffers. The LLC
//! replacement policy is pluggable (any [`ccsim_policies::PolicyKind`]);
//! L1D and L2 use LRU.
//!
//! The crate also hosts the experiment harness (parallel sweeps, table
//! rendering, geometric-mean speed-ups) used to regenerate the paper's
//! figures.
//!
//! # Example
//!
//! ```
//! use ccsim_core::{simulate, SimConfig};
//! use ccsim_policies::PolicyKind;
//! use ccsim_trace::{synth::{PatternGen, RandomAccess}, TraceBuffer};
//!
//! let mut buf = TraceBuffer::new("random");
//! RandomAccess::new(0x1000_0000, 1 << 16, 64, 10_000).emit(&mut buf);
//! let trace = buf.finish();
//!
//! let lru = simulate(&trace, &SimConfig::cascade_lake(), PolicyKind::Lru);
//! let hawkeye = simulate(&trace, &SimConfig::cascade_lake(), PolicyKind::Hawkeye);
//! println!("LRU ipc={:.3} Hawkeye ipc={:.3}", lru.ipc(), hawkeye.ipc());
//! ```

#![warn(missing_docs)]

/// Identifies the per-access hot-path generation this build simulates
/// with. Surfaced by `ccsim bench --json` (and grepped by CI) so
/// throughput baselines record which implementation produced them.
/// `BENCH_seed.json` was recorded at `boxed_dyn_v0` (per-fill `Vec`
/// allocation, `Box<dyn>` policy dispatch, SipHash MSHR map);
/// `BENCH_soa.json` at `soa_tags_v2` (struct-of-arrays tag store:
/// packed `u64` tag words + dirty bitmaps, branch-free vectorizable
/// probe, stack-buffer view lending), whose predecessor
/// `scratch_enum_dispatch_v1` stored AoS `LineView` tag arrays.
pub const HOT_PATH: &str = "soa_tags_v2";

pub mod cache;
mod config;
mod cpu;
pub mod dram;
pub mod experiment;
mod hierarchy;
mod result;
mod simulator;

pub use cache::{Cache, CacheStats, FillOutcome, TAG_INVALID};
pub use config::{CacheConfig, CoreConfig, DramConfig, SimConfig, MAX_WAYS};
pub use cpu::Core;
pub use dram::{Dram, DramStats};
pub use experiment::grid::{
    autotune_chunk_records, autotune_chunk_records_for_budget, simulate_grid, simulate_grid_stream,
    GridReplay, DEFAULT_CHUNK_RECORDS, MAX_CHUNK_RECORDS,
};
pub use hierarchy::{Hierarchy, Level};
pub use result::{geomean, geomean_speedup_percent, SimResult};
pub use simulator::{simulate, simulate_stream, simulate_with_llc_log};
