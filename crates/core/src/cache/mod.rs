//! Set-associative cache level with pluggable replacement.

mod line;
mod mshr;
mod stats;

pub use line::CacheLine;
pub use mshr::{MshrBank, MshrGrant};
pub use stats::CacheStats;

use ccsim_policies::{AccessInfo, AccessType, LineView, PolicyDispatch, Victim};

use crate::config::CacheConfig;

/// Result of a fill: what (if anything) was displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// The block was cached; a dirty victim (if any) must be written back.
    Filled {
        /// Displaced dirty block that must be written to the level below.
        writeback: Option<u64>,
    },
    /// The policy bypassed the fill (block not cached).
    Bypassed,
}

/// One cache level: tag array + replacement policy + statistics + MSHRs.
///
/// The cache is *write-back, write-allocate* and stores full block
/// addresses as tags. The set index is the block address modulo the set
/// count (sets are a power of two, validated by
/// [`CacheConfig::validate`]).
///
/// # Hot-path contract
///
/// Steady-state accesses (lookup + fill, including victim queries) perform
/// **zero heap allocations** and no tag copies: the tag array stores
/// [`LineView`]s directly, so victim queries lend the policy the live set
/// slice, and the policy is driven through statically dispatched
/// [`PolicyDispatch`] hooks. `tests/alloc_free.rs` enforces the
/// allocation-free property with a counting allocator.
#[derive(Debug)]
pub struct Cache {
    name: &'static str,
    sets: u32,
    ways: u32,
    latency: u64,
    lines: Vec<CacheLine>,
    policy: PolicyDispatch,
    mshrs: MshrBank,
    stats: CacheStats,
    /// Valid lines per set. Lines are never invalidated (the hierarchy is
    /// non-inclusive, without back-invalidation), so the valid ways of a
    /// set are always a prefix and this counter *is* the first free way —
    /// fills skip the invalid-way scan entirely.
    occupied: Vec<u16>,
}

impl Cache {
    /// Builds a cache from `config` with the given `policy` (a
    /// [`PolicyDispatch`] or anything convertible into one, e.g. a
    /// `Box<dyn ReplacementPolicy>`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (callers validate configs at
    /// the simulator boundary; this is a defence in depth).
    pub fn new(name: &'static str, config: CacheConfig, policy: impl Into<PolicyDispatch>) -> Self {
        config.validate().expect("invalid cache config");
        Cache {
            name,
            sets: config.sets,
            ways: config.ways,
            latency: config.latency,
            lines: vec![CacheLine::INVALID; (config.sets * config.ways) as usize],
            policy: policy.into(),
            mshrs: MshrBank::new(config.mshrs),
            stats: CacheStats::default(),
            occupied: vec![0; config.sets as usize],
        }
    }

    /// Cache name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Access (hit) latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Set index for `block`.
    #[inline]
    pub fn set_of(&self, block: u64) -> u32 {
        (block & (self.sets as u64 - 1)) as u32
    }

    /// The MSHR bank (the hierarchy drives miss timing through it).
    pub fn mshrs(&mut self) -> &mut MshrBank {
        &mut self.mshrs
    }

    /// Policy diagnostic line.
    pub fn policy_diag(&self) -> String {
        self.policy.diag()
    }

    #[inline]
    fn idx(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    /// Looks up `block` without changing any state.
    pub fn probe(&self, block: u64) -> Option<u32> {
        let set = self.set_of(block);
        let base = self.idx(set, 0);
        self.lines[base..base + self.ways as usize]
            .iter()
            .position(|l| l.valid && l.block == block)
            .map(|w| w as u32)
    }

    /// Processes a lookup: returns `Some(way)` and updates policy/stats on a
    /// hit, or `None` after counting a miss.
    ///
    /// Store (RFO) hits and writeback hits mark the line dirty.
    pub fn lookup(&mut self, info: &AccessInfo) -> Option<u32> {
        debug_assert_eq!(info.set, self.set_of(info.block));
        let hit = self.probe(info.block);
        match info.kind {
            AccessType::Writeback => {
                self.stats.writeback_accesses += 1;
                if hit.is_some() {
                    self.stats.writeback_hits += 1;
                }
            }
            _ => {
                self.stats.demand_accesses += 1;
                if hit.is_some() {
                    self.stats.demand_hits += 1;
                } else {
                    self.stats.demand_misses += 1;
                }
            }
        }
        if let Some(way) = hit {
            if matches!(info.kind, AccessType::Rfo | AccessType::Writeback) {
                let i = self.idx(info.set, way);
                self.lines[i].dirty = true;
            }
            self.policy.on_hit(info.set, way, info);
        }
        hit
    }

    /// Allocates `info.block`, consulting the policy for a victim when the
    /// set is full. Returns what was displaced, or [`FillOutcome::Bypassed`]
    /// if the policy declined a demand fill.
    ///
    /// The line is installed clean for loads and dirty for RFOs/writebacks.
    pub fn fill(&mut self, info: &AccessInfo) -> FillOutcome {
        debug_assert_eq!(info.set, self.set_of(info.block));
        debug_assert!(self.probe(info.block).is_none(), "fill of resident block");
        let set = info.set;
        let base = self.idx(set, 0);
        let way = if (self.occupied[set as usize] as u32) < self.ways {
            // Valid lines form a prefix (nothing ever invalidates a line),
            // so the occupancy counter is the first free way.
            self.occupied[set as usize] as u32
        } else {
            // Full set: lend the policy the live tag-array slice — no
            // copy, no allocation.
            let views: &[LineView] = &self.lines[base..base + self.ways as usize];
            match self.policy.victim(set, info, views) {
                Victim::Way(w) => {
                    assert!(w < self.ways, "{}: policy victim out of range", self.name);
                    w
                }
                Victim::Bypass => {
                    if info.kind.is_demand() {
                        self.stats.bypasses += 1;
                        return FillOutcome::Bypassed;
                    }
                    // Writebacks cannot bypass (the incoming dirty block
                    // must land somewhere): re-query with bypassing
                    // forbidden so the eviction follows the policy's own
                    // aging order, and count the override.
                    self.stats.writeback_bypass_overrides += 1;
                    let w = self.policy.forced_victim(set, info, views);
                    assert!(w < self.ways, "{}: forced victim out of range", self.name);
                    w
                }
            }
        };
        let i = self.idx(set, way);
        let old = self.lines[i];
        let mut writeback = None;
        if old.valid {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks_out += 1;
                writeback = Some(old.block);
            }
        } else {
            self.occupied[set as usize] += 1;
        }
        self.lines[i] = CacheLine {
            valid: true,
            dirty: matches!(info.kind, AccessType::Rfo | AccessType::Writeback),
            block: info.block,
        };
        self.stats.fills += 1;
        self.policy.on_fill(set, way, info, old.valid.then_some(old.block));
        FillOutcome::Filled { writeback }
    }

    /// Number of valid lines (for tests and occupancy reports).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Notes a demand miss that merged into an outstanding MSHR.
    pub fn note_mshr_merge(&mut self) {
        self.stats.mshr_merges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_policies::PolicyKind;

    fn small() -> Cache {
        let cfg = CacheConfig { sets: 4, ways: 2, latency: 1, mshrs: 2 };
        Cache::new("test", cfg, PolicyKind::Lru.build(cfg.sets, cfg.ways))
    }

    fn load(cache: &Cache, block: u64) -> AccessInfo {
        AccessInfo { pc: 0x400, block, set: cache.set_of(block), kind: AccessType::Load }
    }

    fn rfo(cache: &Cache, block: u64) -> AccessInfo {
        AccessInfo { pc: 0x404, block, set: cache.set_of(block), kind: AccessType::Rfo }
    }

    fn wb(cache: &Cache, block: u64) -> AccessInfo {
        AccessInfo { pc: 0, block, set: cache.set_of(block), kind: AccessType::Writeback }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let a = load(&c, 0x100);
        assert_eq!(c.lookup(&a), None);
        assert_eq!(c.fill(&a), FillOutcome::Filled { writeback: None });
        assert!(c.lookup(&a).is_some());
        assert_eq!(c.stats().demand_misses, 1);
        assert_eq!(c.stats().demand_hits, 1);
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let c = small();
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(5), 1);
        assert_eq!(c.set_of(7), 3);
        assert_eq!(c.set_of(8), 0);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (sets=4).
        let w = rfo(&c, 0);
        c.fill(&w); // dirty
        c.fill(&load(&c, 4));
        // Set full; filling 8 evicts LRU = block 0 (dirty).
        let out = c.fill(&load(&c, 8));
        assert_eq!(out, FillOutcome::Filled { writeback: Some(0) });
        assert_eq!(c.stats().writebacks_out, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.fill(&load(&c, 0));
        c.fill(&load(&c, 4));
        let out = c.fill(&load(&c, 8));
        assert_eq!(out, FillOutcome::Filled { writeback: None });
    }

    #[test]
    fn rfo_hit_marks_dirty() {
        let mut c = small();
        c.fill(&load(&c, 0x20));
        assert!(c.lookup(&rfo(&c, 0x20)).is_some());
        c.fill(&load(&c, 0x24));
        // Evicting 0x20 must now produce a writeback.
        let out = c.fill(&load(&c, 0x28));
        assert_eq!(out, FillOutcome::Filled { writeback: Some(0x20) });
    }

    #[test]
    fn writeback_lookup_counts_separately() {
        let mut c = small();
        c.fill(&load(&c, 0x30));
        assert!(c.lookup(&wb(&c, 0x30)).is_some());
        assert_eq!(c.stats().writeback_accesses, 1);
        assert_eq!(c.stats().writeback_hits, 1);
        assert_eq!(c.stats().demand_accesses, 0);
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = small();
        assert_eq!(c.occupancy(), 0);
        c.fill(&load(&c, 1));
        c.fill(&load(&c, 2));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "fill of resident block")]
    fn double_fill_rejected_in_debug() {
        let mut c = small();
        c.fill(&load(&c, 9));
        c.fill(&load(&c, 9));
    }
}
