//! Set-associative cache level with pluggable replacement.

mod line;
mod mshr;
mod stats;

pub use line::CacheLine;
pub use mshr::{MshrBank, MshrGrant};
pub use stats::CacheStats;

use ccsim_policies::{AccessInfo, AccessType, LineView, PolicyDispatch, Victim};

use crate::config::{CacheConfig, MAX_WAYS};

/// Tag word of an empty slot. Tags are 64-byte block addresses (full
/// addresses shifted right by 6), so bit 63 of a real tag is never set
/// and the sentinel collides with no storable block.
pub const TAG_INVALID: u64 = u64::MAX;

/// Result of a fill: what (if anything) was displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// The block was cached; a dirty victim (if any) must be written back.
    Filled {
        /// Displaced dirty block that must be written to the level below.
        writeback: Option<u64>,
    },
    /// The policy bypassed the fill (block not cached).
    Bypassed,
}

/// One cache level: tag array + replacement policy + statistics + MSHRs.
///
/// The cache is *write-back, write-allocate* and stores full block
/// addresses as tags. The set index is the block address modulo the set
/// count (sets are a power of two, validated by
/// [`CacheConfig::validate`]).
///
/// # Hot-path contract
///
/// Steady-state accesses (lookup + fill, including victim queries) perform
/// **zero heap allocations**. The tag store is a struct-of-arrays: one
/// contiguous `Vec<u64>` of packed tag words (block address, or
/// [`TAG_INVALID`] for an empty slot) plus a one-bit-per-slot dirty
/// bitmap, so `probe`'s way scan is a branch-free equality sweep over a
/// cache-line-contiguous `u64` slice that LLVM autovectorizes. Victim
/// queries lend the policy [`LineView`]s reconstructed into a fixed
/// stack buffer (ways ≤ [`MAX_WAYS`], validated by
/// [`CacheConfig::validate`]) — and skip even that when the policy
/// reports it never reads them ([`PolicyDispatch::inspects_lines`],
/// false for all 12 built-ins). The policy is driven through statically
/// dispatched [`PolicyDispatch`] hooks. `tests/alloc_free.rs` enforces
/// the allocation-free property with a counting allocator.
#[derive(Debug)]
pub struct Cache {
    name: &'static str,
    sets: u32,
    ways: u32,
    latency: u64,
    /// SoA tag store, set-major: slot `set * ways + way` holds the block
    /// address resident in that way, or [`TAG_INVALID`].
    tags: Vec<u64>,
    /// Dirty bits, one per tag slot, packed 64 slots per word.
    dirty: Vec<u64>,
    policy: PolicyDispatch,
    mshrs: MshrBank,
    stats: CacheStats,
    /// Valid lines per set. Lines are never invalidated (the hierarchy is
    /// non-inclusive, without back-invalidation), so the valid ways of a
    /// set are always a prefix and this counter *is* the first free way —
    /// fills skip the invalid-way scan entirely, and probes bound their
    /// sweep to the valid prefix.
    occupied: Vec<u16>,
}

impl Cache {
    /// Builds a cache from `config` with the given `policy` (a
    /// [`PolicyDispatch`] or anything convertible into one, e.g. a
    /// `Box<dyn ReplacementPolicy>`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (callers validate configs at
    /// the simulator boundary; this is a defence in depth).
    pub fn new(name: &'static str, config: CacheConfig, policy: impl Into<PolicyDispatch>) -> Self {
        config.validate().expect("invalid cache config");
        let slots = (config.sets * config.ways) as usize;
        Cache {
            name,
            sets: config.sets,
            ways: config.ways,
            latency: config.latency,
            tags: vec![TAG_INVALID; slots],
            dirty: vec![0; slots.div_ceil(64)],
            policy: policy.into(),
            mshrs: MshrBank::new(config.mshrs),
            stats: CacheStats::default(),
            occupied: vec![0; config.sets as usize],
        }
    }

    /// Cache name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Access (hit) latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Set index for `block`.
    #[inline]
    pub fn set_of(&self, block: u64) -> u32 {
        (block & (self.sets as u64 - 1)) as u32
    }

    /// The MSHR bank (the hierarchy drives miss timing through it).
    pub fn mshrs(&mut self) -> &mut MshrBank {
        &mut self.mshrs
    }

    /// Policy diagnostic line.
    pub fn policy_diag(&self) -> String {
        self.policy.diag()
    }

    #[inline]
    fn idx(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    #[inline]
    fn dirty_bit(&self, slot: usize) -> bool {
        self.dirty[slot >> 6] >> (slot & 63) & 1 != 0
    }

    #[inline]
    fn write_dirty(&mut self, slot: usize, dirty: bool) {
        let bit = 1u64 << (slot & 63);
        let word = &mut self.dirty[slot >> 6];
        *word = (*word & !bit) | (u64::from(dirty) * bit);
    }

    /// Looks up `block` without changing any state.
    ///
    /// The scan is bounded to the set's valid prefix (`occupied`) and is
    /// a branch-free match-mask reduction over the packed tag words — no
    /// early exit, so LLVM turns the equality sweep into vector compares.
    /// At most one way can match (blocks are unique within a set), so
    /// the lowest set bit *is* the hit way.
    #[inline]
    pub fn probe(&self, block: u64) -> Option<u32> {
        let set = self.set_of(block);
        let base = self.idx(set, 0);
        let occ = self.occupied[set as usize] as usize;
        let mut mask = 0u64;
        for (way, &tag) in self.tags[base..base + occ].iter().enumerate() {
            mask |= u64::from(tag == block) << way;
        }
        (mask != 0).then(|| mask.trailing_zeros())
    }

    /// Processes a lookup: returns `Some(way)` and updates policy/stats on a
    /// hit, or `None` after counting a miss.
    ///
    /// Store (RFO) hits and writeback hits mark the line dirty.
    pub fn lookup(&mut self, info: &AccessInfo) -> Option<u32> {
        debug_assert_eq!(info.set, self.set_of(info.block));
        let hit = self.probe(info.block);
        match info.kind {
            AccessType::Writeback => {
                self.stats.writeback_accesses += 1;
                if hit.is_some() {
                    self.stats.writeback_hits += 1;
                }
            }
            _ => {
                self.stats.demand_accesses += 1;
                if hit.is_some() {
                    self.stats.demand_hits += 1;
                } else {
                    self.stats.demand_misses += 1;
                }
            }
        }
        if let Some(way) = hit {
            if matches!(info.kind, AccessType::Rfo | AccessType::Writeback) {
                let i = self.idx(info.set, way);
                self.dirty[i >> 6] |= 1 << (i & 63);
            }
            self.policy.on_hit(info.set, way, info);
        }
        hit
    }

    /// Rebuilds the policy-facing [`LineView`]s of `set` from the SoA
    /// tag store into `buf`, returning the set's ways as a slice.
    fn reconstruct_views<'a>(
        &self,
        set: u32,
        buf: &'a mut [LineView; MAX_WAYS as usize],
    ) -> &'a [LineView] {
        let base = self.idx(set, 0);
        for (way, view) in buf.iter_mut().enumerate().take(self.ways as usize) {
            let tag = self.tags[base + way];
            let valid = tag != TAG_INVALID;
            *view = LineView {
                valid,
                block: if valid { tag } else { 0 },
                dirty: self.dirty_bit(base + way),
            };
        }
        &buf[..self.ways as usize]
    }

    /// Allocates `info.block`, consulting the policy for a victim when the
    /// set is full. Returns what was displaced, or [`FillOutcome::Bypassed`]
    /// if the policy declined a demand fill.
    ///
    /// The line is installed clean for loads and dirty for RFOs/writebacks.
    pub fn fill(&mut self, info: &AccessInfo) -> FillOutcome {
        debug_assert_eq!(info.set, self.set_of(info.block));
        debug_assert!(self.probe(info.block).is_none(), "fill of resident block");
        debug_assert_ne!(info.block, TAG_INVALID, "block collides with the empty-slot sentinel");
        let set = info.set;
        let way = if (self.occupied[set as usize] as u32) < self.ways {
            // Valid lines form a prefix (nothing ever invalidates a line),
            // so the occupancy counter is the first free way.
            self.occupied[set as usize] as u32
        } else {
            // Full set: victim query. Policies that rank victims from
            // their own metadata (all 12 built-ins) skip the view
            // reconstruction entirely; only a policy that inspects lines
            // pays for the stack-buffer rebuild from the SoA store.
            let mut buf = [LineView::INVALID; MAX_WAYS as usize];
            let views: &[LineView] = if self.policy.inspects_lines() {
                self.reconstruct_views(set, &mut buf)
            } else {
                &[]
            };
            match self.policy.victim(set, info, views) {
                Victim::Way(w) => {
                    assert!(w < self.ways, "{}: policy victim out of range", self.name);
                    w
                }
                Victim::Bypass => {
                    if info.kind.is_demand() {
                        self.stats.bypasses += 1;
                        return FillOutcome::Bypassed;
                    }
                    // Writebacks cannot bypass (the incoming dirty block
                    // must land somewhere): re-query with bypassing
                    // forbidden so the eviction follows the policy's own
                    // aging order, and count the override.
                    self.stats.writeback_bypass_overrides += 1;
                    let w = self.policy.forced_victim(set, info, views);
                    assert!(w < self.ways, "{}: forced victim out of range", self.name);
                    w
                }
            }
        };
        let i = self.idx(set, way);
        let old_tag = self.tags[i];
        let mut writeback = None;
        if old_tag != TAG_INVALID {
            self.stats.evictions += 1;
            if self.dirty_bit(i) {
                self.stats.writebacks_out += 1;
                writeback = Some(old_tag);
            }
        } else {
            self.occupied[set as usize] += 1;
        }
        self.tags[i] = info.block;
        self.write_dirty(i, matches!(info.kind, AccessType::Rfo | AccessType::Writeback));
        self.stats.fills += 1;
        self.policy.on_fill(set, way, info, (old_tag != TAG_INVALID).then_some(old_tag));
        FillOutcome::Filled { writeback }
    }

    /// Number of valid lines (for tests and occupancy reports).
    pub fn occupancy(&self) -> usize {
        self.occupied.iter().map(|&o| o as usize).sum()
    }

    /// Bytes of hot per-access state: the packed tag words, the dirty
    /// bitmap and the occupancy counters — everything a probe or fill
    /// touches besides policy metadata. The grid chunk autotuner sizes
    /// lockstep chunks against the sum of this over all live cells.
    pub fn hot_state_bytes(&self) -> u64 {
        (self.tags.len() * 8 + self.dirty.len() * 8 + self.occupied.len() * 2) as u64
    }

    /// Notes a demand miss that merged into an outstanding MSHR.
    pub fn note_mshr_merge(&mut self) {
        self.stats.mshr_merges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_policies::PolicyKind;

    fn small() -> Cache {
        let cfg = CacheConfig { sets: 4, ways: 2, latency: 1, mshrs: 2 };
        Cache::new("test", cfg, PolicyKind::Lru.build(cfg.sets, cfg.ways))
    }

    fn load(cache: &Cache, block: u64) -> AccessInfo {
        AccessInfo { pc: 0x400, block, set: cache.set_of(block), kind: AccessType::Load }
    }

    fn rfo(cache: &Cache, block: u64) -> AccessInfo {
        AccessInfo { pc: 0x404, block, set: cache.set_of(block), kind: AccessType::Rfo }
    }

    fn wb(cache: &Cache, block: u64) -> AccessInfo {
        AccessInfo { pc: 0, block, set: cache.set_of(block), kind: AccessType::Writeback }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let a = load(&c, 0x100);
        assert_eq!(c.lookup(&a), None);
        assert_eq!(c.fill(&a), FillOutcome::Filled { writeback: None });
        assert!(c.lookup(&a).is_some());
        assert_eq!(c.stats().demand_misses, 1);
        assert_eq!(c.stats().demand_hits, 1);
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let c = small();
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(5), 1);
        assert_eq!(c.set_of(7), 3);
        assert_eq!(c.set_of(8), 0);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (sets=4).
        let w = rfo(&c, 0);
        c.fill(&w); // dirty
        c.fill(&load(&c, 4));
        // Set full; filling 8 evicts LRU = block 0 (dirty).
        let out = c.fill(&load(&c, 8));
        assert_eq!(out, FillOutcome::Filled { writeback: Some(0) });
        assert_eq!(c.stats().writebacks_out, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.fill(&load(&c, 0));
        c.fill(&load(&c, 4));
        let out = c.fill(&load(&c, 8));
        assert_eq!(out, FillOutcome::Filled { writeback: None });
    }

    #[test]
    fn rfo_hit_marks_dirty() {
        let mut c = small();
        c.fill(&load(&c, 0x20));
        assert!(c.lookup(&rfo(&c, 0x20)).is_some());
        c.fill(&load(&c, 0x24));
        // Evicting 0x20 must now produce a writeback.
        let out = c.fill(&load(&c, 0x28));
        assert_eq!(out, FillOutcome::Filled { writeback: Some(0x20) });
    }

    #[test]
    fn writeback_lookup_counts_separately() {
        let mut c = small();
        c.fill(&load(&c, 0x30));
        assert!(c.lookup(&wb(&c, 0x30)).is_some());
        assert_eq!(c.stats().writeback_accesses, 1);
        assert_eq!(c.stats().writeback_hits, 1);
        assert_eq!(c.stats().demand_accesses, 0);
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = small();
        assert_eq!(c.occupancy(), 0);
        c.fill(&load(&c, 1));
        c.fill(&load(&c, 2));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "fill of resident block")]
    fn double_fill_rejected_in_debug() {
        let mut c = small();
        c.fill(&load(&c, 9));
        c.fill(&load(&c, 9));
    }

    #[test]
    fn dirty_bitmap_tracks_slots_beyond_the_first_word() {
        // 64 sets x 2 ways = 128 slots: set 40 lives in slots 80/81,
        // past the first 64-bit dirty word.
        let cfg = CacheConfig { sets: 64, ways: 2, latency: 1, mshrs: 2 };
        let mut c = Cache::new("wide", cfg, PolicyKind::Lru.build(cfg.sets, cfg.ways));
        c.fill(&rfo(&c, 40)); // dirty
        c.fill(&load(&c, 40 + 64)); // clean, same set
        let out = c.fill(&load(&c, 40 + 128)); // evicts LRU = dirty block 40
        assert_eq!(out, FillOutcome::Filled { writeback: Some(40) });
        let out = c.fill(&load(&c, 40 + 192)); // evicts clean block 104
        assert_eq!(out, FillOutcome::Filled { writeback: None });
    }

    #[test]
    fn custom_policy_receives_views_reconstructed_from_the_soa_store() {
        use std::cell::RefCell;
        use std::rc::Rc;

        use ccsim_policies::ReplacementPolicy;

        // A boxed policy keeps the conservative `inspects_lines` default,
        // so its victim query must see the set's lines faithfully rebuilt
        // from the packed tags + dirty bitmap.
        #[derive(Debug)]
        struct Spy(Rc<RefCell<Vec<LineView>>>);
        impl ReplacementPolicy for Spy {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn victim(&mut self, _set: u32, _info: &AccessInfo, lines: &[LineView]) -> Victim {
                self.0.borrow_mut().extend_from_slice(lines);
                Victim::Way(0)
            }
            fn on_hit(&mut self, _set: u32, _way: u32, _info: &AccessInfo) {}
            fn on_fill(&mut self, _set: u32, _way: u32, _info: &AccessInfo, _ev: Option<u64>) {}
        }

        let seen = Rc::new(RefCell::new(Vec::new()));
        let cfg = CacheConfig { sets: 4, ways: 2, latency: 1, mshrs: 2 };
        let spy: Box<dyn ReplacementPolicy> = Box::new(Spy(Rc::clone(&seen)));
        let mut c = Cache::new("spied", cfg, spy);
        c.fill(&rfo(&c, 0)); // way 0, dirty
        c.fill(&load(&c, 4)); // way 1, clean
        c.fill(&load(&c, 8)); // full set: victim query
        assert_eq!(
            *seen.borrow(),
            vec![
                LineView { valid: true, block: 0, dirty: true },
                LineView { valid: true, block: 4, dirty: false },
            ],
        );
    }

    #[test]
    fn hot_state_bytes_counts_tags_dirty_words_and_occupancy() {
        // 4 sets x 2 ways: 8 tag words + 1 dirty word + 4 u16 counters.
        assert_eq!(small().hot_state_bytes(), 8 * 8 + 8 + 4 * 2);
    }
}
