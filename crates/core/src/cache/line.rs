//! Cache line state.

/// One cache line: validity, dirtiness and the block it holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLine {
    /// Whether the line holds a valid block.
    pub valid: bool,
    /// Whether the line has been written since allocation.
    pub dirty: bool,
    /// Block address (full address >> 6).
    pub block: u64,
}

impl CacheLine {
    /// An invalid line.
    pub const INVALID: CacheLine = CacheLine { valid: false, dirty: false, block: 0 };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_constant_is_clean() {
        let line = CacheLine::INVALID;
        assert_eq!(line, CacheLine::default());
        assert!(!line.valid && !line.dirty);
    }
}
