//! Cache line state.
//!
//! The tag array itself is a struct-of-arrays (packed `u64` tag words
//! plus a dirty bitmap, see [`crate::Cache`]); `LineView` is the
//! *policy-facing* per-line representation. When a victim query needs
//! line views, [`Cache::fill`](crate::Cache::fill) reconstructs them
//! from the SoA store into a fixed stack buffer — bounded by
//! [`crate::MAX_WAYS`], so the lending path stays allocation-free.

/// One cache line: validity, dirtiness and the block it holds.
///
/// An alias of [`ccsim_policies::LineView`]; see the module docs for how
/// views relate to the SoA tag store.
pub type CacheLine = ccsim_policies::LineView;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_constant_is_clean() {
        let line = CacheLine::INVALID;
        assert_eq!(line, CacheLine::default());
        assert!(!line.valid && !line.dirty);
    }
}
