//! Cache line state.
//!
//! The tag array stores [`ccsim_policies::LineView`] directly: the same
//! struct the replacement-policy trait receives on victim queries. Keeping
//! one representation lets [`Cache::fill`](crate::Cache::fill) lend the
//! policy a slice of the live tag array instead of materializing a copy —
//! the victim path is zero-copy and allocation-free.

/// One cache line: validity, dirtiness and the block it holds.
///
/// An alias of [`ccsim_policies::LineView`]; see the module docs for why
/// the two are the same type.
pub type CacheLine = ccsim_policies::LineView;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_constant_is_clean() {
        let line = CacheLine::INVALID;
        assert_eq!(line, CacheLine::default());
        assert!(!line.valid && !line.dirty);
    }
}
