//! Miss-status holding registers: bounded outstanding-miss tracking with
//! same-block merging.

use std::collections::HashMap;

/// Outcome of requesting an MSHR for a missing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrGrant {
    /// A new miss may issue; the slot index must be passed to
    /// [`MshrBank::complete`], and `start_at` is when the miss can leave
    /// (delayed past `ready` if all MSHRs were busy).
    Issue {
        /// Slot to fill in later.
        slot: u32,
        /// Earliest cycle the miss can be sent downstream.
        start_at: u64,
    },
    /// An outstanding miss to the same block absorbs this one; it completes
    /// when that miss fills.
    Merged {
        /// Completion cycle of the outstanding miss.
        completes_at: u64,
    },
}

/// A bank of MSHRs. Each slot remembers when it frees; a full bank delays
/// new misses until the earliest slot frees (modelling miss-bandwidth
/// limits), and misses to an already-outstanding block merge.
#[derive(Debug)]
pub struct MshrBank {
    free_at: Vec<u64>,
    outstanding: HashMap<u64, u64>,
}

impl MshrBank {
    /// Creates a bank of `count` registers.
    pub fn new(count: u32) -> Self {
        assert!(count > 0, "mshr bank must have at least one register");
        MshrBank { free_at: vec![0; count as usize], outstanding: HashMap::new() }
    }

    /// Requests a register for a miss to `block` observed at cycle `ready`.
    pub fn acquire(&mut self, block: u64, ready: u64) -> MshrGrant {
        if let Some(&completes) = self.outstanding.get(&block) {
            if completes > ready {
                return MshrGrant::Merged { completes_at: completes };
            }
            // Stale entry: the miss already completed.
            self.outstanding.remove(&block);
        }
        // Opportunistic pruning keeps the map proportional to the bank.
        if self.outstanding.len() > 4 * self.free_at.len() {
            self.outstanding.retain(|_, &mut c| c > ready);
        }
        let (slot, &free) =
            self.free_at.iter().enumerate().min_by_key(|&(_, &f)| f).expect("bank non-empty");
        MshrGrant::Issue { slot: slot as u32, start_at: ready.max(free) }
    }

    /// Records that the miss in `slot` for `block` completes at
    /// `completes_at`, freeing the register at that time.
    pub fn complete(&mut self, slot: u32, block: u64, completes_at: u64) {
        self.free_at[slot as usize] = completes_at;
        self.outstanding.insert(block, completes_at);
    }

    /// Completion time of an outstanding (or recently completed) miss to
    /// `block`, if one was recorded. Used by the hit path: a tag hit on a
    /// block whose fill is still in flight cannot return data before the
    /// fill arrives.
    pub fn pending(&self, block: u64) -> Option<u64> {
        self.outstanding.get(&block).copied()
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Always false: constructor requires at least one register.
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_issues_immediately() {
        let mut b = MshrBank::new(2);
        match b.acquire(0xA, 100) {
            MshrGrant::Issue { start_at, .. } => assert_eq!(start_at, 100),
            g => panic!("expected issue, got {g:?}"),
        }
    }

    #[test]
    fn same_block_merges_while_outstanding() {
        let mut b = MshrBank::new(2);
        let MshrGrant::Issue { slot, .. } = b.acquire(0xA, 10) else { panic!() };
        b.complete(slot, 0xA, 500);
        assert_eq!(b.acquire(0xA, 20), MshrGrant::Merged { completes_at: 500 });
        // After completion time, no merge.
        match b.acquire(0xA, 600) {
            MshrGrant::Issue { .. } => {}
            g => panic!("expected fresh issue, got {g:?}"),
        }
    }

    #[test]
    fn full_bank_delays_new_misses() {
        let mut b = MshrBank::new(1);
        let MshrGrant::Issue { slot, start_at } = b.acquire(0xA, 0) else { panic!() };
        assert_eq!(start_at, 0);
        b.complete(slot, 0xA, 300);
        match b.acquire(0xB, 10) {
            MshrGrant::Issue { start_at, .. } => {
                assert_eq!(start_at, 300, "must wait for the busy mshr");
            }
            g => panic!("expected delayed issue, got {g:?}"),
        }
    }

    #[test]
    fn distinct_blocks_use_distinct_slots() {
        let mut b = MshrBank::new(2);
        let MshrGrant::Issue { slot: s0, .. } = b.acquire(0xA, 0) else { panic!() };
        b.complete(s0, 0xA, 1000);
        let MshrGrant::Issue { slot: s1, start_at } = b.acquire(0xB, 5) else { panic!() };
        assert_ne!(s0, s1);
        assert_eq!(start_at, 5, "second mshr is free");
        b.complete(s1, 0xB, 900);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_mshrs_rejected() {
        let _ = MshrBank::new(0);
    }
}
