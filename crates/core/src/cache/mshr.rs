//! Miss-status holding registers: bounded outstanding-miss tracking with
//! same-block merging.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for block addresses. The outstanding-miss map is
/// consulted on every lookup and updated on every miss at every level;
/// SipHash (the `HashMap` default) was a measurable fraction of the
/// per-record cost on miss-heavy traces. Block addresses are already
/// high-entropy in the low bits, so a Fibonacci multiply followed by a
/// down-mix is collision-adequate and compiles to a few cycles. Not
/// DoS-resistant — fine for simulator-internal keys.
#[derive(Debug, Default)]
struct BlockHasher(u64);

impl Hasher for BlockHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by MshrBank).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type BlockMap = HashMap<u64, u64, BuildHasherDefault<BlockHasher>>;

/// Minimum reserved capacity for a bank's outstanding-miss map. The live
/// window scales with the core's ROB depth, not the bank size (the L1
/// bank has 8 registers but can have hundreds of completed-but-unretired
/// misses in flight), so small banks still reserve room for a deep
/// window.
const RESERVE_FLOOR: usize = 1024;

/// Outcome of requesting an MSHR for a missing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrGrant {
    /// A new miss may issue; the slot index must be passed to
    /// [`MshrBank::complete`], and `start_at` is when the miss can leave
    /// (delayed past `ready` if all MSHRs were busy).
    Issue {
        /// Slot to fill in later.
        slot: u32,
        /// Earliest cycle the miss can be sent downstream.
        start_at: u64,
    },
    /// An outstanding miss to the same block absorbs this one; it completes
    /// when that miss fills.
    Merged {
        /// Completion cycle of the outstanding miss.
        completes_at: u64,
    },
}

/// A bank of MSHRs. Each slot remembers when it frees; a full bank delays
/// new misses until the earliest slot frees (modelling miss-bandwidth
/// limits), and misses to an already-outstanding block merge.
#[derive(Debug)]
pub struct MshrBank {
    free_at: Vec<u64>,
    outstanding: BlockMap,
    /// Map length that triggers the next stale-entry prune. Doubles past
    /// the surviving length after each prune (floored at 4x the bank) so
    /// pruning costs amortized O(1) per miss even when the retirement
    /// frontier lags far behind the fill frontier and most entries are
    /// still live — a fixed threshold made every acquire rescan the map
    /// on ROB-deep miss streams. Capped at [`MshrBank::prune_cap`] so the
    /// map's length can never cross the half-capacity line where a
    /// tombstone-triggered rehash would reallocate instead of rehashing
    /// in place: steady-state misses stay allocation-free.
    prune_at: usize,
}

impl MshrBank {
    /// Upper bound for `prune_at`: half the reserved capacity, so inserts
    /// only ever rehash in place (see [`MshrBank::new`]).
    fn prune_cap(&self) -> usize {
        RESERVE_FLOOR.max(16 * self.free_at.len()) / 2
    }

    /// Creates a bank of `count` registers.
    pub fn new(count: u32) -> Self {
        assert!(count > 0, "mshr bank must have at least one register");
        // Reserve well past the prune band: hashbrown reallocates (rather
        // than rehashing tombstones in place) once length exceeds half
        // the table, so keeping `prune_at` <= reserve/2 pins the table's
        // allocation for the bank's lifetime under any bounded-lag
        // workload.
        let reserve = RESERVE_FLOOR.max(16 * count as usize);
        let outstanding =
            BlockMap::with_capacity_and_hasher(reserve, BuildHasherDefault::default());
        MshrBank { free_at: vec![0; count as usize], outstanding, prune_at: 4 * count as usize }
    }

    /// Requests a register for a miss to `block` observed at cycle `ready`.
    pub fn acquire(&mut self, block: u64, ready: u64) -> MshrGrant {
        if let Some(&completes) = self.outstanding.get(&block) {
            if completes > ready {
                return MshrGrant::Merged { completes_at: completes };
            }
            // Stale entry: the miss already completed.
            self.outstanding.remove(&block);
        }
        // Opportunistic pruning keeps the map proportional to the live
        // miss window. Dropping a stale entry (completes <= ready) never
        // changes behaviour — a lookup would discard it anyway — so the
        // schedule is free to amortize: prune only once the map doubles
        // past the last prune's survivors.
        if self.outstanding.len() > self.prune_at {
            self.outstanding.retain(|_, &mut c| c > ready);
            self.prune_at =
                (2 * self.outstanding.len()).clamp(4 * self.free_at.len(), self.prune_cap());
        }
        // Any already-free slot is as good as the earliest-freeing one
        // (`start_at` is `ready` either way), so stop at the first — the
        // common case in steady state; the full min-scan only runs while
        // the bank is saturated.
        let mut slot = 0usize;
        let mut free = self.free_at[0];
        if free > ready {
            for (i, &f) in self.free_at.iter().enumerate().skip(1) {
                if f <= ready {
                    (slot, free) = (i, f);
                    break;
                }
                if f < free {
                    (slot, free) = (i, f);
                }
            }
        }
        MshrGrant::Issue { slot: slot as u32, start_at: ready.max(free) }
    }

    /// Records that the miss in `slot` for `block` completes at
    /// `completes_at`, freeing the register at that time.
    pub fn complete(&mut self, slot: u32, block: u64, completes_at: u64) {
        self.free_at[slot as usize] = completes_at;
        self.outstanding.insert(block, completes_at);
    }

    /// Completion time of an outstanding (or recently completed) miss to
    /// `block`, if one was recorded. Used by the hit path: a tag hit on a
    /// block whose fill is still in flight cannot return data before the
    /// fill arrives.
    pub fn pending(&self, block: u64) -> Option<u64> {
        self.outstanding.get(&block).copied()
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Always false: constructor requires at least one register.
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_issues_immediately() {
        let mut b = MshrBank::new(2);
        match b.acquire(0xA, 100) {
            MshrGrant::Issue { start_at, .. } => assert_eq!(start_at, 100),
            g => panic!("expected issue, got {g:?}"),
        }
    }

    #[test]
    fn same_block_merges_while_outstanding() {
        let mut b = MshrBank::new(2);
        let MshrGrant::Issue { slot, .. } = b.acquire(0xA, 10) else { panic!() };
        b.complete(slot, 0xA, 500);
        assert_eq!(b.acquire(0xA, 20), MshrGrant::Merged { completes_at: 500 });
        // After completion time, no merge.
        match b.acquire(0xA, 600) {
            MshrGrant::Issue { .. } => {}
            g => panic!("expected fresh issue, got {g:?}"),
        }
    }

    #[test]
    fn full_bank_delays_new_misses() {
        let mut b = MshrBank::new(1);
        let MshrGrant::Issue { slot, start_at } = b.acquire(0xA, 0) else { panic!() };
        assert_eq!(start_at, 0);
        b.complete(slot, 0xA, 300);
        match b.acquire(0xB, 10) {
            MshrGrant::Issue { start_at, .. } => {
                assert_eq!(start_at, 300, "must wait for the busy mshr");
            }
            g => panic!("expected delayed issue, got {g:?}"),
        }
    }

    #[test]
    fn distinct_blocks_use_distinct_slots() {
        let mut b = MshrBank::new(2);
        let MshrGrant::Issue { slot: s0, .. } = b.acquire(0xA, 0) else { panic!() };
        b.complete(s0, 0xA, 1000);
        let MshrGrant::Issue { slot: s1, start_at } = b.acquire(0xB, 5) else { panic!() };
        assert_ne!(s0, s1);
        assert_eq!(start_at, 5, "second mshr is free");
        b.complete(s1, 0xB, 900);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_mshrs_rejected() {
        let _ = MshrBank::new(0);
    }
}
