//! Per-cache-level statistics.

/// Hit/miss/traffic counters for one cache level.
///
/// *Demand* covers loads and RFOs; writebacks arriving from the level above
/// are tracked separately — MPKI, the paper's figure-2 metric, counts demand
/// misses only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand (load + RFO) lookups.
    pub demand_accesses: u64,
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Demand misses merged into an already-outstanding MSHR.
    pub mshr_merges: u64,
    /// Writeback lookups arriving from the level above.
    pub writeback_accesses: u64,
    /// Writebacks that hit (updated in place).
    pub writeback_hits: u64,
    /// Lines allocated (fills), demand and writeback.
    pub fills: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Dirty evictions emitted to the level below.
    pub writebacks_out: u64,
    /// Demand fills the policy chose not to cache.
    pub bypasses: u64,
    /// Writeback fills where the policy proposed a bypass and was
    /// overridden (writebacks cannot bypass; the eviction falls back to
    /// the policy's bypass-forbidden aging order).
    pub writeback_bypass_overrides: u64,
}

impl CacheStats {
    /// Demand hit rate in [0, 1]; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            return 0.0;
        }
        self.demand_hits as f64 / self.demand_accesses as f64
    }

    /// Demand misses per kilo-instruction given the run's instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.demand_misses as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn mpki_scales_per_kilo_instruction() {
        let s = CacheStats { demand_misses: 50, ..Default::default() };
        assert!((s.mpki(1000) - 50.0).abs() < 1e-12);
        assert!((s.mpki(2000) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_fraction() {
        let s = CacheStats {
            demand_accesses: 10,
            demand_hits: 7,
            demand_misses: 3,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }
}
