//! Out-of-order core proxy.
//!
//! The model captures the two mechanisms that determine how cache misses
//! translate into lost cycles on a modern OoO core:
//!
//! * **dispatch bandwidth** — at most `width` instructions enter the window
//!   per cycle, bounding peak IPC;
//! * **the finite instruction window** — instructions retire in order, so a
//!   long-latency load at the head of the ROB blocks retirement; once the
//!   ROB fills, dispatch (and therefore the issue of future loads) stalls
//!   until the head completes. Independent loads inside the window overlap,
//!   which is exactly memory-level parallelism.
//!
//! Register dependences are not tracked (the trace format does not carry
//! them); this makes MLP slightly optimistic, uniformly across replacement
//! policies, so relative comparisons are preserved.
//!
//! The ROB is run-length encoded: a run of `count` instructions completing
//! at the same cycle occupies one entry, which keeps the model fast on
//! traces with large non-memory preambles.

use std::collections::VecDeque;

use crate::config::CoreConfig;

/// The core model. Drive it by dispatching instructions in program order;
/// memory instructions receive their completion time from the hierarchy.
#[derive(Debug)]
pub struct Core {
    rob: VecDeque<(u64, u32)>,
    occupancy: u32,
    rob_size: u32,
    width: u32,
    cycle: u64,
    dispatched_this_cycle: u32,
    instructions: u64,
    max_completion: u64,
}

impl Core {
    /// Creates a core from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: CoreConfig) -> Self {
        config.validate().expect("invalid core config");
        Core {
            // Each entry covers >= 1 instruction and total occupancy is
            // capped at rob_size, so the ring can never hold more than
            // rob_size entries: reserving once makes the dispatch loop
            // allocation-free for the lifetime of the core.
            rob: VecDeque::with_capacity(config.rob_size as usize + 1),
            occupancy: 0,
            rob_size: config.rob_size,
            width: config.width,
            cycle: 0,
            dispatched_this_cycle: 0,
            instructions: 0,
            max_completion: 0,
        }
    }

    /// Current dispatch cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions dispatched so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Makes room and bandwidth for one instruction; returns its dispatch
    /// cycle.
    fn slot(&mut self) -> u64 {
        if self.dispatched_this_cycle >= self.width {
            self.cycle += 1;
            self.dispatched_this_cycle = 0;
        }
        while self.occupancy >= self.rob_size {
            // In-order retirement: wait for the head to complete.
            let &(done, count) = self.rob.front().expect("occupancy > 0");
            if done > self.cycle {
                self.cycle = done;
                self.dispatched_this_cycle = 0;
            }
            self.rob.pop_front();
            self.occupancy -= count;
        }
        self.dispatched_this_cycle += 1;
        self.cycle
    }

    fn push(&mut self, completion: u64, count: u32) {
        self.max_completion = self.max_completion.max(completion);
        if let Some(back) = self.rob.back_mut() {
            if back.0 == completion {
                back.1 += count;
                self.occupancy += count;
                return;
            }
        }
        self.rob.push_back((completion, count));
        self.occupancy += count;
    }

    /// Dispatches `n` non-memory instructions (unit execution latency).
    pub fn dispatch_nonmem(&mut self, mut n: u64) {
        while n > 0 {
            let at = self.slot();
            // Batch the rest of this cycle's bandwidth and ROB space
            // (slot() already consumed one dispatch and guarantees space
            // for at least one instruction).
            let batch = (self.width - self.dispatched_this_cycle + 1)
                .min(self.rob_size - self.occupancy)
                .min(n.min(u32::MAX as u64) as u32)
                .max(1);
            // `slot` already consumed one dispatch; account the rest.
            self.dispatched_this_cycle += batch - 1;
            self.instructions += batch as u64;
            self.push(at + 1, batch);
            n -= batch as u64;
        }
    }

    /// Dispatches one memory instruction; `issue` receives the dispatch
    /// cycle and must return the completion cycle (from the hierarchy).
    pub fn dispatch_mem<F: FnOnce(u64) -> u64>(&mut self, issue: F) {
        let at = self.slot();
        self.instructions += 1;
        let done = issue(at);
        self.push(done.max(at + 1), 1);
    }

    /// Finishes execution: returns (instructions, total cycles), draining
    /// the window.
    pub fn finish(self) -> (u64, u64) {
        (self.instructions, self.cycle.max(self.max_completion).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(rob: u32, width: u32) -> Core {
        Core::new(CoreConfig { rob_size: rob, width })
    }

    #[test]
    fn ideal_ipc_equals_width() {
        let mut c = core(128, 4);
        c.dispatch_nonmem(4000);
        let (instr, cycles) = c.finish();
        assert_eq!(instr, 4000);
        let ipc = instr as f64 / cycles as f64;
        assert!((ipc - 4.0).abs() < 0.1, "ipc {ipc} should be ~width");
    }

    #[test]
    fn single_long_load_blocks_at_rob_head() {
        // ROB 4: a 1000-cycle load then many quick instructions; the window
        // fills and dispatch stalls until the load completes.
        let mut c = core(4, 1);
        c.dispatch_mem(|at| at + 1000);
        c.dispatch_nonmem(100);
        let (_, cycles) = c.finish();
        assert!(cycles >= 1000, "rob head must gate progress, got {cycles}");
    }

    #[test]
    fn independent_loads_overlap_within_window() {
        // Two models: large window overlaps 8 x 500-cycle loads; tiny
        // window serializes them.
        let run = |rob_size| {
            let mut c = core(rob_size, 4);
            for i in 0..8u64 {
                c.dispatch_mem(|at| at + 500 + i);
            }
            c.finish().1
        };
        let wide = run(64);
        let narrow = run(1);
        assert!(wide < 600, "wide window should overlap: {wide}");
        assert!(narrow > 3000, "rob=1 must serialize: {narrow}");
    }

    #[test]
    fn memory_bound_ipc_collapses() {
        let mut c = core(8, 4);
        for _ in 0..100 {
            c.dispatch_mem(|at| at + 200);
        }
        let (instr, cycles) = c.finish();
        let ipc = instr as f64 / cycles as f64;
        assert!(ipc < 0.5, "100 long loads through rob=8 must be slow, ipc={ipc}");
    }

    #[test]
    fn instruction_count_is_exact() {
        let mut c = core(16, 2);
        c.dispatch_nonmem(123);
        c.dispatch_mem(|at| at + 1);
        c.dispatch_nonmem(1);
        assert_eq!(c.instructions(), 125);
    }

    #[test]
    fn finish_reflects_outstanding_completions() {
        let mut c = core(16, 2);
        c.dispatch_mem(|at| at + 10_000);
        let (_, cycles) = c.finish();
        assert!(cycles >= 10_000);
    }
}
