//! Simulator configuration.
//!
//! Defaults model the paper's experimental setup (§I-C): a single Cascade
//! Lake core with 32 KB L1D, 1 MB L2, 1.375 MB 11-way LLC and 8 GB of
//! DDR4-2933. All latencies are in core clock cycles (4 GHz nominal).

use std::fmt;

/// Compile-time ceiling on cache associativity.
///
/// The SoA tag store's probe builds a one-bit-per-way match mask in a
/// `u64`, and victim queries that need [`ccsim_policies::LineView`]s
/// reconstruct them into a fixed `[LineView; MAX_WAYS]` stack buffer —
/// both cap the ways per set at 64. [`CacheConfig::validate`] enforces
/// the bound, so every constructed cache can rely on it.
pub const MAX_WAYS: u32 = 64;

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Access (hit) latency in cycles, charged on every traversal.
    pub latency: u64,
    /// Miss-status holding registers: maximum outstanding misses.
    pub mshrs: u32,
}

impl CacheConfig {
    /// Total capacity in bytes (sets x ways x 64 B).
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * 64
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message if sets/ways/mshrs are zero, sets is not a power
    /// of two (the set-index mapping requires it), or ways exceeds
    /// [`MAX_WAYS`] (the probe match mask and victim stack buffer
    /// require it).
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || self.ways == 0 {
            return Err("cache must have non-zero sets and ways".into());
        }
        if !self.sets.is_power_of_two() {
            return Err(format!("sets must be a power of two, got {}", self.sets));
        }
        if self.ways > MAX_WAYS {
            return Err(format!("ways must be <= {MAX_WAYS}, got {}", self.ways));
        }
        if self.mshrs == 0 {
            return Err("cache must have at least one mshr".into());
        }
        Ok(())
    }
}

/// DDR4 timing in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (single channel).
    pub banks: u32,
    /// Blocks per row (row-buffer size / 64 B).
    pub row_blocks: u32,
    /// Column access latency (tCAS) for a row-buffer hit.
    pub t_cas: u64,
    /// Row activation latency (tRCD).
    pub t_rcd: u64,
    /// Precharge latency (tRP).
    pub t_rp: u64,
    /// Data-burst duration for one 64 B line.
    pub t_burst: u64,
    /// Fixed controller/queueing overhead per request.
    pub t_controller: u64,
}

impl DramConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if banks or row size are zero or not powers of two.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err(format!("banks must be a non-zero power of two, got {}", self.banks));
        }
        if self.row_blocks == 0 || !self.row_blocks.is_power_of_two() {
            return Err(format!(
                "row_blocks must be a non-zero power of two, got {}",
                self.row_blocks
            ));
        }
        Ok(())
    }
}

/// Out-of-order core proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder-buffer capacity (instruction window).
    pub rob_size: u32,
    /// Instructions dispatched (and retired) per cycle.
    pub width: u32,
}

impl CoreConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if the ROB or width is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.rob_size == 0 || self.width == 0 {
            return Err("core must have non-zero rob and width".into());
        }
        Ok(())
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache (the policy under study plugs in here).
    pub llc: CacheConfig,
    /// Memory.
    pub dram: DramConfig,
    /// Core model.
    pub core: CoreConfig,
}

impl SimConfig {
    /// The paper's Cascade Lake-like setup: 32 KB/8-way L1D (4 cycles),
    /// 1 MB/16-way L2 (14 cycles), 1.375 MB/11-way LLC (44 cycles),
    /// DDR4-2933 with 16 banks, 352-entry window, width 4.
    pub fn cascade_lake() -> Self {
        SimConfig {
            l1d: CacheConfig { sets: 64, ways: 8, latency: 4, mshrs: 8 },
            l2: CacheConfig { sets: 1024, ways: 16, latency: 14, mshrs: 32 },
            llc: CacheConfig { sets: 2048, ways: 11, latency: 44, mshrs: 64 },
            dram: DramConfig {
                banks: 16,
                row_blocks: 128,
                t_cas: 58,
                t_rcd: 58,
                t_rp: 58,
                t_burst: 11,
                t_controller: 20,
            },
            core: CoreConfig { rob_size: 352, width: 4 },
        }
    }

    /// A tiny configuration for fast unit tests: 2-set/2-way caches, short
    /// latencies.
    pub fn tiny() -> Self {
        SimConfig {
            l1d: CacheConfig { sets: 2, ways: 2, latency: 1, mshrs: 2 },
            l2: CacheConfig { sets: 4, ways: 2, latency: 4, mshrs: 4 },
            llc: CacheConfig { sets: 8, ways: 2, latency: 10, mshrs: 4 },
            dram: DramConfig {
                banks: 2,
                row_blocks: 4,
                t_cas: 20,
                t_rcd: 20,
                t_rp: 20,
                t_burst: 4,
                t_controller: 4,
            },
            core: CoreConfig { rob_size: 16, width: 2 },
        }
    }

    /// Returns a copy with the LLC scaled to `factor` times the default
    /// capacity by multiplying the set count (associativity preserved).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a power of two.
    pub fn with_llc_scale(mut self, factor: u32) -> Self {
        assert!(factor.is_power_of_two(), "llc scale factor must be a power of two");
        self.llc.sets *= factor;
        self
    }

    /// Validates every component.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure.
    pub fn validate(&self) -> Result<(), String> {
        self.l1d.validate().map_err(|e| format!("l1d: {e}"))?;
        self.l2.validate().map_err(|e| format!("l2: {e}"))?;
        self.llc.validate().map_err(|e| format!("llc: {e}"))?;
        self.dram.validate().map_err(|e| format!("dram: {e}"))?;
        self.core.validate().map_err(|e| format!("core: {e}"))?;
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::cascade_lake()
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1D {}KB/{}w, L2 {}KB/{}w, LLC {}KB/{}w, {} banks DDR4, ROB {}",
            self.l1d.capacity_bytes() / 1024,
            self.l1d.ways,
            self.l2.capacity_bytes() / 1024,
            self.l2.ways,
            self.llc.capacity_bytes() / 1024,
            self.llc.ways,
            self.dram.banks,
            self.core.rob_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_lake_matches_paper_geometry() {
        let c = SimConfig::cascade_lake();
        assert_eq!(c.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(c.l2.capacity_bytes(), 1024 * 1024);
        assert_eq!(c.llc.capacity_bytes(), 1408 * 1024); // 1.375 MB
        assert_eq!(c.llc.ways, 11);
        assert_eq!(c.llc.sets, 2048);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn tiny_validates() {
        assert!(SimConfig::tiny().validate().is_ok());
    }

    #[test]
    fn non_power_of_two_sets_rejected() {
        let mut c = SimConfig::tiny();
        c.llc.sets = 3;
        let err = c.validate().unwrap_err();
        assert!(err.contains("llc") && err.contains("power of two"));
    }

    #[test]
    fn oversized_associativity_rejected() {
        let mut c = SimConfig::tiny();
        c.llc.ways = MAX_WAYS + 1;
        let err = c.validate().unwrap_err();
        assert!(err.contains("llc") && err.contains("ways must be <= 64"), "{err}");
        c.llc.ways = MAX_WAYS;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_mshrs_rejected() {
        let mut c = SimConfig::tiny();
        c.l2.mshrs = 0;
        assert!(c.validate().unwrap_err().contains("l2"));
    }

    #[test]
    fn llc_scaling_multiplies_sets() {
        let c = SimConfig::cascade_lake().with_llc_scale(4);
        assert_eq!(c.llc.sets, 8192);
        assert_eq!(c.llc.capacity_bytes(), 4 * 1408 * 1024);
    }

    #[test]
    fn display_mentions_capacities() {
        let s = SimConfig::cascade_lake().to_string();
        assert!(s.contains("1408KB"));
        assert!(s.contains("ROB 352"));
    }
}
