//! DDR4-like main-memory timing model.
//!
//! Single channel, `banks` banks, open-page policy. Each bank remembers its
//! open row and when it frees; a request pays tCAS on a row hit,
//! tRCD + tCAS on an empty row buffer, and tRP + tRCD + tCAS on a row
//! conflict, plus the data burst and a fixed controller overhead. Bank-level
//! parallelism and row-buffer locality — the two first-order DRAM effects
//! for cache studies — are captured; refresh and low-power states are not.

use crate::config::DramConfig;

/// Statistics for the memory model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read requests served.
    pub reads: u64,
    /// Write (LLC writeback) requests served.
    pub writes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that opened a row in an idle bank.
    pub row_empty: u64,
    /// Requests that closed one row and opened another.
    pub row_conflicts: u64,
    /// Total cycles requests spent queued behind busy banks.
    pub queue_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate over all requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    ready_at: u64,
    open_row: Option<u64>,
}

/// The memory model. See the [module docs](self).
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl Dram {
    /// Creates the model from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: DramConfig) -> Self {
        config.validate().expect("invalid dram config");
        Dram {
            config,
            banks: vec![Bank { ready_at: 0, open_row: None }; config.banks as usize],
            stats: DramStats::default(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Bank and row for `block`: column bits are the low block bits (so
    /// consecutive blocks share a row), then bank bits (so rows interleave
    /// across banks), then row bits.
    #[inline]
    fn map(&self, block: u64) -> (usize, u64) {
        let col_bits = self.config.row_blocks.trailing_zeros();
        let bank_mask = self.config.banks as u64 - 1;
        let bank = ((block >> col_bits) & bank_mask) as usize;
        let row = block >> (col_bits + self.config.banks.trailing_zeros());
        (bank, row)
    }

    /// Serves a request for `block` arriving at cycle `at`; returns the
    /// cycle its data transfer completes.
    ///
    /// `is_write` requests model LLC writebacks. Modern controllers hold
    /// writes in a write queue and drain them opportunistically, so a
    /// write occupies its bank only for the data burst (the activation is
    /// assumed hidden by the queue); its row still displaces the open row,
    /// so subsequent reads pay the disturbance. Nobody waits on a write's
    /// completion time.
    pub fn access(&mut self, block: u64, at: u64, is_write: bool) -> u64 {
        let (bank_idx, row) = self.map(block);
        let c = &self.config;
        let bank = &mut self.banks[bank_idx];
        let arrival = at + c.t_controller;
        let start = arrival.max(bank.ready_at);
        self.stats.queue_cycles += start - arrival;
        // `array_latency` is what the requester waits for; `occupancy` is
        // how long the bank stays busy. Column accesses pipeline: a row hit
        // occupies the bank only for the data burst (~tCCD), so streaming
        // reaches full bandwidth, while activations/precharges serialize.
        let (array_latency, occupancy) = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                (c.t_cas, c.t_burst)
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                (c.t_rp + c.t_rcd + c.t_cas, c.t_rp + c.t_rcd + c.t_burst)
            }
            None => {
                self.stats.row_empty += 1;
                (c.t_rcd + c.t_cas, c.t_rcd + c.t_burst)
            }
        };
        let completion = start + array_latency + c.t_burst;
        bank.open_row = Some(row);
        bank.ready_at = if is_write { start + c.t_burst } else { start + occupancy };
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn dram() -> Dram {
        Dram::new(SimConfig::cascade_lake().dram)
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let mut d = dram();
        let c = SimConfig::cascade_lake().dram;
        // First access to a bank: empty row.
        let t1 = d.access(0, 0, false);
        assert_eq!(t1, c.t_controller + c.t_rcd + c.t_cas + c.t_burst);
        // Same row, after the bank freed: row hit.
        let t2 = d.access(1, t1, false);
        assert_eq!(t2, t1 + c.t_controller + c.t_cas + c.t_burst);
        // Different row, same bank: conflict.
        let far = c.row_blocks as u64 * c.banks as u64 * 8;
        let t3 = d.access(far, t2, false);
        assert_eq!(t3, t2 + c.t_controller + c.t_rp + c.t_rcd + c.t_cas + c.t_burst);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_empty, 1);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut d = dram();
        let t1 = d.access(0, 0, false);
        // Second request to the same bank issued immediately: must queue.
        let t2 = d.access(2, 0, false);
        assert!(t2 > t1, "second access must wait for the bank");
        assert!(d.stats().queue_cycles > 0);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut d = dram();
        let c = SimConfig::cascade_lake().dram;
        let t1 = d.access(0, 0, false);
        // Block in a different bank: same start time, no queueing.
        let other_bank = c.row_blocks as u64; // next bank, same row index
        let t2 = d.access(other_bank, 0, false);
        assert_eq!(t1, t2, "independent banks serve concurrently");
        assert_eq!(d.stats().queue_cycles, 0);
    }

    #[test]
    fn sequential_blocks_enjoy_row_locality() {
        let mut d = dram();
        let mut at = 0;
        for b in 0..64u64 {
            at = d.access(b, at, false);
        }
        assert!(d.stats().row_hit_rate() > 0.9, "sequential stream should hit rows");
    }

    #[test]
    fn writes_tracked_separately() {
        let mut d = dram();
        d.access(0, 0, true);
        d.access(64, 0, false);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
    }
}
