//! The three-level memory hierarchy: L1D -> L2 -> LLC -> DRAM.
//!
//! The hierarchy is *non-inclusive* with fill-on-miss at every level (the
//! ChampSim model): a demand miss walks down until it hits (or reaches
//! DRAM) and fills every level on the way back. Dirty victims become
//! posted writebacks to the level below; they update state and occupy DRAM
//! banks but do not lengthen the demand path that displaced them.
//!
//! Timing composes per level: a lookup costs the level's hit latency; a
//! miss acquires an MSHR (merging with an outstanding miss to the same
//! block, or waiting when the bank is exhausted) and then pays the
//! downstream path.

use ccsim_policies::{AccessInfo, AccessType, PolicyDispatch, PolicyKind};

use crate::cache::{Cache, CacheStats, FillOutcome, MshrGrant};
use crate::config::SimConfig;
use crate::dram::{Dram, DramStats};

/// Identifies the cache levels for stats queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// First-level data cache.
    L1d,
    /// Unified second-level cache.
    L2,
    /// Last-level cache.
    Llc,
}

/// The memory hierarchy. L1D and L2 always use true LRU (as in the paper's
/// setup); the LLC runs the policy under study.
#[derive(Debug)]
pub struct Hierarchy {
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    dram: Dram,
    /// Optional capture of the LLC demand stream (set, block) for offline
    /// OPT analysis.
    llc_log: Option<Vec<(u32, u64)>>,
}

impl Hierarchy {
    /// Builds the hierarchy with `llc_policy` at the last level (a
    /// [`PolicyDispatch`] or anything convertible into one, e.g. a boxed
    /// external policy).
    pub fn new(config: &SimConfig, llc_policy: impl Into<PolicyDispatch>) -> Self {
        Hierarchy {
            l1d: Cache::new(
                "L1D",
                config.l1d,
                PolicyKind::Lru.build_dispatch(config.l1d.sets, config.l1d.ways),
            ),
            l2: Cache::new(
                "L2",
                config.l2,
                PolicyKind::Lru.build_dispatch(config.l2.sets, config.l2.ways),
            ),
            llc: Cache::new("LLC", config.llc, llc_policy),
            dram: Dram::new(config.dram),
            llc_log: None,
        }
    }

    /// Enables recording of the LLC demand stream (for Belady analysis).
    pub fn enable_llc_log(&mut self) {
        self.llc_log = Some(Vec::new());
    }

    /// Takes the recorded LLC demand stream, if logging was enabled.
    pub fn take_llc_log(&mut self) -> Option<Vec<(u32, u64)>> {
        self.llc_log.take()
    }

    /// Stats of one cache level.
    pub fn cache_stats(&self, level: Level) -> &CacheStats {
        match level {
            Level::L1d => self.l1d.stats(),
            Level::L2 => self.l2.stats(),
            Level::Llc => self.llc.stats(),
        }
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Diagnostic line from the LLC policy.
    pub fn llc_policy_diag(&self) -> String {
        self.llc.policy_diag()
    }

    /// Combined hot tag-state footprint of the three levels (see
    /// [`Cache::hot_state_bytes`]) — what one replay engine keeps warm
    /// per record, and the per-cell input to the grid chunk autotuner.
    pub fn hot_state_bytes(&self) -> u64 {
        self.l1d.hot_state_bytes() + self.l2.hot_state_bytes() + self.llc.hot_state_bytes()
    }

    /// Issues a demand access (load or store) at cycle `at`; returns the
    /// cycle its data is available.
    pub fn demand_access(&mut self, pc: u64, vaddr: u64, is_store: bool, at: u64) -> u64 {
        let block = vaddr >> ccsim_trace::BLOCK_SHIFT;
        let kind = if is_store { AccessType::Rfo } else { AccessType::Load };
        self.access_l1(pc, block, kind, at)
    }

    fn access_l1(&mut self, pc: u64, block: u64, kind: AccessType, at: u64) -> u64 {
        let info = AccessInfo { pc, block, set: self.l1d.set_of(block), kind };
        let after_tag = at + self.l1d.latency();
        if self.l1d.lookup(&info).is_some() {
            // A tag hit on a block whose fill is still in flight must wait
            // for the fill (fills update tags eagerly, timing lags).
            let fill_ready = self.l1d.mshrs().pending(block).unwrap_or(0);
            return after_tag.max(fill_ready);
        }
        match self.l1d.mshrs().acquire(block, after_tag) {
            MshrGrant::Merged { completes_at } => {
                self.l1d.note_mshr_merge();
                completes_at
            }
            MshrGrant::Issue { slot, start_at } => {
                let done = self.access_l2(pc, block, kind, start_at);
                if let FillOutcome::Filled { writeback: Some(victim) } = self.l1d.fill(&info) {
                    self.writeback_to_l2(victim, done);
                }
                self.l1d.mshrs().complete(slot, block, done);
                done
            }
        }
    }

    fn access_l2(&mut self, pc: u64, block: u64, kind: AccessType, at: u64) -> u64 {
        let info = AccessInfo { pc, block, set: self.l2.set_of(block), kind };
        let after_tag = at + self.l2.latency();
        if self.l2.lookup(&info).is_some() {
            let fill_ready = self.l2.mshrs().pending(block).unwrap_or(0);
            return after_tag.max(fill_ready);
        }
        match self.l2.mshrs().acquire(block, after_tag) {
            MshrGrant::Merged { completes_at } => {
                self.l2.note_mshr_merge();
                completes_at
            }
            MshrGrant::Issue { slot, start_at } => {
                let done = self.access_llc(pc, block, kind, start_at);
                if let FillOutcome::Filled { writeback: Some(victim) } = self.l2.fill(&info) {
                    self.writeback_to_llc(victim, done);
                }
                self.l2.mshrs().complete(slot, block, done);
                done
            }
        }
    }

    fn access_llc(&mut self, pc: u64, block: u64, kind: AccessType, at: u64) -> u64 {
        let info = AccessInfo { pc, block, set: self.llc.set_of(block), kind };
        if let Some(log) = &mut self.llc_log {
            log.push((info.set, block));
        }
        let after_tag = at + self.llc.latency();
        if self.llc.lookup(&info).is_some() {
            let fill_ready = self.llc.mshrs().pending(block).unwrap_or(0);
            return after_tag.max(fill_ready);
        }
        match self.llc.mshrs().acquire(block, after_tag) {
            MshrGrant::Merged { completes_at } => {
                self.llc.note_mshr_merge();
                completes_at
            }
            MshrGrant::Issue { slot, start_at } => {
                let done = self.dram.access(block, start_at, false);
                match self.llc.fill(&info) {
                    FillOutcome::Filled { writeback: Some(victim) } => {
                        // Posted write: occupies a DRAM bank at fill time.
                        let _ = self.dram.access(victim, done, true);
                    }
                    FillOutcome::Filled { writeback: None } | FillOutcome::Bypassed => {}
                }
                self.llc.mshrs().complete(slot, block, done);
                done
            }
        }
    }

    /// Posted writeback from L1 into L2 (updates in place on hit, allocates
    /// otherwise).
    fn writeback_to_l2(&mut self, block: u64, at: u64) {
        let info =
            AccessInfo { pc: 0, block, set: self.l2.set_of(block), kind: AccessType::Writeback };
        if self.l2.lookup(&info).is_some() {
            return;
        }
        if let FillOutcome::Filled { writeback: Some(victim) } = self.l2.fill(&info) {
            self.writeback_to_llc(victim, at);
        }
    }

    /// Posted writeback from L2 into the LLC.
    fn writeback_to_llc(&mut self, block: u64, at: u64) {
        let info =
            AccessInfo { pc: 0, block, set: self.llc.set_of(block), kind: AccessType::Writeback };
        if self.llc.lookup(&info).is_some() {
            return;
        }
        if let FillOutcome::Filled { writeback: Some(victim) } = self.llc.fill(&info) {
            let _ = self.dram.access(victim, at, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        let cfg = SimConfig::tiny();
        Hierarchy::new(&cfg, PolicyKind::Lru.build_dispatch(cfg.llc.sets, cfg.llc.ways))
    }

    #[test]
    fn cold_miss_walks_all_levels_and_fills() {
        let mut h = hierarchy();
        let t = h.demand_access(0x400, 0x10_000, false, 0);
        // Full path: L1 tag + L2 tag + LLC tag + DRAM(empty row).
        let cfg = SimConfig::tiny();
        let dram_lat = cfg.dram.t_controller + cfg.dram.t_rcd + cfg.dram.t_cas + cfg.dram.t_burst;
        assert_eq!(t, cfg.l1d.latency + cfg.l2.latency + cfg.llc.latency + dram_lat);
        assert_eq!(h.cache_stats(Level::L1d).demand_misses, 1);
        assert_eq!(h.cache_stats(Level::L2).demand_misses, 1);
        assert_eq!(h.cache_stats(Level::Llc).demand_misses, 1);
        // Second access: L1 hit.
        let t2 = h.demand_access(0x400, 0x10_000, false, t);
        assert_eq!(t2, t + cfg.l1d.latency);
        assert_eq!(h.cache_stats(Level::L1d).demand_hits, 1);
    }

    #[test]
    fn fills_populate_every_level() {
        let mut h = hierarchy();
        h.demand_access(0x400, 0x20_000, false, 0);
        // Evict from L1 by touching conflicting blocks; the block must
        // still hit in L2.
        let block = 0x20_000u64 >> 6;
        assert!(h.l1d.probe(block).is_some());
        assert!(h.l2.probe(block).is_some());
        assert!(h.llc.probe(block).is_some());
    }

    #[test]
    fn access_during_outstanding_fill_waits_for_it() {
        let mut h = hierarchy();
        let t1 = h.demand_access(0x400, 0x30_000, false, 0);
        // A second access to the same block issued before the fill arrives
        // hits in the (eagerly updated) tags but cannot complete before the
        // in-flight fill, and must not issue a second DRAM read.
        let reads_before = h.dram_stats().reads;
        let t2 = h.demand_access(0x404, 0x30_010, false, 1);
        assert_eq!(t2, t1, "must wait for the outstanding fill");
        assert_eq!(h.dram_stats().reads, reads_before);
    }

    #[test]
    fn store_misses_issue_rfo_and_dirty_the_line() {
        let mut h = hierarchy();
        h.demand_access(0x400, 0x40_000, true, 0);
        assert_eq!(h.cache_stats(Level::L1d).demand_misses, 1);
        // Force the dirty line out of L1: two more conflicting blocks in
        // the same L1 set (l1 tiny: 2 sets, 2 ways).
        let base = 0x40_000u64;
        let step = 64 * 2; // same set every 2 blocks
        h.demand_access(0x400, base + step, false, 100);
        h.demand_access(0x400, base + 2 * step, false, 200);
        // The dirty block was written back to L2 (writeback hit there).
        assert!(h.cache_stats(Level::L2).writeback_accesses >= 1);
    }

    #[test]
    fn llc_log_captures_demand_stream() {
        let mut h = hierarchy();
        h.enable_llc_log();
        h.demand_access(0x400, 0x50_000, false, 0);
        h.demand_access(0x400, 0x50_000, false, 1000); // L1 hit: no LLC access
        let log = h.take_llc_log().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].1, 0x50_000 >> 6);
    }

    #[test]
    fn dram_reached_only_on_llc_miss() {
        let mut h = hierarchy();
        h.demand_access(0x400, 0x60_000, false, 0);
        assert_eq!(h.dram_stats().reads, 1);
        // Evict from L1+L2 but not LLC is hard to arrange in tiny config;
        // instead verify an immediate re-access stays out of DRAM.
        h.demand_access(0x400, 0x60_000, false, 5000);
        assert_eq!(h.dram_stats().reads, 1);
    }
}
