//! CVP-style load/store trace decoding (and test-fixture encoding).
//!
//! A simplified take on the Championship Value Prediction (CVP-1) trace
//! format: a flat little-endian sequence of variable-length
//! per-instruction records
//!
//! ```text
//! pc    : u64
//! class : u8    instruction class (see [`InstClass`])
//! --- only when class is Load or Store ---
//! ea    : u64   effective address
//! size  : u8    access size in bytes
//! ```
//!
//! Unlike ChampSim's fixed 64-byte records, every instruction here costs
//! 9 or 18 bytes and carries at most one memory operand, but with an
//! explicit access size. (The real CVP-1 format additionally carries
//! branch targets, register names and load values — none of which a
//! cache-replacement study consumes, so they are omitted.)

use std::io::Read;

use ccsim_trace::AccessKind;

use crate::pipeline::{Batch, MemOp, TraceSource};
use crate::{IngestError, SourceFormat};

/// CVP instruction classes (the CVP-1 `InstClass` enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum InstClass {
    /// Simple ALU operation.
    Alu = 0,
    /// Memory load.
    Load = 1,
    /// Memory store.
    Store = 2,
    /// Conditional branch.
    CondBranch = 3,
    /// Unconditional direct branch.
    UncondDirectBranch = 4,
    /// Unconditional indirect branch.
    UncondIndirectBranch = 5,
    /// Floating-point operation.
    Fp = 6,
    /// Long-latency ALU operation.
    SlowAlu = 7,
    /// Undefined / other.
    Undef = 8,
}

/// Largest valid [`InstClass`] discriminant.
pub const MAX_CLASS: u8 = InstClass::Undef as u8;

/// One decoded CVP-style instruction, as consumed by [`CvpWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvpRecord {
    /// Program counter.
    pub pc: u64,
    /// Instruction class.
    pub class: InstClass,
    /// Effective address + size, for loads and stores only.
    pub mem: Option<(u64, u8)>,
}

impl CvpRecord {
    /// A non-memory instruction of `class` at `pc`.
    pub fn nonmem(pc: u64, class: InstClass) -> CvpRecord {
        debug_assert!(!matches!(class, InstClass::Load | InstClass::Store));
        CvpRecord { pc, class, mem: None }
    }

    /// A load at `pc` reading `size` bytes at `ea`.
    pub fn load(pc: u64, ea: u64, size: u8) -> CvpRecord {
        CvpRecord { pc, class: InstClass::Load, mem: Some((ea, size)) }
    }

    /// A store at `pc` writing `size` bytes at `ea`.
    pub fn store(pc: u64, ea: u64, size: u8) -> CvpRecord {
        CvpRecord { pc, class: InstClass::Store, mem: Some((ea, size)) }
    }
}

/// Streaming decoder over a CVP-style record stream.
///
/// In strict mode an unknown class byte or a truncated record is a
/// [`IngestError::Corrupt`]; in lossy mode an unknown class is treated as
/// a non-memory instruction and a truncated tail is dropped, counted in
/// [`TraceSource::skipped`]. (Records are variable-length, so after an
/// unknown class byte lossy decoding is best-effort: the stream is
/// re-entered at the next byte boundary.)
#[derive(Debug)]
pub struct CvpDecoder<R: Read> {
    reader: R,
    strict: bool,
    offset: u64,
    skipped: u64,
    done: bool,
}

impl<R: Read> CvpDecoder<R> {
    /// Wraps `reader` as a CVP-style record stream.
    pub fn new(reader: R, strict: bool) -> CvpDecoder<R> {
        CvpDecoder { reader, strict, offset: 0, skipped: 0, done: false }
    }

    /// Reads exactly `buf.len()` bytes; `Ok(false)` without error only
    /// when `eof_is_clean` and the stream ended before the first byte.
    /// Any other short read is a torn record: an error (strict) or a
    /// counted drop (lossy). Between a load/store header and its memory
    /// operand even a zero-byte EOF is torn (`eof_is_clean = false`) —
    /// the instruction's header was already consumed.
    fn read_exact_or_eof(
        &mut self,
        buf: &mut [u8],
        what: &'static str,
        eof_is_clean: bool,
    ) -> Result<bool, IngestError> {
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = self.reader.read(&mut buf[filled..])?;
            if n == 0 {
                if filled == 0 && eof_is_clean {
                    return Ok(false);
                }
                self.done = true;
                if self.strict {
                    return Err(IngestError::Corrupt { offset: self.offset, what });
                }
                self.skipped += 1;
                return Ok(false);
            }
            filled += n;
        }
        Ok(true)
    }
}

impl<R: Read> TraceSource for CvpDecoder<R> {
    fn read_batch(&mut self, out: &mut Batch) -> Result<bool, IngestError> {
        out.clear();
        while !self.done {
            let mut head = [0u8; 9];
            if !self.read_exact_or_eof(&mut head, "truncated CVP instruction header", true)? {
                self.done = true;
                break;
            }
            let pc = u64::from_le_bytes(head[0..8].try_into().unwrap());
            let class = head[8];
            if class > MAX_CLASS {
                if self.strict {
                    return Err(IngestError::Corrupt {
                        offset: self.offset,
                        what: "unknown CVP instruction class",
                    });
                }
                self.skipped += 1;
                self.offset += head.len() as u64;
                out.nonmem += 1;
                continue;
            }
            if class != InstClass::Load as u8 && class != InstClass::Store as u8 {
                self.offset += head.len() as u64;
                out.nonmem += 1;
                continue;
            }
            let mut mem = [0u8; 9];
            if !self.read_exact_or_eof(&mut mem, "truncated CVP memory operand", false)? {
                // Torn mid-instruction at EOF (lossy): the head is
                // dropped too, counted by read_exact_or_eof.
                self.done = true;
                break;
            }
            self.offset += (head.len() + mem.len()) as u64;
            out.pc = pc;
            out.ops.push(MemOp {
                vaddr: u64::from_le_bytes(mem[0..8].try_into().unwrap()),
                size: mem[8],
                kind: if class == InstClass::Store as u8 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
            });
            return Ok(true);
        }
        Ok(out.nonmem > 0)
    }

    fn format(&self) -> SourceFormat {
        SourceFormat::Cvp
    }

    fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Fixture encoder for CVP-style record streams (test/golden-fixture
/// use only, like [`crate::champsim::ChampSimWriter`]).
#[derive(Debug)]
pub struct CvpWriter<W: std::io::Write> {
    writer: W,
    records: u64,
}

impl<W: std::io::Write> CvpWriter<W> {
    /// Starts a record stream on `writer`.
    pub fn new(writer: W) -> CvpWriter<W> {
        CvpWriter { writer, records: 0 }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, rec: &CvpRecord) -> std::io::Result<()> {
        self.writer.write_all(&rec.pc.to_le_bytes())?;
        self.writer.write_all(&[rec.class as u8])?;
        if let Some((ea, size)) = rec.mem {
            debug_assert!(matches!(rec.class, InstClass::Load | InstClass::Store));
            self.writer.write_all(&ea.to_le_bytes())?;
            self.writer.write_all(&[size])?;
        }
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8], strict: bool) -> Result<(Vec<Batch>, u64), IngestError> {
        let mut d = CvpDecoder::new(bytes, strict);
        let mut out = Vec::new();
        let mut batch = Batch::default();
        while d.read_batch(&mut batch)? {
            out.push(batch.clone());
        }
        Ok((out, d.skipped()))
    }

    #[test]
    fn variable_length_stream_decodes() {
        let mut bytes = Vec::new();
        let mut w = CvpWriter::new(&mut bytes);
        w.write(&CvpRecord::nonmem(0x10, InstClass::Alu)).unwrap();
        w.write(&CvpRecord::nonmem(0x14, InstClass::CondBranch)).unwrap();
        w.write(&CvpRecord::load(0x18, 0x1000, 4)).unwrap();
        w.write(&CvpRecord::store(0x1c, 0x2008, 16)).unwrap();
        w.write(&CvpRecord::nonmem(0x20, InstClass::Fp)).unwrap();
        assert_eq!(w.records(), 5);
        assert_eq!(bytes.len(), 9 + 9 + 18 + 18 + 9);

        let (batches, skipped) = decode_all(&bytes, true).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].nonmem, 2);
        assert_eq!(batches[0].ops, vec![MemOp { vaddr: 0x1000, size: 4, kind: AccessKind::Load }]);
        assert_eq!(batches[1].ops[0], MemOp { vaddr: 0x2008, size: 16, kind: AccessKind::Store });
        assert_eq!((batches[2].nonmem, batches[2].ops.len()), (1, 0));
    }

    #[test]
    fn strict_rejects_unknown_class_and_torn_records() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x40u64.to_le_bytes());
        bytes.push(77); // not an InstClass
        let err = decode_all(&bytes, true).unwrap_err();
        assert!(err.to_string().contains("class"), "{err}");

        let mut torn = Vec::new();
        let mut w = CvpWriter::new(&mut torn);
        w.write(&CvpRecord::load(0x18, 0x1000, 4)).unwrap();
        torn.truncate(12); // cut inside the memory operand
        assert!(decode_all(&torn, true).is_err());
    }

    #[test]
    fn truncation_exactly_between_header_and_operand_is_torn_too() {
        // EOF right after a load's 9-byte header: the operand is missing
        // even though zero operand bytes exist — strict must error,
        // lossy must count the drop.
        let mut bytes = Vec::new();
        let mut w = CvpWriter::new(&mut bytes);
        w.write(&CvpRecord::nonmem(0x10, InstClass::Alu)).unwrap();
        w.write(&CvpRecord::load(0x18, 0x1000, 4)).unwrap();
        bytes.truncate(9 + 9); // exactly the load's header boundary
        let err = decode_all(&bytes, true).unwrap_err();
        assert!(err.to_string().contains("memory operand"), "{err}");
        let (batches, skipped) = decode_all(&bytes, false).unwrap();
        assert_eq!(skipped, 1, "lossy counts the dropped instruction");
        assert_eq!(batches.len(), 1);
        assert_eq!((batches[0].nonmem, batches[0].ops.len()), (1, 0));
    }

    #[test]
    fn lossy_coerces_unknown_class_to_nonmem() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x40u64.to_le_bytes());
        bytes.push(200);
        let mut w = CvpWriter::new(&mut bytes);
        w.write(&CvpRecord::load(0x44, 0x1000, 8)).unwrap();
        let (batches, skipped) = decode_all(&bytes, false).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].nonmem, 1, "unknown class folded as non-memory");
        assert_eq!(batches[0].ops.len(), 1);
    }

    #[test]
    fn empty_stream_yields_no_batches() {
        let (batches, skipped) = decode_all(&[], true).unwrap();
        assert!(batches.is_empty());
        assert_eq!(skipped, 0);
    }
}
