//! Source-format identification and auto-detection.

use std::fmt;
use std::str::FromStr;

use crate::champsim;
use crate::cvp::MAX_CLASS;
use crate::IngestError;

/// A trace format the ingest pipeline can decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceFormat {
    /// The native `CCTR` format (pass-through ingestion: renaming,
    /// re-normalization, cache population).
    Cctr,
    /// ChampSim 64-byte fixed instruction records
    /// (see [`crate::champsim`]).
    ChampSim,
    /// CVP-style variable-length load/store records
    /// (see [`crate::cvp`]).
    Cvp,
}

impl SourceFormat {
    /// Stable lowercase identifier (CLI flag value, cache-key component).
    pub fn name(self) -> &'static str {
        match self {
            SourceFormat::Cctr => "cctr",
            SourceFormat::ChampSim => "champsim",
            SourceFormat::Cvp => "cvp",
        }
    }

    /// Identifies the format of a stream from its first bytes and (when
    /// known) its total length.
    ///
    /// Detection is layered:
    ///
    /// 1. a `CCTR` magic is authoritative;
    /// 2. a length that is a positive multiple of 64 whose leading
    ///    records carry plausible ChampSim branch flags (`is_branch`,
    ///    `branch_taken` both 0/1) is ChampSim;
    /// 3. a prefix that walks cleanly as CVP-style records (every class
    ///    byte in range) is CVP.
    ///
    /// `prefix` should carry at least a few records (256 bytes is
    /// plenty). These are heuristics — a crafted file can fool them —
    /// so every CLI surface also accepts an explicit `--format`.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::UnknownFormat`] when nothing matches.
    pub fn detect(prefix: &[u8], file_len: Option<u64>) -> Result<SourceFormat, IngestError> {
        if prefix.starts_with(&ccsim_trace::CCTR_MAGIC) {
            return Ok(SourceFormat::Cctr);
        }
        if looks_like_champsim(prefix, file_len) {
            return Ok(SourceFormat::ChampSim);
        }
        if looks_like_cvp(prefix) {
            return Ok(SourceFormat::Cvp);
        }
        Err(IngestError::UnknownFormat)
    }
}

/// Identifies the format of the file at `path` by reading its length and
/// first 512 bytes (see [`SourceFormat::detect`]).
///
/// # Errors
///
/// Propagates I/O errors; returns [`IngestError::UnknownFormat`] when
/// the contents match no known format.
pub fn detect_file(path: &std::path::Path) -> Result<SourceFormat, IngestError> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    let mut prefix = vec![0u8; 512.min(len as usize)];
    file.read_exact(&mut prefix)?;
    SourceFormat::detect(&prefix, Some(len))
}

/// ChampSim shape test: whole number of 64-byte records overall, and
/// every complete record in the prefix carries 0/1 branch flags.
fn looks_like_champsim(prefix: &[u8], file_len: Option<u64>) -> bool {
    match file_len {
        Some(len) if len > 0 && len % champsim::RECORD_BYTES as u64 == 0 => {}
        Some(_) => return false,
        // Length unknown (pure stream): fall through to the flag test.
        None => {}
    }
    let records = prefix.len() / champsim::RECORD_BYTES;
    if records == 0 {
        return false;
    }
    prefix.chunks_exact(champsim::RECORD_BYTES).all(|r| r[8] <= 1 && r[9] <= 1)
}

/// CVP shape test: the prefix walks as records with in-range class bytes
/// (a trailing partial record at the end of the *prefix* is fine).
fn looks_like_cvp(prefix: &[u8]) -> bool {
    let mut pos = 0usize;
    let mut complete = 0usize;
    while pos + 9 <= prefix.len() {
        let class = prefix[pos + 8];
        if class > MAX_CLASS {
            return false;
        }
        pos += if class == 1 || class == 2 { 18 } else { 9 };
        complete += 1;
    }
    complete > 0
}

impl fmt::Display for SourceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SourceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<SourceFormat, String> {
        match s {
            "cctr" => Ok(SourceFormat::Cctr),
            "champsim" => Ok(SourceFormat::ChampSim),
            "cvp" => Ok(SourceFormat::Cvp),
            other => Err(format!("unknown trace format {other:?}, expected cctr|champsim|cvp")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::champsim::{ChampSimRecord, ChampSimWriter};
    use crate::cvp::{CvpRecord, CvpWriter, InstClass};

    #[test]
    fn names_roundtrip_through_parsing() {
        for f in [SourceFormat::Cctr, SourceFormat::ChampSim, SourceFormat::Cvp] {
            assert_eq!(f.name().parse::<SourceFormat>().unwrap(), f);
            assert_eq!(f.to_string(), f.name());
        }
        assert!("elf".parse::<SourceFormat>().is_err());
    }

    #[test]
    fn cctr_magic_wins() {
        let mut bytes = Vec::new();
        let mut buf = ccsim_trace::TraceBuffer::new("t");
        buf.load(1, 0, 8);
        ccsim_trace::write_trace(&buf.finish(), &mut bytes).unwrap();
        assert_eq!(
            SourceFormat::detect(&bytes, Some(bytes.len() as u64)).unwrap(),
            SourceFormat::Cctr
        );
    }

    #[test]
    fn champsim_detected_by_shape() {
        let mut bytes = Vec::new();
        let mut w = ChampSimWriter::new(&mut bytes);
        w.write(&ChampSimRecord::load(0x400000, 0x1000)).unwrap();
        w.write(&ChampSimRecord::branch(0x400004, true)).unwrap();
        let len = bytes.len() as u64;
        assert_eq!(SourceFormat::detect(&bytes, Some(len)).unwrap(), SourceFormat::ChampSim);
        // An off-size file is never taken for ChampSim (it may still walk
        // as something else — these are heuristics).
        let det = SourceFormat::detect(&bytes, Some(len + 1));
        assert!(!matches!(det, Ok(SourceFormat::ChampSim)), "{det:?}");
    }

    #[test]
    fn cvp_detected_by_walking_records() {
        let mut bytes = Vec::new();
        let mut w = CvpWriter::new(&mut bytes);
        w.write(&CvpRecord::nonmem(0x10, InstClass::Alu)).unwrap();
        w.write(&CvpRecord::load(0x18, 0x1000, 4)).unwrap();
        w.write(&CvpRecord::store(0x20, 0x2000, 8)).unwrap();
        let len = bytes.len() as u64;
        assert_eq!(SourceFormat::detect(&bytes, Some(len)).unwrap(), SourceFormat::Cvp);
        // Unknown length (stream) still detects by structure.
        assert_eq!(SourceFormat::detect(&bytes, None).unwrap(), SourceFormat::Cvp);
    }

    #[test]
    fn garbage_is_rejected() {
        let junk = [0xABu8; 100];
        assert!(matches!(SourceFormat::detect(&junk, Some(100)), Err(IngestError::UnknownFormat)));
        assert!(matches!(SourceFormat::detect(&[], Some(0)), Err(IngestError::UnknownFormat)));
    }
}
