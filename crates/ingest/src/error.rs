//! Error type for trace ingestion.

use std::error::Error;
use std::fmt;
use std::io;

/// Error returned when ingesting an external trace fails.
#[derive(Debug)]
pub enum IngestError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input matches none of the known formats.
    UnknownFormat,
    /// A structural problem in the source stream, with the byte offset at
    /// which it was detected and a short description. In lossy mode most
    /// of these are downgraded to counted skips instead.
    Corrupt {
        /// Byte offset into the source stream.
        offset: u64,
        /// What was malformed.
        what: &'static str,
    },
    /// Decoding a pass-through `CCTR` source failed.
    Cctr(ccsim_trace::DecodeTraceError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "i/o error while ingesting trace: {e}"),
            IngestError::UnknownFormat => f.write_str(
                "cannot determine trace format (not CCTR, ChampSim or CVP); \
                 if the format is known, convert with `ccsim ingest` and an \
                 explicit --format",
            ),
            IngestError::Corrupt { offset, what } => {
                write!(f, "corrupt source record at byte {offset}: {what}")
            }
            IngestError::Cctr(e) => write!(f, "decoding CCTR source: {e}"),
        }
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Cctr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<ccsim_trace::DecodeTraceError> for IngestError {
    fn from(e: ccsim_trace::DecodeTraceError) -> Self {
        match e {
            ccsim_trace::DecodeTraceError::Io(io) => IngestError::Io(io),
            other => IngestError::Cctr(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(IngestError::UnknownFormat.to_string().contains("format"));
        let e = IngestError::Corrupt { offset: 64, what: "branch flag" };
        assert!(e.to_string().contains("byte 64"));
        assert!(e.to_string().contains("branch flag"));
        let e = IngestError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(e.source().is_some());
    }

    #[test]
    fn cctr_io_errors_collapse_to_io() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e = IngestError::from(ccsim_trace::DecodeTraceError::Io(inner));
        assert!(matches!(e, IngestError::Io(_)));
        let e = IngestError::from(ccsim_trace::DecodeTraceError::BadName);
        assert!(matches!(e, IngestError::Cctr(_)));
    }
}
