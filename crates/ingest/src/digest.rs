//! Streaming content digests for ingest cache keys.

use std::io::Read;
use std::path::Path;

/// Incremental 64-bit FNV-1a hasher.
///
/// The same function the campaign layer uses for cache filenames and spec
/// digests, in streaming form so multi-gigabyte source files can be
/// digested without reading them into memory. Stable and dependency-free;
/// a content *identity*, not a cryptographic hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Creates a hasher in the FNV-1a initial state.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Digests a file's full contents in 64 KiB chunks (bounded memory).
///
/// # Errors
///
/// Propagates I/O errors from opening or reading the file.
pub fn digest_file(path: &Path) -> std::io::Result<u64> {
    let mut file = std::fs::File::open(path)?;
    let mut hasher = Fnv64::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(hasher.finish());
        }
        hasher.update(&buf[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fnv1a_reference_vectors() {
        assert_eq!(Fnv64::new().finish(), 0xcbf29ce484222325);
        let mut h = Fnv64::new();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn chunking_does_not_change_the_digest() {
        let mut whole = Fnv64::new();
        whole.update(b"hello ingest world");
        let mut split = Fnv64::new();
        split.update(b"hello ");
        split.update(b"ingest ");
        split.update(b"world");
        assert_eq!(whole.finish(), split.finish());
    }

    #[test]
    fn file_digest_streams_the_contents() {
        let path = std::env::temp_dir().join(format!("ccsim_digest_{}", std::process::id()));
        std::fs::write(&path, b"abc").unwrap();
        let mut h = Fnv64::new();
        h.update(b"abc");
        assert_eq!(digest_file(&path).unwrap(), h.finish());
        std::fs::remove_file(&path).unwrap();
    }
}
