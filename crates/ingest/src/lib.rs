//! # ccsim-ingest
//!
//! Streaming ingestion of external simulator trace formats into the
//! native `CCTR` representation.
//!
//! The paper's characterization runs on *real* traces (GAP, SPEC CPU2017,
//! XSBench, Qualcomm server traces) distributed in ChampSim-style
//! formats. This crate is the gateway that lets those files drive the
//! ccsim pipeline:
//!
//! * [`SourceFormat`] — the formats we decode: the ChampSim instruction
//!   trace (64-byte fixed records), a CVP-style per-instruction
//!   load/store format, and pass-through `CCTR`; with auto-detection
//!   from magic bytes and structural heuristics ([`SourceFormat::detect`]).
//! * [`TraceSource`] — the streaming decoder abstraction
//!   ([`champsim::ChampSimDecoder`], [`cvp::CvpDecoder`],
//!   [`pipeline::CctrSource`]), each reading one instruction batch at a
//!   time in O(1) memory.
//! * [`ingest`] / [`ingest_to_trace`] — the folding pipeline: non-memory
//!   instructions are folded into `nonmem_before` (splitting across
//!   records when the `u16` saturates, exactly like
//!   [`ccsim_trace::TraceBuffer`]), operand sizes are normalized to the
//!   64-byte block invariant, and `CCTR` is emitted incrementally so a
//!   multi-gigabyte trace never materializes in memory.
//! * [`IngestOptions`] / [`IngestReport`] — strict/lossy error handling
//!   and exact accounting of what was decoded, folded, clamped or
//!   skipped.
//! * [`champsim::ChampSimWriter`] / [`cvp::CvpWriter`] — fixture
//!   *encoders*, used by the test suite and the repo's golden fixtures;
//!   production code only ever decodes.
//! * [`Fnv64`] / [`digest_file`] — the streaming content digest the
//!   campaign trace cache keys ingested conversions by.
//!
//! # Example
//!
//! ```
//! use ccsim_ingest::champsim::{ChampSimRecord, ChampSimWriter};
//! use ccsim_ingest::{ingest_to_trace, IngestOptions};
//!
//! // Encode three ChampSim instructions: two ALU ops and one load.
//! let mut bytes = Vec::new();
//! let mut w = ChampSimWriter::new(&mut bytes);
//! w.write(&ChampSimRecord::nonmem(0x400000)).unwrap();
//! w.write(&ChampSimRecord::nonmem(0x400004)).unwrap();
//! w.write(&ChampSimRecord::load(0x400008, 0x7000_0000)).unwrap();
//!
//! let (trace, report) = ingest_to_trace(&bytes[..], &IngestOptions::default()).unwrap();
//! assert_eq!(trace.len(), 1);
//! assert_eq!(trace.instructions(), 3);
//! assert_eq!(report.source_instructions, 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod champsim;
pub mod cvp;
mod digest;
mod error;
mod format;
pub mod pipeline;

pub use digest::{digest_file, Fnv64};
pub use error::IngestError;
pub use format::{detect_file, SourceFormat};
pub use pipeline::{
    ingest, ingest_file, ingest_file_observed, ingest_file_to_trace, ingest_observed,
    ingest_to_trace, open_source, AnySource, Batch, CctrSource, IngestOptions, IngestReport, MemOp,
    TraceSource,
};
