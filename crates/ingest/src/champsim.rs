//! ChampSim instruction-trace decoding (and test-fixture encoding).
//!
//! ChampSim traces are a flat sequence of 64-byte little-endian records,
//! one per retired instruction (`input_instr` in the ChampSim sources):
//!
//! ```text
//! offset  field                  size
//! 0       ip                     u64
//! 8       is_branch              u8   (0 or 1)
//! 9       branch_taken           u8   (0 or 1)
//! 10      destination_registers  [u8; 2]
//! 12      source_registers       [u8; 4]
//! 16      destination_memory     [u64; 2]   store addresses, 0 = unused
//! 32      source_memory          [u64; 4]   load addresses, 0 = unused
//! ```
//!
//! An instruction with no memory operand is a non-memory instruction; an
//! instruction may carry several loads and stores at once. ChampSim does
//! not encode operand sizes, so every operand is taken as
//! [`OPERAND_SIZE`] bytes (clamped by the pipeline if it would straddle a
//! cache block).

use std::io::Read;

use ccsim_trace::AccessKind;

use crate::pipeline::{Batch, MemOp, TraceSource};
use crate::{IngestError, SourceFormat};

/// Size of one ChampSim trace record in bytes.
pub const RECORD_BYTES: usize = 64;

/// Assumed operand size (bytes) — ChampSim records carry addresses only.
pub const OPERAND_SIZE: u8 = 8;

/// One decoded ChampSim instruction record.
///
/// Also the unit the fixture encoder ([`ChampSimWriter`]) consumes; the
/// constructors build the common shapes tests need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChampSimRecord {
    /// Instruction pointer.
    pub ip: u64,
    /// 1 if the instruction is a branch.
    pub is_branch: u8,
    /// 1 if a branch was taken.
    pub branch_taken: u8,
    /// Architectural destination registers (0 = unused slot).
    pub destination_registers: [u8; 2],
    /// Architectural source registers (0 = unused slot).
    pub source_registers: [u8; 4],
    /// Store effective addresses (0 = unused slot).
    pub destination_memory: [u64; 2],
    /// Load effective addresses (0 = unused slot).
    pub source_memory: [u64; 4],
}

impl ChampSimRecord {
    /// A non-memory (ALU) instruction at `ip`.
    pub fn nonmem(ip: u64) -> ChampSimRecord {
        ChampSimRecord {
            ip,
            is_branch: 0,
            branch_taken: 0,
            destination_registers: [1, 0],
            source_registers: [2, 3, 0, 0],
            destination_memory: [0; 2],
            source_memory: [0; 4],
        }
    }

    /// A single-operand load at `ip` reading `addr`.
    pub fn load(ip: u64, addr: u64) -> ChampSimRecord {
        let mut r = ChampSimRecord::nonmem(ip);
        r.source_memory[0] = addr;
        r
    }

    /// A single-operand store at `ip` writing `addr`.
    pub fn store(ip: u64, addr: u64) -> ChampSimRecord {
        let mut r = ChampSimRecord::nonmem(ip);
        r.destination_memory[0] = addr;
        r
    }

    /// A (non-memory) branch at `ip`.
    pub fn branch(ip: u64, taken: bool) -> ChampSimRecord {
        let mut r = ChampSimRecord::nonmem(ip);
        r.is_branch = 1;
        r.branch_taken = taken as u8;
        r
    }

    /// Encodes the record into its 64-byte wire form.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut b = [0u8; RECORD_BYTES];
        b[0..8].copy_from_slice(&self.ip.to_le_bytes());
        b[8] = self.is_branch;
        b[9] = self.branch_taken;
        b[10..12].copy_from_slice(&self.destination_registers);
        b[12..16].copy_from_slice(&self.source_registers);
        for (i, m) in self.destination_memory.iter().enumerate() {
            b[16 + 8 * i..24 + 8 * i].copy_from_slice(&m.to_le_bytes());
        }
        for (i, m) in self.source_memory.iter().enumerate() {
            b[32 + 8 * i..40 + 8 * i].copy_from_slice(&m.to_le_bytes());
        }
        b
    }

    /// Decodes a 64-byte wire record.
    pub fn decode(b: &[u8; RECORD_BYTES]) -> ChampSimRecord {
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        ChampSimRecord {
            ip: u64_at(0),
            is_branch: b[8],
            branch_taken: b[9],
            destination_registers: [b[10], b[11]],
            source_registers: [b[12], b[13], b[14], b[15]],
            destination_memory: [u64_at(16), u64_at(24)],
            source_memory: [u64_at(32), u64_at(40), u64_at(48), u64_at(56)],
        }
    }

    /// `true` if the record carries no memory operand.
    pub fn is_nonmem(&self) -> bool {
        self.destination_memory.iter().all(|&m| m == 0)
            && self.source_memory.iter().all(|&m| m == 0)
    }
}

/// Streaming decoder over a ChampSim record stream.
///
/// Reads one 64-byte record at a time (O(1) memory). In strict mode a
/// partial trailing record or an implausible branch flag is a
/// [`IngestError::Corrupt`]; in lossy mode the tail is dropped and flags
/// are coerced, with every such event counted in
/// [`TraceSource::skipped`].
#[derive(Debug)]
pub struct ChampSimDecoder<R: Read> {
    reader: R,
    strict: bool,
    offset: u64,
    skipped: u64,
    done: bool,
}

impl<R: Read> ChampSimDecoder<R> {
    /// Wraps `reader` as a ChampSim record stream.
    pub fn new(reader: R, strict: bool) -> ChampSimDecoder<R> {
        ChampSimDecoder { reader, strict, offset: 0, skipped: 0, done: false }
    }

    /// Reads the next raw record, handling EOF and partial tails.
    fn next_raw(&mut self) -> Result<Option<ChampSimRecord>, IngestError> {
        if self.done {
            return Ok(None);
        }
        let mut buf = [0u8; RECORD_BYTES];
        let mut filled = 0usize;
        while filled < RECORD_BYTES {
            let n = self.reader.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        if filled == 0 {
            self.done = true;
            return Ok(None);
        }
        if filled < RECORD_BYTES {
            self.done = true;
            if self.strict {
                return Err(IngestError::Corrupt {
                    offset: self.offset,
                    what: "partial trailing ChampSim record",
                });
            }
            self.skipped += 1;
            return Ok(None);
        }
        let rec = ChampSimRecord::decode(&buf);
        if rec.is_branch > 1 || rec.branch_taken > 1 {
            if self.strict {
                return Err(IngestError::Corrupt {
                    offset: self.offset,
                    what: "branch flag out of range (not a ChampSim trace?)",
                });
            }
            self.skipped += 1;
        }
        self.offset += RECORD_BYTES as u64;
        Ok(Some(rec))
    }
}

impl<R: Read> TraceSource for ChampSimDecoder<R> {
    fn read_batch(&mut self, out: &mut Batch) -> Result<bool, IngestError> {
        out.clear();
        while let Some(rec) = self.next_raw()? {
            if rec.is_nonmem() {
                out.nonmem += 1;
                continue;
            }
            out.pc = rec.ip;
            // ChampSim executes source operands (reads) before
            // destinations (writes).
            for &addr in rec.source_memory.iter().filter(|&&m| m != 0) {
                out.ops.push(MemOp { vaddr: addr, size: OPERAND_SIZE, kind: AccessKind::Load });
            }
            for &addr in rec.destination_memory.iter().filter(|&&m| m != 0) {
                out.ops.push(MemOp { vaddr: addr, size: OPERAND_SIZE, kind: AccessKind::Store });
            }
            return Ok(true);
        }
        // EOF: flush any accumulated non-memory epilogue.
        Ok(out.nonmem > 0)
    }

    fn format(&self) -> SourceFormat {
        SourceFormat::ChampSim
    }

    fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Fixture encoder for ChampSim record streams.
///
/// Exists so the test suite (and the checked-in golden fixtures under
/// `tests/fixtures/`) can fabricate byte-exact foreign traces offline;
/// nothing in the production pipeline writes this format.
#[derive(Debug)]
pub struct ChampSimWriter<W: std::io::Write> {
    writer: W,
    records: u64,
}

impl<W: std::io::Write> ChampSimWriter<W> {
    /// Starts a record stream on `writer`.
    pub fn new(writer: W) -> ChampSimWriter<W> {
        ChampSimWriter { writer, records: 0 }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, rec: &ChampSimRecord) -> std::io::Result<()> {
        self.writer.write_all(&rec.encode())?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut r = ChampSimRecord::load(0x400100, 0x7000_0040);
        r.destination_memory[1] = 0x8000_0000;
        r.is_branch = 1;
        let b = r.encode();
        assert_eq!(b.len(), RECORD_BYTES);
        assert_eq!(ChampSimRecord::decode(&b), r);
    }

    fn decode_all(bytes: &[u8], strict: bool) -> Result<Vec<Batch>, IngestError> {
        let mut d = ChampSimDecoder::new(bytes, strict);
        let mut out = Vec::new();
        let mut batch = Batch::default();
        while d.read_batch(&mut batch)? {
            out.push(batch.clone());
        }
        Ok(out)
    }

    #[test]
    fn batches_fold_nonmem_runs() {
        let mut bytes = Vec::new();
        let mut w = ChampSimWriter::new(&mut bytes);
        w.write(&ChampSimRecord::nonmem(0x10)).unwrap();
        w.write(&ChampSimRecord::branch(0x14, true)).unwrap();
        w.write(&ChampSimRecord::load(0x18, 0x1000)).unwrap();
        w.write(&ChampSimRecord::store(0x1c, 0x2000)).unwrap();
        w.write(&ChampSimRecord::nonmem(0x20)).unwrap();
        assert_eq!(w.records(), 5);

        let batches = decode_all(&bytes, true).unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].nonmem, 2);
        assert_eq!(batches[0].pc, 0x18);
        assert_eq!(batches[0].ops, vec![MemOp { vaddr: 0x1000, size: 8, kind: AccessKind::Load }]);
        assert_eq!(batches[1].nonmem, 0);
        assert_eq!(batches[1].ops[0].kind, AccessKind::Store);
        // Trailing non-memory instructions flush as an op-less batch.
        assert_eq!((batches[2].nonmem, batches[2].ops.len()), (1, 0));
    }

    #[test]
    fn multi_operand_instruction_reads_before_writes() {
        let mut r = ChampSimRecord::nonmem(0x40);
        r.source_memory = [0x1000, 0x2000, 0, 0];
        r.destination_memory = [0x3000, 0];
        let bytes = r.encode().to_vec();
        let batches = decode_all(&bytes, true).unwrap();
        assert_eq!(batches.len(), 1);
        let kinds: Vec<AccessKind> = batches[0].ops.iter().map(|o| o.kind).collect();
        assert_eq!(kinds, [AccessKind::Load, AccessKind::Load, AccessKind::Store]);
    }

    #[test]
    fn strict_rejects_partial_tail_and_bad_flags() {
        let mut bytes = ChampSimRecord::load(0x40, 0x1000).encode().to_vec();
        bytes.extend_from_slice(&[0u8; 10]); // torn record
        let err = decode_all(&bytes, true).unwrap_err();
        assert!(matches!(err, IngestError::Corrupt { offset: 64, .. }), "{err}");

        let mut bad = ChampSimRecord::load(0x40, 0x1000);
        bad.is_branch = 7;
        let err = decode_all(&bad.encode(), true).unwrap_err();
        assert!(err.to_string().contains("branch flag"));
    }

    #[test]
    fn lossy_counts_and_continues() {
        let mut bad = ChampSimRecord::load(0x40, 0x1000);
        bad.branch_taken = 3;
        let mut bytes = bad.encode().to_vec();
        bytes.extend_from_slice(&ChampSimRecord::store(0x44, 0x2000).encode());
        bytes.extend_from_slice(&[1u8; 20]); // torn record
        let mut d = ChampSimDecoder::new(&bytes[..], false);
        let mut batch = Batch::default();
        let mut batches = 0;
        while d.read_batch(&mut batch).unwrap() {
            batches += 1;
        }
        assert_eq!(batches, 2, "both full records decode");
        assert_eq!(d.skipped(), 2, "coerced flag + dropped tail");
    }

    #[test]
    fn empty_stream_yields_no_batches() {
        assert!(decode_all(&[], true).unwrap().is_empty());
    }
}
