//! The streaming ingest pipeline: decode, fold, normalize, emit.
//!
//! The pipeline pulls [`Batch`]es from a [`TraceSource`] (one memory
//! instruction plus the non-memory run before it), folds them into
//! `CCTR` records under the [`TraceBuffer`](ccsim_trace::TraceBuffer)
//! `nonmem_before` splitting invariant, normalizes operands to the
//! 64-byte block rule, and pushes each record to the sink as soon as it
//! exists. Peak memory is one batch — a multi-gigabyte source never
//! materializes.
//!
//! # Instruction accounting
//!
//! `CCTR` counts every record as one instruction. A foreign instruction
//! with *k > 1* memory operands becomes *k* records, which would
//! over-count by *k − 1*; the pipeline tracks that as **debt** and repays
//! it from subsequent non-memory instructions before they accrue to
//! `nonmem_before`. Any debt still open at end-of-stream is reported in
//! [`IngestReport::residual_debt`], so
//! `output instructions = source instructions + residual_debt` always
//! holds exactly.

use std::io::{Read, Seek, Write};
use std::path::Path;

use ccsim_trace::{AccessKind, Trace, TraceReader, TraceRecord, TraceWriter, BLOCK_BYTES};

use crate::{IngestError, SourceFormat};

/// One memory operand of a source instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Virtual byte address.
    pub vaddr: u64,
    /// Access size in bytes (normalized by the pipeline).
    pub size: u8,
    /// Load or store.
    pub kind: AccessKind,
}

/// A decoded unit of source trace: `nonmem` non-memory instructions
/// followed by (at most) one memory instruction at `pc` touching `ops`.
///
/// The pipeline reuses a single `Batch` across `read_batch` calls, so
/// decoding is allocation-free in the steady state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    /// Non-memory instructions preceding `ops`.
    pub nonmem: u64,
    /// Program counter of the memory instruction (meaningless when `ops`
    /// is empty).
    pub pc: u64,
    /// The memory operands; empty for a trailing non-memory-only batch.
    pub ops: Vec<MemOp>,
}

impl Batch {
    /// Resets the batch for reuse.
    pub fn clear(&mut self) {
        self.nonmem = 0;
        self.pc = 0;
        self.ops.clear();
    }
}

/// A streaming decoder of some external trace format.
///
/// Implementations read one batch at a time in O(1) memory and must be
/// exhausted by repeated [`TraceSource::read_batch`] calls.
pub trait TraceSource {
    /// Fills `out` with the next batch. Returns `false` (with `out`
    /// cleared or op-less) once the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError`] on I/O failure or (strict mode) a corrupt
    /// source record.
    fn read_batch(&mut self, out: &mut Batch) -> Result<bool, IngestError>;

    /// The format this source decodes.
    fn format(&self) -> SourceFormat;

    /// Malformed items skipped or coerced so far (lossy mode).
    fn skipped(&self) -> u64;
}

/// Pass-through source over a native `CCTR` stream.
///
/// Lets the pipeline re-serve `CCTR` files uniformly (renaming, stats on
/// foreign *and* native inputs, cache population) — each record becomes a
/// batch of its `nonmem_before` run plus its single memory operand.
#[derive(Debug)]
pub struct CctrSource<R: Read> {
    reader: TraceReader<R>,
    trailing_emitted: bool,
}

impl<R: Read> CctrSource<R> {
    /// Opens a `CCTR` stream, consuming its header.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError`] on a malformed header.
    pub fn new(reader: R) -> Result<CctrSource<R>, IngestError> {
        Ok(CctrSource { reader: TraceReader::new(reader)?, trailing_emitted: false })
    }

    /// The workload name embedded in the source header.
    pub fn name(&self) -> &str {
        &self.reader.header().name
    }
}

impl<R: Read> TraceSource for CctrSource<R> {
    fn read_batch(&mut self, out: &mut Batch) -> Result<bool, IngestError> {
        out.clear();
        match self.reader.next_record()? {
            Some(r) => {
                out.nonmem = r.nonmem_before as u64;
                out.pc = r.pc;
                out.ops.push(MemOp { vaddr: r.vaddr, size: r.size, kind: r.kind });
                Ok(true)
            }
            None => {
                if self.trailing_emitted {
                    return Ok(false);
                }
                self.trailing_emitted = true;
                out.nonmem = self.reader.header().trailing_nonmem;
                Ok(out.nonmem > 0)
            }
        }
    }

    fn format(&self) -> SourceFormat {
        SourceFormat::Cctr
    }

    fn skipped(&self) -> u64 {
        0
    }
}

/// Every source the pipeline can drive, behind one concrete type (so
/// callers stay generic over the reader without boxing).
#[derive(Debug)]
pub enum AnySource<R: Read> {
    /// ChampSim 64-byte records.
    ChampSim(crate::champsim::ChampSimDecoder<R>),
    /// CVP-style variable-length records.
    Cvp(crate::cvp::CvpDecoder<R>),
    /// Native `CCTR` pass-through.
    Cctr(CctrSource<R>),
}

impl<R: Read> TraceSource for AnySource<R> {
    fn read_batch(&mut self, out: &mut Batch) -> Result<bool, IngestError> {
        match self {
            AnySource::ChampSim(s) => s.read_batch(out),
            AnySource::Cvp(s) => s.read_batch(out),
            AnySource::Cctr(s) => s.read_batch(out),
        }
    }

    fn format(&self) -> SourceFormat {
        match self {
            AnySource::ChampSim(s) => s.format(),
            AnySource::Cvp(s) => s.format(),
            AnySource::Cctr(s) => s.format(),
        }
    }

    fn skipped(&self) -> u64 {
        match self {
            AnySource::ChampSim(s) => s.skipped(),
            AnySource::Cvp(s) => s.skipped(),
            AnySource::Cctr(s) => s.skipped(),
        }
    }
}

/// Wraps `reader` in the decoder for `format`.
///
/// # Errors
///
/// Returns [`IngestError`] when a `CCTR` source has a malformed header.
pub fn open_source<R: Read>(
    reader: R,
    format: SourceFormat,
    strict: bool,
) -> Result<AnySource<R>, IngestError> {
    Ok(match format {
        SourceFormat::ChampSim => {
            AnySource::ChampSim(crate::champsim::ChampSimDecoder::new(reader, strict))
        }
        SourceFormat::Cvp => AnySource::Cvp(crate::cvp::CvpDecoder::new(reader, strict)),
        SourceFormat::Cctr => AnySource::Cctr(CctrSource::new(reader)?),
    })
}

/// How to decode and fold a source trace.
///
/// The option set is part of the campaign trace-cache key
/// ([`IngestOptions::cache_key`]): any field that changes the emitted
/// bytes must be represented there.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestOptions {
    /// Source format; `None` auto-detects ([`SourceFormat::detect`]).
    pub format: Option<SourceFormat>,
    /// Lossy mode: skip/coerce malformed source items (counted in the
    /// report) instead of failing. Default is strict.
    pub lossy: bool,
    /// Output trace name. Defaults to the `CCTR` source's embedded name,
    /// or `"ingested"` for foreign formats (CLI surfaces default to the
    /// input file stem).
    pub name: Option<String>,
}

impl IngestOptions {
    /// Canonical key fragment for content-addressed caching of ingest
    /// results. Combined by the campaign cache with the source-file
    /// digest, the *resolved* format, and the `CCTR` format version.
    pub fn cache_key(&self) -> String {
        format!("lossy={}&name={}", self.lossy as u8, self.name.as_deref().unwrap_or(""))
    }
}

/// Exact accounting of one ingest run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// The (possibly auto-detected) source format.
    pub format: SourceFormat,
    /// The name embedded in the emitted trace.
    pub name: String,
    /// Instructions decoded from the source (memory + non-memory).
    pub source_instructions: u64,
    /// `CCTR` records emitted (one per memory operand).
    pub records: u64,
    /// Instructions the emitted trace represents
    /// (`source_instructions + residual_debt`).
    pub instructions: u64,
    /// Malformed source items skipped or coerced (lossy mode; 0 in
    /// strict mode).
    pub skipped: u64,
    /// Operands whose size was clamped to the 64-byte block invariant.
    pub clamped: u64,
    /// Multi-operand over-count not repaid by later non-memory
    /// instructions (see the module docs).
    pub residual_debt: u64,
}

impl IngestReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}: {} source instructions -> {} records ({} instructions)",
            self.format, self.source_instructions, self.records, self.instructions
        );
        if self.skipped > 0 {
            s.push_str(&format!(", {} skipped", self.skipped));
        }
        if self.clamped > 0 {
            s.push_str(&format!(", {} operands clamped", self.clamped));
        }
        if self.residual_debt > 0 {
            s.push_str(&format!(", {} instructions over-counted", self.residual_debt));
        }
        s
    }
}

/// The folding state machine (see the module docs for the accounting).
#[derive(Debug, Default)]
struct Fold {
    pending_nonmem: u64,
    debt: u64,
    source_instructions: u64,
    records: u64,
    emitted_nonmem: u64,
    clamped: u64,
}

impl Fold {
    fn nonmem(&mut self, n: u64) {
        self.source_instructions += n;
        let repaid = self.debt.min(n);
        self.debt -= repaid;
        self.pending_nonmem += n - repaid;
    }

    fn mem_instr(
        &mut self,
        pc: u64,
        ops: &[MemOp],
        mut emit: impl FnMut(TraceRecord) -> Result<(), IngestError>,
    ) -> Result<(), IngestError> {
        debug_assert!(!ops.is_empty());
        self.source_instructions += 1;
        self.debt += ops.len() as u64 - 1;
        for op in ops {
            let mut size = op.size.max(1) as u64;
            let offset = op.vaddr % BLOCK_BYTES;
            if op.size == 0 || offset + size > BLOCK_BYTES {
                size = size.min(BLOCK_BYTES - offset);
                self.clamped += 1;
            }
            let take = self.pending_nonmem.min(u16::MAX as u64);
            self.pending_nonmem -= take;
            self.emitted_nonmem += take;
            self.records += 1;
            emit(TraceRecord {
                pc,
                vaddr: op.vaddr,
                size: size as u8,
                kind: op.kind,
                nonmem_before: take as u16,
            })?;
        }
        Ok(())
    }

    fn report(&self, format: SourceFormat, name: &str, skipped: u64) -> IngestReport {
        IngestReport {
            format,
            name: name.to_owned(),
            source_instructions: self.source_instructions,
            records: self.records,
            instructions: self.records + self.emitted_nonmem + self.pending_nonmem,
            skipped,
            clamped: self.clamped,
            residual_debt: self.debt,
        }
    }
}

/// A reader with its peeked detection prefix stitched back on.
type ReplayReader<R> = std::io::Chain<std::io::Cursor<Vec<u8>>, R>;

/// Resolves `opts.format`, peeking up to 512 bytes of `reader` when
/// auto-detecting, and returns `(format, replayable reader)`.
fn resolve_format<R: Read>(
    mut reader: R,
    opts: &IngestOptions,
    file_len: Option<u64>,
) -> Result<(SourceFormat, ReplayReader<R>), IngestError> {
    let mut prefix = Vec::new();
    let format = match opts.format {
        Some(f) => f,
        None => {
            let mut buf = [0u8; 512];
            while prefix.len() < buf.len() {
                let want = buf.len() - prefix.len();
                let n = reader.read(&mut buf[..want])?;
                if n == 0 {
                    break;
                }
                prefix.extend_from_slice(&buf[..n]);
            }
            SourceFormat::detect(&prefix, file_len)?
        }
    };
    Ok((format, std::io::Cursor::new(prefix).chain(reader)))
}

/// Runs the fold over `source`, pushing records into `emit`, and returns
/// the report plus the trailing non-memory count.
fn run_fold<S: TraceSource>(
    source: &mut S,
    name: &str,
    mut emit: impl FnMut(TraceRecord) -> Result<(), IngestError>,
) -> Result<(IngestReport, u64), IngestError> {
    // Telemetry is totals-only, accounted once after the fold — the
    // per-record path stays untouched.
    let span = ccsim_obs::metrics().ingest_wall_ns.span();
    let mut fold = Fold::default();
    let mut batch = Batch::default();
    while source.read_batch(&mut batch)? {
        fold.nonmem(batch.nonmem);
        if !batch.ops.is_empty() {
            fold.mem_instr(batch.pc, &batch.ops, &mut emit)?;
        }
    }
    let trailing = fold.pending_nonmem;
    let report = fold.report(source.format(), name, source.skipped());
    let m = ccsim_obs::metrics();
    m.ingest_runs.inc();
    m.ingest_records.add(report.records);
    m.ingest_skipped.add(report.skipped);
    span.stop();
    Ok((report, trailing))
}

/// The output trace name: the explicit option, the `CCTR` source's
/// embedded name, or the `"ingested"` fallback.
fn resolve_name<R: Read>(opts: &IngestOptions, source: &AnySource<R>) -> String {
    match (&opts.name, source) {
        (Some(n), _) => n.clone(),
        (None, AnySource::Cctr(s)) => s.name().to_owned(),
        (None, _) => "ingested".to_owned(),
    }
}

/// Streams `reader` (any supported format) into `writer` as `CCTR`.
///
/// Decoding, folding and emission are fully incremental: peak memory is
/// one source batch, independent of trace length. The emitted file is
/// byte-identical to what [`ingest_to_trace`] +
/// [`ccsim_trace::write_trace`] would produce for the same input.
///
/// # Errors
///
/// Returns [`IngestError`] on I/O failure, undetectable format, or
/// (strict mode) corrupt source records.
pub fn ingest<R: Read, W: Write + Seek>(
    reader: R,
    writer: W,
    opts: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    ingest_observed(reader, writer, opts, |_| {}).map(|(report, _)| report)
}

/// [`ingest`] with a per-record observer: `observe` sees every emitted
/// [`TraceRecord`], in emission order, before it is written. The second
/// return value is the trailing non-memory epilogue
/// ([`ccsim_trace::Trace::trailing_nonmem`] of the emitted trace).
///
/// This is how `ccsim ingest --stats` characterizes a conversion in the
/// same single pass that produces the `CCTR` file — the source is never
/// read twice and the output is never read back.
///
/// # Errors
///
/// Returns [`IngestError`] exactly as [`ingest`] does.
pub fn ingest_observed<R: Read, W: Write + Seek>(
    reader: R,
    writer: W,
    opts: &IngestOptions,
    mut observe: impl FnMut(&TraceRecord),
) -> Result<(IngestReport, u64), IngestError> {
    let (format, reader) = resolve_format(reader, opts, None)?;
    let mut source = open_source(reader, format, !opts.lossy)?;
    // The output name must be known before the fold starts (the CCTR
    // header precedes the records), so resolve it up front.
    let name = resolve_name(opts, &source);
    let mut out = TraceWriter::new(writer, &name)?;
    let (report, trailing) = run_fold(&mut source, &name, |rec| {
        observe(&rec);
        out.write_record(&rec).map_err(IngestError::Io)
    })?;
    out.finish(trailing)?;
    Ok((report, trailing))
}

/// Ingests `reader` fully into memory as a [`Trace`].
///
/// Same fold as [`ingest`], materialized — for statistics, small inputs
/// and cache-less campaign runs.
///
/// # Errors
///
/// Returns [`IngestError`] exactly as [`ingest`] does.
pub fn ingest_to_trace<R: Read>(
    reader: R,
    opts: &IngestOptions,
) -> Result<(Trace, IngestReport), IngestError> {
    let (format, reader) = resolve_format(reader, opts, None)?;
    let mut source = open_source(reader, format, !opts.lossy)?;
    let name = resolve_name(opts, &source);
    let mut records = Vec::new();
    let (report, trailing) = run_fold(&mut source, &name, |rec| {
        records.push(rec);
        Ok(())
    })?;
    Ok((Trace::from_parts(name, records, trailing), report))
}

/// Ingests the file at `input` into a `CCTR` file at `output`.
///
/// Auto-detection gets the file length (sharpening the ChampSim
/// heuristic), the default output name is the input file stem, and the
/// conversion streams — a multi-gigabyte input is never resident.
///
/// # Errors
///
/// Returns [`IngestError`] on I/O failure or malformed input; the
/// partially-written output is removed on error.
pub fn ingest_file(
    input: &Path,
    output: &Path,
    opts: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    ingest_file_observed(input, output, opts, |_| {}).map(|(report, _)| report)
}

/// [`ingest_file`] with a per-record observer — the file-level twin of
/// [`ingest_observed`], sharing [`ingest_file`]'s length-aware detection,
/// stem-derived default name and partial-output cleanup.
///
/// # Errors
///
/// Returns [`IngestError`] on I/O failure or malformed input; the
/// partially-written output is removed on error.
pub fn ingest_file_observed(
    input: &Path,
    output: &Path,
    opts: &IngestOptions,
    observe: impl FnMut(&TraceRecord),
) -> Result<(IngestReport, u64), IngestError> {
    let (reader, opts) = open_input(input, opts)?;
    let out = std::fs::File::create(output)?;
    let result = ingest_observed(reader, std::io::BufWriter::new(out), &opts, observe);
    if result.is_err() {
        let _ = std::fs::remove_file(output);
    }
    result
}

/// Ingests the file at `input` fully into memory as a [`Trace`] — the
/// file-level twin of [`ingest_to_trace`], with the same length-aware
/// detection and stem-derived default name as [`ingest_file`].
///
/// # Errors
///
/// Returns [`IngestError`] on I/O failure or malformed input.
pub fn ingest_file_to_trace(
    input: &Path,
    opts: &IngestOptions,
) -> Result<(Trace, IngestReport), IngestError> {
    let (reader, opts) = open_input(input, opts)?;
    ingest_to_trace(reader, &opts)
}

/// Shared file-input front end: opens `input`, resolves the format using
/// the file length, and defaults the output name to the file stem.
fn open_input(
    input: &Path,
    opts: &IngestOptions,
) -> Result<(ReplayReader<std::io::BufReader<std::fs::File>>, IngestOptions), IngestError> {
    let file = std::fs::File::open(input)?;
    let len = file.metadata()?.len();
    let mut opts = opts.clone();
    if opts.name.is_none() {
        opts.name = Some(
            input
                .file_stem()
                .map_or_else(|| "ingested".to_owned(), |s| s.to_string_lossy().into_owned()),
        );
    }
    let (format, reader) = resolve_format(std::io::BufReader::new(file), &opts, Some(len))?;
    opts.format = Some(format);
    Ok((reader, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::champsim::{ChampSimRecord, ChampSimWriter};
    use crate::cvp::{CvpRecord, CvpWriter, InstClass};
    use ccsim_trace::{read_trace, write_trace, TraceBuffer};

    fn champsim_sample() -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut w = ChampSimWriter::new(&mut bytes);
        w.write(&ChampSimRecord::nonmem(0x10)).unwrap();
        w.write(&ChampSimRecord::nonmem(0x14)).unwrap();
        w.write(&ChampSimRecord::load(0x18, 0x1000)).unwrap();
        w.write(&ChampSimRecord::store(0x1c, 0x2000)).unwrap();
        w.write(&ChampSimRecord::nonmem(0x20)).unwrap();
        bytes
    }

    #[test]
    fn streaming_and_in_memory_paths_agree_byte_for_byte() {
        let bytes = champsim_sample();
        let opts = IngestOptions { name: Some("t".into()), ..Default::default() };

        let (trace, report_mem) = ingest_to_trace(&bytes[..], &opts).unwrap();
        let mut via_mem = Vec::new();
        write_trace(&trace, &mut via_mem).unwrap();

        let mut cursor = std::io::Cursor::new(Vec::new());
        let report_stream = ingest(&bytes[..], &mut cursor, &opts).unwrap();

        assert_eq!(cursor.into_inner(), via_mem);
        assert_eq!(report_mem, report_stream);
        assert_eq!(trace.instructions(), 5);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.trailing_nonmem(), 1);
        assert_eq!(report_mem.source_instructions, 5);
        assert_eq!(report_mem.residual_debt, 0);
    }

    #[test]
    fn multi_operand_debt_is_repaid_by_later_nonmem() {
        // One instruction with 3 operands, then 5 ALU instructions: the
        // 2 extra records borrow 2 of the 5 trailing non-memory slots.
        let mut rec = ChampSimRecord::nonmem(0x40);
        rec.source_memory = [0x1000, 0x2000, 0, 0];
        rec.destination_memory = [0x3000, 0];
        let mut bytes = rec.encode().to_vec();
        for i in 0..5u64 {
            bytes.extend_from_slice(&ChampSimRecord::nonmem(0x44 + 4 * i).encode());
        }
        let (trace, report) = ingest_to_trace(&bytes[..], &IngestOptions::default()).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(report.source_instructions, 6);
        assert_eq!(report.residual_debt, 0);
        assert_eq!(trace.instructions(), 6, "debt repayment keeps totals exact");
        assert_eq!(trace.trailing_nonmem(), 3);
    }

    #[test]
    fn unrepaid_debt_is_reported() {
        let mut rec = ChampSimRecord::nonmem(0x40);
        rec.source_memory = [0x1000, 0x2000, 0x3000, 0];
        let bytes = rec.encode().to_vec();
        let (trace, report) = ingest_to_trace(&bytes[..], &IngestOptions::default()).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(report.source_instructions, 1);
        assert_eq!(report.residual_debt, 2);
        assert_eq!(trace.instructions(), report.source_instructions + report.residual_debt);
    }

    #[test]
    fn operands_are_clamped_to_the_block_invariant() {
        let mut bytes = Vec::new();
        let mut w = CvpWriter::new(&mut bytes);
        w.write(&CvpRecord::load(0x18, 60, 16)).unwrap(); // straddles
        w.write(&CvpRecord::store(0x1c, 128, 0)).unwrap(); // zero size
        w.write(&CvpRecord::load(0x20, 8, 8)).unwrap(); // fine
        let (trace, report) = ingest_to_trace(&bytes[..], &IngestOptions::default()).unwrap();
        assert_eq!(report.clamped, 2);
        assert_eq!(trace.records()[0].size, 4, "60 + 16 clamps to the block end");
        assert_eq!(trace.records()[1].size, 1, "zero size becomes one byte");
        assert_eq!(trace.records()[2].size, 8);
        for r in trace.records() {
            assert!(r.vaddr % 64 + r.size as u64 <= 64);
        }
    }

    #[test]
    fn cctr_passthrough_preserves_and_renames() {
        let mut b = TraceBuffer::new("orig");
        b.nonmem(70_000); // forces a nonmem split across the records
        b.load(1, 0x1000, 8);
        b.store(2, 0x2040, 4);
        b.nonmem(9);
        let t = b.finish();
        let mut bytes = Vec::new();
        write_trace(&t, &mut bytes).unwrap();

        // Without a name override the embedded name survives.
        let (same, report) = ingest_to_trace(&bytes[..], &IngestOptions::default()).unwrap();
        assert_eq!(same.name(), "orig");
        assert_eq!(report.format, SourceFormat::Cctr);
        assert_eq!(same.instructions(), t.instructions());
        assert_eq!(same.records(), t.records());

        // With an override the records stay identical under the new name.
        let opts = IngestOptions { name: Some("renamed".into()), ..Default::default() };
        let (renamed, _) = ingest_to_trace(&bytes[..], &opts).unwrap();
        assert_eq!(renamed.name(), "renamed");
        assert_eq!(renamed.records(), t.records());
    }

    #[test]
    fn explicit_format_overrides_detection() {
        // A CVP stream whose length happens to be a multiple of 64 would
        // auto-detect as ChampSim only if the flag bytes cooperate; an
        // explicit format sidesteps the question entirely.
        let mut bytes = Vec::new();
        let mut w = CvpWriter::new(&mut bytes);
        for i in 0..64u64 {
            w.write(&CvpRecord::nonmem(i, InstClass::Alu)).unwrap();
        }
        w.write(&CvpRecord::load(0x99, 0x1000, 8)).unwrap();
        let opts = IngestOptions { format: Some(SourceFormat::Cvp), ..Default::default() };
        let (trace, report) = ingest_to_trace(&bytes[..], &opts).unwrap();
        assert_eq!(report.format, SourceFormat::Cvp);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records()[0].nonmem_before, 64);
    }

    #[test]
    fn ingest_file_names_after_the_stem_and_cleans_up_on_error() {
        let dir = std::env::temp_dir().join(format!("ccsim_ingest_file_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("workload.champsim");
        std::fs::write(&input, champsim_sample()).unwrap();
        let output = dir.join("out.cctr");
        let report = ingest_file(&input, &output, &IngestOptions::default()).unwrap();
        assert_eq!(report.name, "workload");
        assert_eq!(report.format, SourceFormat::ChampSim);
        let trace = read_trace(std::fs::File::open(&output).unwrap()).unwrap();
        assert_eq!(trace.name(), "workload");
        assert_eq!(trace.len(), 2);

        // Garbage input: error out and leave no output file behind.
        let bad = dir.join("junk.bin");
        std::fs::write(&bad, [0xABu8; 37]).unwrap();
        let out2 = dir.join("out2.cctr");
        assert!(ingest_file(&bad, &out2, &IngestOptions::default()).is_err());
        assert!(!out2.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn huge_nonmem_gaps_split_like_tracebuffer() {
        // 200_000 ALU instructions then two loads: the gap must split
        // 65535 / 65535 / remainder across records + trailing, exactly
        // as TraceBuffer would.
        let mut bytes = Vec::new();
        let mut w = CvpWriter::new(&mut bytes);
        for i in 0..200_000u64 {
            w.write(&CvpRecord::nonmem(i, InstClass::Alu)).unwrap();
        }
        w.write(&CvpRecord::load(1, 0x1000, 8)).unwrap();
        w.write(&CvpRecord::load(2, 0x2000, 8)).unwrap();
        let (trace, report) = ingest_to_trace(&bytes[..], &IngestOptions::default()).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.records()[0].nonmem_before, u16::MAX);
        assert_eq!(trace.records()[1].nonmem_before, u16::MAX);
        assert_eq!(trace.trailing_nonmem(), 200_000 - 2 * u16::MAX as u64);
        assert_eq!(trace.instructions(), 200_002);
        assert_eq!(report.instructions, 200_002);
    }

    #[test]
    fn cache_key_reflects_every_option_that_changes_bytes() {
        let base = IngestOptions::default();
        let lossy = IngestOptions { lossy: true, ..base.clone() };
        let named = IngestOptions { name: Some("x".into()), ..base.clone() };
        assert_ne!(base.cache_key(), lossy.cache_key());
        assert_ne!(base.cache_key(), named.cache_key());
        assert_eq!(base.cache_key(), IngestOptions::default().cache_key());
    }

    #[test]
    fn observer_sees_every_record_in_one_pass() {
        // The observer must see exactly the records the CCTR file holds,
        // in order, and the trailing epilogue must match — this is the
        // contract `ccsim ingest --stats` characterizes through.
        let bytes = champsim_sample();
        let mut seen = Vec::new();
        let mut out = std::io::Cursor::new(Vec::new());
        let (report, trailing) =
            ingest_observed(&bytes[..], &mut out, &IngestOptions::default(), |r| {
                seen.push(*r);
            })
            .unwrap();
        let trace = read_trace(&out.into_inner()[..]).unwrap();
        assert_eq!(seen, trace.records());
        assert_eq!(trailing, trace.trailing_nonmem());
        assert_eq!(report.records, seen.len() as u64);

        // Streaming characterization equals batch over the materialized
        // trace.
        let mut stats = ccsim_trace::stats::TraceStats::builder();
        let mut reuse = ccsim_trace::stats::ReuseProfile::builder();
        for r in &seen {
            stats.push(r);
            reuse.push_block(r.block());
        }
        assert_eq!(stats.finish(trailing), ccsim_trace::stats::TraceStats::compute(&trace));
        assert_eq!(reuse.finish(), ccsim_trace::stats::ReuseProfile::compute(&trace));
    }
}
