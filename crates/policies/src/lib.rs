//! # ccsim-policies
//!
//! Last-level-cache replacement policies behind a ChampSim-style hook
//! interface, for the ccsim characterization suite.
//!
//! The paper evaluates six state-of-the-art policies against an LRU
//! baseline; this crate implements all of them plus several classical
//! policies used for validation and ablations, and an offline Belady oracle
//! for headroom analysis:
//!
//! | Policy | Module | Source |
//! |--------|--------|--------|
//! | LRU (baseline) | [`Lru`] | — |
//! | FIFO | [`Fifo`] | — |
//! | Random | [`RandomPolicy`] | — |
//! | Bit-PLRU | [`BitPlru`] | — |
//! | DIP | [`Dip`] | Qureshi et al., ISCA 2007 |
//! | SRRIP | [`Srrip`] | Jaleel et al., ISCA 2010 |
//! | BRRIP | [`Brrip`] | Jaleel et al., ISCA 2010 |
//! | DRRIP | [`Drrip`] | Jaleel et al., ISCA 2010 |
//! | SHiP-PC | [`Ship`] | Wu et al., MICRO 2011 |
//! | Hawkeye | [`Hawkeye`] | Jain & Lin, ISCA 2016 |
//! | Glider | [`Glider`] | Shi et al., MICRO 2019 |
//! | MPPPB | [`Mpppb`] | Jiménez & Teran, MICRO 2017 |
//! | Belady OPT | [`belady`] | offline oracle |
//!
//! # Example
//!
//! ```
//! use ccsim_policies::{AccessInfo, PolicyKind, Victim};
//!
//! let mut policy = PolicyKind::Srrip.build(2048, 11);
//! let info = AccessInfo::load(0x400123, 0xABCD, 17);
//! policy.on_fill(17, 3, &info, None);
//! policy.on_hit(17, 3, &info);
//! let victim = policy.victim(17, &info, &[]);
//! assert!(matches!(victim, Victim::Way(w) if w < 11));
//! ```

#![warn(missing_docs)]

pub mod belady;
mod bitplru;
mod dip;
mod dispatch;
mod drrip;
mod fifo;
pub mod glider;
pub mod hawkeye;
mod lru;
pub mod mpppb;
mod policy;
mod random;
pub mod rrip;
mod ship;
pub mod util;

pub use bitplru::BitPlru;
pub use dip::Dip;
pub use dispatch::PolicyDispatch;
pub use drrip::Drrip;
pub use fifo::Fifo;
pub use glider::Glider;
pub use hawkeye::Hawkeye;
pub use lru::Lru;
pub use mpppb::Mpppb;
pub use policy::{AccessInfo, AccessType, LineView, ReplacementPolicy, Victim};
pub use random::RandomPolicy;
pub use rrip::{Brrip, Srrip};
pub use ship::Ship;

use std::fmt;
use std::str::FromStr;

/// Enumerates every online policy the crate can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum PolicyKind {
    /// Least recently used (the paper's baseline).
    Lru,
    /// First in, first out.
    Fifo,
    /// Uniform random victim.
    Random,
    /// Bit-PLRU approximation of LRU.
    BitPlru,
    /// Dynamic Insertion Policy (LRU/BIP set-dueling).
    Dip,
    /// Static RRIP.
    Srrip,
    /// Bimodal RRIP.
    Brrip,
    /// Dynamic RRIP (set-dueling SRRIP/BRRIP).
    Drrip,
    /// Signature-based Hit Predictor.
    Ship,
    /// OPT-trained PC classifier.
    Hawkeye,
    /// ISVM over PC history, OPT-trained.
    Glider,
    /// Multiperspective perceptron with placement/promotion/bypass.
    Mpppb,
}

impl PolicyKind {
    /// All kinds, in a stable display order.
    pub const ALL: [PolicyKind; 12] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::BitPlru,
        PolicyKind::Dip,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Hawkeye,
        PolicyKind::Glider,
        PolicyKind::Mpppb,
    ];

    /// The six policies the paper evaluates (Figure 3), in figure order.
    pub const PAPER_POLICIES: [PolicyKind; 6] = [
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Hawkeye,
        PolicyKind::Glider,
        PolicyKind::Mpppb,
    ];

    /// Stable lowercase identifier.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Random => "random",
            PolicyKind::BitPlru => "bitplru",
            PolicyKind::Dip => "dip",
            PolicyKind::Srrip => "srrip",
            PolicyKind::Brrip => "brrip",
            PolicyKind::Drrip => "drrip",
            PolicyKind::Ship => "ship",
            PolicyKind::Hawkeye => "hawkeye",
            PolicyKind::Glider => "glider",
            PolicyKind::Mpppb => "mpppb",
        }
    }

    /// Instantiates the policy in its statically dispatched form — what
    /// the simulator's hot path uses ([`PolicyDispatch`] monomorphizes
    /// every hook call).
    pub fn build_dispatch(self, sets: u32, ways: u32) -> PolicyDispatch {
        PolicyDispatch::from_kind(self, sets, ways)
    }

    /// Instantiates the policy as a trait object (dynamic dispatch).
    pub fn build(self, sets: u32, ways: u32) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
            PolicyKind::Fifo => Box::new(Fifo::new(sets, ways)),
            PolicyKind::Random => Box::new(RandomPolicy::new(sets, ways)),
            PolicyKind::BitPlru => Box::new(BitPlru::new(sets, ways)),
            PolicyKind::Dip => Box::new(Dip::new(sets, ways)),
            PolicyKind::Srrip => Box::new(Srrip::new(sets, ways)),
            PolicyKind::Brrip => Box::new(Brrip::new(sets, ways)),
            PolicyKind::Drrip => Box::new(Drrip::new(sets, ways)),
            PolicyKind::Ship => Box::new(Ship::new(sets, ways)),
            PolicyKind::Hawkeye => Box::new(Hawkeye::new(sets, ways)),
            PolicyKind::Glider => Box::new(Glider::new(sets, ways)),
            PolicyKind::Mpppb => Box::new(Mpppb::new(sets, ways)),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    name: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy {:?}, expected one of: ", self.name)?;
        for (i, k) in PolicyKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(k.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParsePolicyError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_reports_its_name() {
        for kind in PolicyKind::ALL {
            let p = kind.build(64, 8);
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn parse_roundtrip() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
        }
    }

    #[test]
    fn parse_error_lists_alternatives() {
        let err = "nope".parse::<PolicyKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope") && msg.contains("hawkeye"));
    }

    #[test]
    fn paper_policies_are_the_figure_three_set() {
        let names: Vec<_> = PolicyKind::PAPER_POLICIES.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["srrip", "drrip", "ship", "hawkeye", "glider", "mpppb"]);
    }

    /// Smoke: every policy survives a pseudo-random access storm and always
    /// returns legal victims.
    #[test]
    fn storm_smoke_all_policies() {
        use crate::util::SplitMix64;
        let (sets, ways) = (64u32, 4u32);
        for kind in PolicyKind::ALL {
            let mut p = kind.build(sets, ways);
            let mut rng = SplitMix64::new(kind as u64 + 1);
            let mut occupancy = vec![0u32; sets as usize];
            for _ in 0..20_000 {
                let set = (rng.below(sets as u64)) as u32;
                let block = rng.below(1 << 20);
                let pc = 0x400_000 + rng.below(64) * 4;
                let kind_a = if rng.one_in(10) {
                    AccessType::Writeback
                } else if rng.one_in(4) {
                    AccessType::Rfo
                } else {
                    AccessType::Load
                };
                let info = AccessInfo { pc, block, set, kind: kind_a };
                if occupancy[set as usize] < ways {
                    let way = occupancy[set as usize];
                    occupancy[set as usize] += 1;
                    p.on_fill(set, way, &info, None);
                } else if rng.one_in(3) {
                    match p.victim(set, &info, &[]) {
                        Victim::Way(w) => {
                            assert!(w < ways, "{}: victim way {w} out of range", p.name());
                            p.on_fill(set, w, &info, Some(block ^ 1));
                        }
                        Victim::Bypass => {}
                    }
                } else {
                    let way = (rng.below(ways as u64)) as u32;
                    p.on_hit(set, way, &info);
                }
            }
        }
    }
}
