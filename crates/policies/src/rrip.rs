//! Re-Reference Interval Prediction: SRRIP and BRRIP
//! (Jaleel et al., ISCA 2010).
//!
//! Each line carries an M-bit *re-reference prediction value* (RRPV);
//! larger means "predicted to be re-used further in the future". Victims
//! are lines holding the maximum RRPV (`2^M - 1`); if none exists, all
//! RRPVs in the set are aged up until one does.

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::util::SplitMix64;

/// RRPV width used by SRRIP/BRRIP/DRRIP/SHiP (2 bits, per the papers).
pub const RRPV_BITS: u32 = 2;
/// Maximum ("distant future") RRPV.
pub const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;
/// "Long re-reference interval" insertion value (`2^M - 2`).
pub const RRPV_LONG: u8 = RRPV_MAX - 1;
/// BRRIP inserts with `RRPV_LONG` once every this many fills, otherwise
/// `RRPV_MAX` (the paper's epsilon = 1/32).
pub const BRRIP_EPSILON: u64 = 32;

/// Shared RRPV array with the standard victim-search/aging loop.
#[derive(Debug, Clone)]
pub struct RrpvTable {
    ways: u32,
    rrpv: Vec<u8>,
    max: u8,
}

impl RrpvTable {
    /// Creates a table of `sets x ways` RRPVs of `bits` width, all
    /// initialized to the maximum (invalid lines are distant by default).
    pub fn new(sets: u32, ways: u32, bits: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        assert!((1..=7).contains(&bits), "rrpv width must be 1..=7");
        let max = (1u8 << bits) - 1;
        RrpvTable { ways, rrpv: vec![max; (sets * ways) as usize], max }
    }

    /// Maximum RRPV value for this table.
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Current RRPV of `set`/`way`.
    pub fn get(&self, set: u32, way: u32) -> u8 {
        self.rrpv[(set * self.ways + way) as usize]
    }

    /// Sets the RRPV of `set`/`way`.
    pub fn set(&mut self, set: u32, way: u32, v: u8) {
        debug_assert!(v <= self.max);
        self.rrpv[(set * self.ways + way) as usize] = v;
    }

    /// Standard RRIP victim search: find a way at max RRPV, aging the whole
    /// set until one exists. Returns the lowest-indexed such way.
    pub fn find_victim(&mut self, set: u32) -> u32 {
        let base = (set * self.ways) as usize;
        let n = self.ways as usize;
        loop {
            if let Some(w) = self.rrpv[base..base + n].iter().position(|&r| r >= self.max) {
                return w as u32;
            }
            for r in &mut self.rrpv[base..base + n] {
                *r += 1;
            }
        }
    }
}

/// Static RRIP with hit-priority promotion: insert at "long" (`2^M - 2`),
/// promote to 0 on hit.
#[derive(Debug)]
pub struct Srrip {
    table: RrpvTable,
}

impl Srrip {
    /// Creates SRRIP state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        Srrip { table: RrpvTable::new(sets, ways, RRPV_BITS) }
    }
}

impl ReplacementPolicy for Srrip {
    fn name(&self) -> &'static str {
        "srrip"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        Victim::Way(self.table.find_victim(set))
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        if info.kind.is_demand() {
            self.table.set(set, way, 0);
        }
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, _info: &AccessInfo, _evicted: Option<u64>) {
        self.table.set(set, way, RRPV_LONG);
    }
}

/// Bimodal RRIP: like SRRIP but inserts at the *distant* RRPV except for a
/// 1-in-32 trickle at "long", protecting against thrashing working sets.
#[derive(Debug)]
pub struct Brrip {
    table: RrpvTable,
    fills: u64,
    rng: SplitMix64,
}

impl Brrip {
    /// Creates BRRIP state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        Brrip {
            table: RrpvTable::new(sets, ways, RRPV_BITS),
            fills: 0,
            rng: SplitMix64::new(0xB441),
        }
    }

    /// Insertion RRPV for the next fill (advances the bimodal state).
    fn insertion_rrpv(&mut self) -> u8 {
        self.fills += 1;
        if self.rng.one_in(BRRIP_EPSILON) {
            RRPV_LONG
        } else {
            RRPV_MAX
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn name(&self) -> &'static str {
        "brrip"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        Victim::Way(self.table.find_victim(set))
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        if info.kind.is_demand() {
            self.table.set(set, way, 0);
        }
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, _info: &AccessInfo, _evicted: Option<u64>) {
        let v = self.insertion_rrpv();
        self.table.set(set, way, v);
    }
}

/// The insertion behaviours shared by DRRIP/SHiP, factored for reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RripInsertion {
    /// SRRIP-style: always "long".
    Long,
    /// BRRIP-style: "distant" with a 1/32 trickle of "long".
    Bimodal,
    /// Distant future (predicted dead).
    Distant,
    /// Immediate reuse predicted (RRPV 0).
    Near,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn load(set: u32) -> AccessInfo {
        AccessInfo { pc: 7, block: 9, set, kind: AccessType::Load }
    }

    fn wb(set: u32) -> AccessInfo {
        AccessInfo { pc: 0, block: 9, set, kind: AccessType::Writeback }
    }

    #[test]
    fn rrpv_table_ages_until_victim_found() {
        let mut t = RrpvTable::new(1, 4, 2);
        for w in 0..4 {
            t.set(0, w, w as u8 % 3); // values 0,1,2,0 — no 3 present
        }
        let v = t.find_victim(0);
        assert_eq!(v, 2, "way holding rrpv 2 ages to 3 first");
        assert_eq!(t.get(0, 0), 1, "aging bumped everyone");
    }

    #[test]
    fn srrip_inserts_long_and_promotes_to_zero() {
        let mut p = Srrip::new(1, 4);
        p.on_fill(0, 1, &load(0), None);
        assert_eq!(p.table.get(0, 1), RRPV_LONG);
        p.on_hit(0, 1, &load(0));
        assert_eq!(p.table.get(0, 1), 0);
    }

    #[test]
    fn srrip_ignores_writeback_hits_for_promotion() {
        let mut p = Srrip::new(1, 4);
        p.on_fill(0, 1, &load(0), None);
        p.on_hit(0, 1, &wb(0));
        assert_eq!(p.table.get(0, 1), RRPV_LONG, "writeback must not promote");
    }

    #[test]
    fn srrip_scan_resistance() {
        // A never-rereferenced streaming block (still at LONG) is evicted
        // before a block that has hit (at 0), even if the streamer is newer.
        let mut p = Srrip::new(1, 2);
        p.on_fill(0, 0, &load(0), None);
        p.on_hit(0, 0, &load(0)); // way 0 hot
        p.on_fill(0, 1, &load(0), None); // way 1 streaming
        let Victim::Way(v) = p.victim(0, &load(0), &[]) else { unreachable!() };
        assert_eq!(v, 1);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Brrip::new(1, 16);
        let mut distant = 0;
        for i in 0..1600u32 {
            p.on_fill(0, i % 16, &load(0), None);
            if p.table.get(0, i % 16) == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant > 1400, "only {distant}/1600 distant inserts");
        assert!(distant < 1600, "epsilon trickle never fired");
    }

    #[test]
    fn find_victim_prefers_lowest_way_on_tie() {
        let mut t = RrpvTable::new(1, 4, 2);
        for w in 0..4 {
            t.set(0, w, 3);
        }
        assert_eq!(t.find_victim(0), 0);
    }
}
