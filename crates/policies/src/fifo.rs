//! FIFO replacement: evict the oldest *fill*, ignoring hits.

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};

/// First-in/first-out replacement. Identical bookkeeping to LRU except only
/// fills advance a line's stamp — a useful contrast policy in ablations
/// (shows how much of LRU's value is hit promotion).
#[derive(Debug)]
pub struct Fifo {
    ways: u32,
    stamp: u64,
    stamps: Vec<u64>,
}

impl Fifo {
    /// Creates FIFO state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Fifo { ways, stamp: 0, stamps: vec![0; (sets * ways) as usize] }
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        let base = (set * self.ways) as usize;
        let slice = &self.stamps[base..base + self.ways as usize];
        let (way, _) = slice.iter().enumerate().min_by_key(|&(_, &s)| s).expect("ways > 0");
        Victim::Way(way as u32)
    }

    #[inline]
    fn on_hit(&mut self, _set: u32, _way: u32, _info: &AccessInfo) {
        // Hits do not refresh FIFO age.
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, _info: &AccessInfo, _evicted: Option<u64>) {
        self.stamp += 1;
        self.stamps[(set * self.ways + way) as usize] = self.stamp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn info(set: u32) -> AccessInfo {
        AccessInfo { pc: 1, block: 2, set, kind: AccessType::Load }
    }

    #[test]
    fn hits_do_not_save_a_line() {
        let mut p = Fifo::new(1, 3);
        for w in 0..3 {
            p.on_fill(0, w, &info(0), None);
        }
        // Hit way 0 many times; it is still the oldest fill.
        for _ in 0..10 {
            p.on_hit(0, 0, &info(0));
        }
        assert_eq!(p.victim(0, &info(0), &[]), Victim::Way(0));
    }

    #[test]
    fn eviction_follows_fill_order() {
        let mut p = Fifo::new(1, 3);
        for w in [2u32, 0, 1] {
            p.on_fill(0, w, &info(0), None);
        }
        assert_eq!(p.victim(0, &info(0), &[]), Victim::Way(2));
        p.on_fill(0, 2, &info(0), None);
        assert_eq!(p.victim(0, &info(0), &[]), Victim::Way(0));
    }
}
