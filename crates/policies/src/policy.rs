//! The replacement-policy framework: ChampSim-style hooks.
//!
//! A cache level owns a `Box<dyn ReplacementPolicy>` and drives it through
//! three events: a *victim query* when a fill finds its set full, a *hit
//! notification*, and a *fill notification*. The policy never touches the
//! cache's tag array; it maintains whatever per-line, per-set or global
//! metadata its algorithm requires.

use std::fmt;

/// The kind of access, as seen by the cache level the policy manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Demand read caused by a load instruction.
    Load,
    /// Read-for-ownership caused by a store instruction.
    Rfo,
    /// Dirty eviction arriving from the level above. Writebacks carry no
    /// meaningful PC and most policies neither train on nor promote them.
    Writeback,
}

impl AccessType {
    /// `true` for demand accesses (loads and RFOs), `false` for writebacks.
    #[inline]
    pub fn is_demand(self) -> bool {
        !matches!(self, AccessType::Writeback)
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessType::Load => f.write_str("load"),
            AccessType::Rfo => f.write_str("rfo"),
            AccessType::Writeback => f.write_str("writeback"),
        }
    }
}

/// Everything a policy may inspect about one access.
#[derive(Debug, Clone, Copy)]
pub struct AccessInfo {
    /// Program counter of the triggering instruction (0 for writebacks).
    pub pc: u64,
    /// 64-byte block address (full address >> 6).
    pub block: u64,
    /// Set index the access maps to.
    pub set: u32,
    /// Access kind.
    pub kind: AccessType,
}

impl AccessInfo {
    /// Convenience constructor for a demand load.
    pub fn load(pc: u64, block: u64, set: u32) -> Self {
        AccessInfo { pc, block, set, kind: AccessType::Load }
    }
}

/// A policy's view of one cache line when asked for a victim.
///
/// The cache's own tag store is a struct-of-arrays (packed tag words +
/// dirty bitmap); victim queries that need these views get them
/// reconstructed into a fixed stack buffer — zero heap allocations —
/// and policies that rank victims from their own metadata opt out of
/// the reconstruction entirely via
/// [`ReplacementPolicy::inspects_lines`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineView {
    /// Whether the line holds a valid block.
    pub valid: bool,
    /// Block address stored in the line (meaningless if invalid).
    pub block: u64,
    /// Whether the line is dirty.
    pub dirty: bool,
}

impl LineView {
    /// An invalid (empty) line.
    pub const INVALID: LineView = LineView { valid: false, block: 0, dirty: false };
}

/// A victim decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// Evict the line in this way.
    Way(u32),
    /// Do not cache the incoming block at all (dead-on-arrival bypass).
    /// Only meaningful for policies that support bypassing (e.g. MPPPB);
    /// the cache honours it for demand fills and ignores it for writebacks.
    Bypass,
}

/// An LLC replacement policy.
///
/// Implementations are single-threaded state machines; the simulator drives
/// one instance per cache. All hooks receive the set index already computed
/// by the cache.
///
/// # Contract
///
/// * [`victim`](ReplacementPolicy::victim) is only called when every way in
///   the set holds a valid line; the returned way must be `< ways`.
/// * [`on_fill`](ReplacementPolicy::on_fill) is called exactly once per
///   allocation, after the victim (if any) has been evicted.
/// * [`on_hit`](ReplacementPolicy::on_hit) is called for every access that
///   hits, including writeback hits (policies typically ignore those for
///   training, see [`AccessType::is_demand`]).
pub trait ReplacementPolicy: fmt::Debug {
    /// Short stable identifier (`"lru"`, `"srrip"`, ...).
    fn name(&self) -> &'static str;

    /// Whether victim queries need materialized [`LineView`]s in `lines`.
    ///
    /// The cache keeps its tags in a struct-of-arrays layout (packed tag
    /// words + a dirty bitmap), so lending `lines` means reconstructing
    /// the views into a stack buffer on every victim query. All built-in
    /// policies rank victims purely from their own metadata and never
    /// read `lines`; a policy that keeps the default `true` receives
    /// faithfully reconstructed views, while overriding to `false` lets
    /// the cache skip the reconstruction and pass an empty slice.
    fn inspects_lines(&self) -> bool {
        true
    }

    /// Chooses a victim way for `info` in a full `set`.
    ///
    /// `lines` holds the set's lines in way order — unless
    /// [`inspects_lines`](ReplacementPolicy::inspects_lines) returned
    /// `false`, in which case the cache may pass an empty slice.
    fn victim(&mut self, set: u32, info: &AccessInfo, lines: &[LineView]) -> Victim;

    /// Chooses a victim way for `info` in a full `set` when bypassing is
    /// not permitted — the cache asks this for writeback fills, whose
    /// incoming dirty block must be cached somewhere.
    ///
    /// The default re-queries [`victim`](ReplacementPolicy::victim) and
    /// falls back to way 0 if the policy still insists on bypassing.
    /// Policies that can bypass (e.g. MPPPB) should override this with
    /// their aging order so the forced eviction follows the same ranking
    /// as their ordinary victims.
    fn forced_victim(&mut self, set: u32, info: &AccessInfo, lines: &[LineView]) -> u32 {
        match self.victim(set, info, lines) {
            Victim::Way(way) => way,
            Victim::Bypass => 0,
        }
    }

    /// Notifies the policy of a hit in `set`/`way`.
    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo);

    /// Notifies the policy that `info.block` has been filled into
    /// `set`/`way`, replacing `evicted` (if a valid line was displaced).
    fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, evicted: Option<u64>);

    /// One-line diagnostic string (predictor occupancies, PSEL values, ...)
    /// surfaced by the experiment harness; empty by default.
    fn diag(&self) -> String {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_type_predicates() {
        assert!(AccessType::Load.is_demand());
        assert!(AccessType::Rfo.is_demand());
        assert!(!AccessType::Writeback.is_demand());
        assert_eq!(AccessType::Rfo.to_string(), "rfo");
    }

    #[test]
    fn access_info_load_constructor() {
        let a = AccessInfo::load(0x400, 0x1234, 7);
        assert_eq!(a.kind, AccessType::Load);
        assert_eq!(a.set, 7);
    }

    #[test]
    fn victim_equality() {
        assert_eq!(Victim::Way(3), Victim::Way(3));
        assert_ne!(Victim::Way(3), Victim::Bypass);
    }
}
