//! The feature set of the multiperspective predictor.
//!
//! Each feature hashes one "perspective" on an access (its PC, the recent
//! PC history, address bits, ...) into an index of that feature's private
//! weight table. The full MICRO'17 design searches over 16 candidate
//! features; we implement the 8 that its tuned configurations select most
//! often (documented per-variant below).

use crate::util::hash_bits;

/// Number of features / weight tables.
pub const FEATURE_COUNT: usize = 8;
/// log2 of each feature's weight-table size.
pub const TABLE_INDEX_BITS: u32 = 8;

/// Global inputs a feature may draw on.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeatureContext {
    /// PC of the current access.
    pub pc: u64,
    /// Block address of the current access.
    pub block: u64,
    /// The three most recent demand PCs (most recent first).
    pub pc_history: [u64; 3],
    /// PC of the most recent demand miss.
    pub last_miss_pc: u64,
}

/// Computes the [`FEATURE_COUNT`] table indices for one access.
///
/// The perspectives, in order:
/// 0. current PC;
/// 1. current PC right-shifted (coarse code region);
/// 2. previous PC;
/// 3. PC two accesses ago;
/// 4. PC three accesses ago;
/// 5. low block-address bits (spatial locality within a region);
/// 6. page number (block >> 6);
/// 7. current PC xor last-miss PC (miss-path correlation).
pub fn feature_indices(ctx: &FeatureContext) -> [u16; FEATURE_COUNT] {
    [
        hash_bits(ctx.pc, TABLE_INDEX_BITS) as u16,
        hash_bits(ctx.pc >> 4, TABLE_INDEX_BITS) as u16,
        hash_bits(ctx.pc_history[0] ^ 0x9E37, TABLE_INDEX_BITS) as u16,
        hash_bits(ctx.pc_history[1] ^ 0x79B9, TABLE_INDEX_BITS) as u16,
        hash_bits(ctx.pc_history[2] ^ 0x7F4A, TABLE_INDEX_BITS) as u16,
        hash_bits(ctx.block & 0x3F, TABLE_INDEX_BITS) as u16,
        hash_bits(ctx.block >> 6, TABLE_INDEX_BITS) as u16,
        hash_bits(ctx.pc ^ ctx.last_miss_pc, TABLE_INDEX_BITS) as u16,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_fit_table_width() {
        let ctx = FeatureContext {
            pc: u64::MAX,
            block: u64::MAX,
            pc_history: [u64::MAX; 3],
            last_miss_pc: u64::MAX,
        };
        for i in feature_indices(&ctx) {
            assert!((i as u32) < (1 << TABLE_INDEX_BITS));
        }
    }

    #[test]
    fn different_pcs_produce_different_pc_features() {
        let a = FeatureContext { pc: 0x400, ..Default::default() };
        let b = FeatureContext { pc: 0x404, ..Default::default() };
        assert_ne!(feature_indices(&a)[0], feature_indices(&b)[0]);
    }

    #[test]
    fn address_features_independent_of_pc() {
        let a = FeatureContext { pc: 1, block: 0x1234, ..Default::default() };
        let b = FeatureContext { pc: 2, block: 0x1234, ..Default::default() };
        assert_eq!(feature_indices(&a)[5], feature_indices(&b)[5]);
        assert_eq!(feature_indices(&a)[6], feature_indices(&b)[6]);
    }

    #[test]
    fn history_slots_feed_distinct_features() {
        let ctx = FeatureContext { pc_history: [7, 7, 7], ..Default::default() };
        let f = feature_indices(&ctx);
        // Identical history PCs still hash through different salts.
        assert!(f[2] != f[3] || f[3] != f[4]);
    }
}
