//! MPPPB: Multiperspective Placement, Promotion and Bypass
//! (Jiménez & Teran, MICRO 2017).
//!
//! A perceptron-like predictor sums small signed weights drawn from several
//! *feature tables*, each indexed by a different hash ("perspective") of the
//! access: the PC, recent PC history, address bits and miss-path
//! correlations. The sign convention is **positive = predicted dead**. The
//! prediction steers three decisions:
//!
//! * **Bypass** — very confident dead-on-arrival fills are not cached;
//! * **Placement** — fills insert at an RRPV chosen by confidence band;
//! * **Promotion** — hits promote to an RRPV chosen by the (re-computed)
//!   prediction rather than unconditionally to 0.
//!
//! Training is sampler-based (dead-block style, as in the paper): sampled
//! sets keep shadow entries remembering each access's feature indices; a
//! shadow hit trains "live", a shadow LRU eviction trains "dead".

pub mod features;

pub use features::{feature_indices, FeatureContext, FEATURE_COUNT, TABLE_INDEX_BITS};

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::rrip::RrpvTable;

/// Weight clamp (6-bit signed).
const WEIGHT_MAX: i8 = 31;
/// Weight clamp lower bound.
const WEIGHT_MIN: i8 = -32;
/// Predictions at or above this sum bypass the cache entirely.
const BYPASS_THRESHOLD: i32 = 60;
/// Predictions at or above this sum insert at the distant RRPV.
const DEAD_THRESHOLD: i32 = 15;
/// Training margin: only update weights when the sum is inside the margin
/// or the prediction was wrong.
const TRAINING_MARGIN: i32 = 70;
/// RRPV width of the backend (3 bits like Hawkeye/Glider).
const RRPV_BITS: u32 = 3;
/// Maximum RRPV.
const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;
/// Sampled sets used for dead-block training.
const SAMPLED_SETS: u32 = 64;

/// Feature snapshot stored in sampler shadow entries.
type Snapshot = [u16; FEATURE_COUNT];

#[derive(Debug, Clone, Copy)]
struct ShadowEntry {
    partial_tag: u64,
    lru: u64,
    snapshot: Snapshot,
}

/// The MPPPB replacement policy.
#[derive(Debug)]
pub struct Mpppb {
    table: RrpvTable,
    ways: u32,
    weights: Vec<[i8; 1 << TABLE_INDEX_BITS]>,
    // Global context.
    pc_history: [u64; 3],
    last_miss_pc: u64,
    // Sampler.
    sample_ratio: u32,
    shadow: std::collections::HashMap<u32, Vec<ShadowEntry>>,
    shadow_clock: u64,
    // Statistics.
    bypasses: u64,
    dead_inserts: u64,
    live_inserts: u64,
}

impl Mpppb {
    /// Creates MPPPB state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Mpppb {
            table: RrpvTable::new(sets, ways, RRPV_BITS),
            ways,
            weights: vec![[0; 1 << TABLE_INDEX_BITS]; FEATURE_COUNT],
            pc_history: [0; 3],
            last_miss_pc: 0,
            sample_ratio: (sets / SAMPLED_SETS).max(1),
            shadow: std::collections::HashMap::new(),
            shadow_clock: 0,
            bypasses: 0,
            dead_inserts: 0,
            live_inserts: 0,
        }
    }

    fn context(&self, info: &AccessInfo) -> FeatureContext {
        FeatureContext {
            pc: info.pc,
            block: info.block,
            pc_history: self.pc_history,
            last_miss_pc: self.last_miss_pc,
        }
    }

    fn predict(&self, snap: &Snapshot) -> i32 {
        snap.iter().enumerate().map(|(f, &i)| self.weights[f][i as usize] as i32).sum()
    }

    /// Pushes the selected weights toward dead (`true`) or live (`false`).
    fn train(&mut self, snap: &Snapshot, dead: bool) {
        let sum = self.predict(snap);
        if dead && sum >= TRAINING_MARGIN {
            return;
        }
        if !dead && sum <= -TRAINING_MARGIN {
            return;
        }
        for (f, &i) in snap.iter().enumerate() {
            let w = &mut self.weights[f][i as usize];
            *w = if dead { (*w + 1).min(WEIGHT_MAX) } else { (*w - 1).max(WEIGHT_MIN) };
        }
    }

    fn push_history(&mut self, pc: u64) {
        self.pc_history = [pc, self.pc_history[0], self.pc_history[1]];
    }

    /// Dead-block sampler: returns nothing; trains internally.
    fn sample(&mut self, set: u32, info: &AccessInfo, snap: Snapshot) {
        if set % self.sample_ratio != 0 {
            return;
        }
        self.shadow_clock += 1;
        let clock = self.shadow_clock;
        let ways = self.ways as usize;
        let entries = self.shadow.entry(set).or_default();
        // Collect the training event while `entries` is borrowed, apply after.
        let trained: Option<(Snapshot, bool)>;
        if let Some(e) = entries.iter_mut().find(|e| e.partial_tag == info.block) {
            // Shadow hit: the *previous* access's features led to reuse.
            trained = Some((e.snapshot, false));
            e.lru = clock;
            e.snapshot = snap;
        } else {
            if entries.len() >= ways {
                let (i, _) =
                    entries.iter().enumerate().min_by_key(|(_, e)| e.lru).expect("non-empty");
                let dead = entries.swap_remove(i);
                trained = Some((dead.snapshot, true));
            } else {
                trained = None;
            }
            entries.push(ShadowEntry { partial_tag: info.block, lru: clock, snapshot: snap });
        }
        if let Some((s, dead)) = trained {
            self.train(&s, dead);
        }
    }
}

impl ReplacementPolicy for Mpppb {
    fn name(&self) -> &'static str {
        "mpppb"
    }

    #[inline]
    fn victim(&mut self, set: u32, info: &AccessInfo, _lines: &[LineView]) -> Victim {
        if info.kind.is_demand() {
            let snap = feature_indices(&self.context(info));
            if self.predict(&snap) >= BYPASS_THRESHOLD {
                self.bypasses += 1;
                return Victim::Bypass;
            }
        }
        Victim::Way(self.table.find_victim(set))
    }

    #[inline]
    fn forced_victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> u32 {
        // Bypass is off the table: evict by the RRPV aging order, exactly
        // as a non-bypassed victim would be chosen.
        self.table.find_victim(set)
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        if !info.kind.is_demand() {
            return;
        }
        let snap = feature_indices(&self.context(info));
        self.sample(set, info, snap);
        // Promotion by prediction: predicted-dead hits are parked near the
        // eviction point instead of being fully promoted.
        let sum = self.predict(&snap);
        let rrpv = if sum >= DEAD_THRESHOLD { RRPV_MAX - 1 } else { 0 };
        self.table.set(set, way, rrpv);
        self.push_history(info.pc);
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, _evicted: Option<u64>) {
        if !info.kind.is_demand() {
            self.table.set(set, way, RRPV_MAX);
            return;
        }
        let snap = feature_indices(&self.context(info));
        self.sample(set, info, snap);
        let sum = self.predict(&snap);
        let rrpv = if sum >= DEAD_THRESHOLD {
            self.dead_inserts += 1;
            RRPV_MAX
        } else if sum >= 0 {
            RRPV_MAX - 1
        } else {
            self.live_inserts += 1;
            0
        };
        self.table.set(set, way, rrpv);
        self.last_miss_pc = info.pc;
        self.push_history(info.pc);
    }

    fn diag(&self) -> String {
        format!(
            "bypasses={} dead_inserts={} live_inserts={}",
            self.bypasses, self.dead_inserts, self.live_inserts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn load(pc: u64, block: u64, set: u32) -> AccessInfo {
        AccessInfo { pc, block, set, kind: AccessType::Load }
    }

    /// Saturates the predictor toward dead for one access shape.
    fn make_dead(p: &mut Mpppb, info: &AccessInfo) {
        let snap = feature_indices(&p.context(info));
        for _ in 0..40 {
            p.train(&snap, true);
        }
    }

    #[test]
    fn confident_dead_predictions_bypass() {
        let mut p = Mpppb::new(128, 4);
        let info = load(0xDEAD, 0x99, 1);
        make_dead(&mut p, &info);
        assert_eq!(p.victim(1, &info, &[]), Victim::Bypass);
        assert_eq!(p.bypasses, 1);
    }

    #[test]
    fn writebacks_never_bypass() {
        let mut p = Mpppb::new(128, 4);
        let wb = AccessInfo { pc: 0, block: 0x99, set: 1, kind: AccessType::Writeback };
        make_dead(&mut p, &load(0, 0x99, 1));
        assert!(matches!(p.victim(1, &wb, &[]), Victim::Way(_)));
    }

    #[test]
    fn cold_predictor_inserts_cool_not_dead() {
        let mut p = Mpppb::new(128, 4);
        p.on_fill(2, 0, &load(0x10, 0x5, 2), None);
        // Sum 0 -> RRPV_MAX - 1 (cool but not immediately dead).
        assert_eq!(p.table.get(2, 0), RRPV_MAX - 1);
    }

    #[test]
    fn trained_live_inserts_at_zero() {
        let mut p = Mpppb::new(128, 4);
        let info = load(0x42, 0x7, 2);
        let snap = feature_indices(&p.context(&info));
        for _ in 0..40 {
            p.train(&snap, false);
        }
        p.on_fill(2, 1, &info, None);
        assert_eq!(p.table.get(2, 1), 0);
        assert_eq!(p.live_inserts, 1);
    }

    #[test]
    fn shadow_sampler_learns_streaming_is_dead() {
        let mut p = Mpppb::new(64, 4);
        // Stream distinct blocks from one PC through sampled set 0: every
        // shadow entry dies unused.
        for b in 0..200u64 {
            p.on_fill(0, (b % 4) as u32, &load(0xAAA, b, 0), None);
        }
        let info = load(0xAAA, 10_000, 0);
        let snap = feature_indices(&p.context(&info));
        assert!(p.predict(&snap) > 0, "streaming PC should be predicted dead");
    }

    #[test]
    fn shadow_sampler_learns_reuse_is_live() {
        let mut p = Mpppb::new(64, 4);
        // Hit the same two blocks over and over in sampled set 0.
        for i in 0..200u64 {
            p.on_hit(0, (i % 2) as u32, &load(0xBBB, i % 2, 0));
        }
        let info = load(0xBBB, 0, 0);
        let snap = feature_indices(&p.context(&info));
        assert!(p.predict(&snap) < 0, "reused PC should be predicted live");
    }

    #[test]
    fn promotion_demotes_predicted_dead_hits() {
        let mut p = Mpppb::new(128, 4);
        let info = load(0xCCC, 0x3, 5);
        p.on_fill(5, 2, &info, None);
        make_dead(&mut p, &info);
        p.on_hit(5, 2, &info);
        assert_eq!(p.table.get(5, 2), RRPV_MAX - 1, "dead hit parks near eviction");
    }

    #[test]
    fn pc_history_shifts() {
        let mut p = Mpppb::new(128, 4);
        p.on_fill(1, 0, &load(11, 1, 1), None);
        p.on_fill(1, 1, &load(22, 2, 1), None);
        p.on_fill(1, 2, &load(33, 3, 1), None);
        assert_eq!(p.pc_history, [33, 22, 11]);
    }
}
