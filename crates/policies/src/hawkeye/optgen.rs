//! OPTgen: computes, for a sampled set, whether Belady's OPT would have hit
//! each access (Jain & Lin, ISCA 2016).
//!
//! OPTgen exploits the observation that OPT keeps a block between two
//! consecutive accesses X1..X2 iff, at every point of that *usage interval*,
//! fewer than `capacity` blocks are simultaneously live. It maintains a ring
//! of per-time-quantum occupancies covering the last `size` quanta; an
//! access whose previous use lies within the window hits iff all occupancies
//! over the interval are below capacity, in which case the interval is
//! committed (occupancies incremented).

/// Occupancy-vector OPT membership test for one sampled cache set.
#[derive(Debug, Clone)]
pub struct OptGen {
    occupancy: Vec<u8>,
    capacity: u8,
    hits: u64,
    misses: u64,
}

impl OptGen {
    /// Creates an OPTgen for a set of `capacity` ways with a history window
    /// of `size` time quanta (the papers use `8 x capacity`).
    pub fn new(capacity: u32, size: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        assert!(size >= capacity as usize, "window smaller than capacity");
        OptGen {
            occupancy: vec![0; size],
            capacity: capacity.min(u8::MAX as u32) as u8,
            hits: 0,
            misses: 0,
        }
    }

    /// Window size in quanta.
    pub fn window(&self) -> u64 {
        self.occupancy.len() as u64
    }

    /// Processes the access at time `now` whose previous access to the same
    /// block (if any within the window) was at `prev`. Returns `true` if
    /// OPT would hit.
    ///
    /// Quanta must be fed in non-decreasing order; the slot for `now` is
    /// recycled as the window slides.
    pub fn on_access(&mut self, prev: Option<u64>, now: u64) -> bool {
        let size = self.occupancy.len() as u64;
        // Open the interval slot for the current access.
        self.occupancy[(now % size) as usize] = 0;
        let Some(p) = prev else {
            self.misses += 1;
            return false;
        };
        debug_assert!(p <= now);
        if now - p >= size {
            // Re-use distance beyond the modelled window: OPT miss.
            self.misses += 1;
            return false;
        }
        let fits = (p..now).all(|q| self.occupancy[(q % size) as usize] < self.capacity);
        if fits {
            for q in p..now {
                self.occupancy[(q % size) as usize] += 1;
            }
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        fits
    }

    /// (OPT hits, OPT misses) observed so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Maximum occupancy currently recorded (for invariant checks).
    pub fn peak_occupancy(&self) -> u8 {
        self.occupancy.iter().copied().max().unwrap_or(0)
    }

    /// Set capacity in ways.
    pub fn capacity(&self) -> u8 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_single_block_always_hits() {
        let mut g = OptGen::new(2, 16);
        assert!(!g.on_access(None, 0));
        for t in 1..10u64 {
            assert!(g.on_access(Some(t - 1), t), "tight reuse must hit");
        }
        assert_eq!(g.stats(), (9, 1));
    }

    #[test]
    fn capacity_bounds_simultaneous_liveness() {
        // Capacity 1, pattern A B A B. OPTgen models OPT *with bypass*
        // (as in the Hawkeye paper): A's reuse interval [0,2) is empty, so
        // A hits and commits occupancy 1 over [0,2). B's interval [1,3)
        // then collides with A's committed interval at quantum 1 -> miss.
        let mut g = OptGen::new(1, 16);
        assert!(!g.on_access(None, 0)); // A cold
        assert!(!g.on_access(None, 1)); // B cold
        assert!(g.on_access(Some(0), 2), "A's interval is free: OPT keeps A");
        assert!(!g.on_access(Some(1), 3), "B's interval collides with A's");
    }

    #[test]
    fn capacity_two_holds_two_interleaved_blocks() {
        let mut g = OptGen::new(2, 16);
        g.on_access(None, 0); // A
        g.on_access(None, 1); // B
        assert!(g.on_access(Some(0), 2)); // A again: fits (occ < 2)
        assert!(g.on_access(Some(1), 3)); // B again: fits
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut g = OptGen::new(3, 24);
        // Dense random-ish interleaving of 6 blocks.
        let mut last = [None::<u64>; 6];
        for t in 0..200u64 {
            let b = (t * 7 % 6) as usize;
            g.on_access(last[b], t);
            last[b] = Some(t);
            assert!(g.peak_occupancy() <= g.capacity());
        }
    }

    #[test]
    fn reuse_beyond_window_misses() {
        let mut g = OptGen::new(4, 8);
        g.on_access(None, 0);
        assert!(!g.on_access(Some(0), 8), "distance == window must miss");
        assert!(!g.on_access(Some(0), 100));
    }

    #[test]
    #[should_panic(expected = "window smaller than capacity")]
    fn tiny_window_rejected() {
        let _ = OptGen::new(8, 4);
    }
}
