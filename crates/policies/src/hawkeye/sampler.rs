//! Set sampler shared by Hawkeye and Glider.
//!
//! A small number of *sampled sets* maintain, per set, (i) an [`OptGen`]
//! instance and (ii) a bounded history of recently-seen blocks with a
//! caller-supplied payload (the PC for Hawkeye, the PC plus its history
//! features for Glider). Observing an access to a sampled set yields the
//! training events the predictor needs.

use std::collections::HashMap;

use crate::hawkeye::optgen::OptGen;

/// History depth multiplier: each sampled set remembers `8 x assoc`
/// accesses, per the Hawkeye paper.
pub const HISTORY_FACTOR: u32 = 8;
/// Number of sampled sets (clamped to the total set count).
pub const SAMPLED_SETS: u32 = 64;

/// Training events produced by one sampled access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResult<P> {
    /// The payload recorded at this block's *previous* access, together
    /// with OPTgen's verdict for the reuse ending now (`true` = OPT hit:
    /// train positively).
    pub reuse: Option<(P, bool)>,
    /// Payload of an entry evicted from the sampler without being re-used
    /// (its last occupancy interval never closed: train negatively).
    pub evicted: Option<P>,
}

#[derive(Debug)]
struct SamplerEntry<P> {
    partial_tag: u64,
    last_quanta: u64,
    payload: P,
}

#[derive(Debug)]
struct SampledSet<P> {
    entries: Vec<SamplerEntry<P>>,
    optgen: OptGen,
    quanta: u64,
}

/// The sampler: see the [module docs](self).
#[derive(Debug)]
pub struct Sampler<P> {
    ratio: u32,
    max_entries: usize,
    sets: HashMap<u32, SampledSet<P>>,
    assoc: u32,
}

impl<P: Clone> Sampler<P> {
    /// Creates a sampler for a cache of `sets x ways`, sampling
    /// [`SAMPLED_SETS`] sets (or all of them if fewer exist).
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        let ratio = (sets / SAMPLED_SETS).max(1);
        Sampler {
            ratio,
            max_entries: (ways * HISTORY_FACTOR) as usize,
            sets: HashMap::new(),
            assoc: ways,
        }
    }

    /// `true` if `set` is one of the sampled sets.
    #[inline]
    pub fn is_sampled(&self, set: u32) -> bool {
        set % self.ratio == 0
    }

    /// Observes a demand access to `set` for `block` carrying `payload`
    /// (stored for future training). Returns `None` for unsampled sets.
    pub fn observe(&mut self, set: u32, block: u64, payload: P) -> Option<SampleResult<P>> {
        if !self.is_sampled(set) {
            return None;
        }
        let assoc = self.assoc;
        let max_entries = self.max_entries;
        let sset = self.sets.entry(set).or_insert_with(|| SampledSet {
            entries: Vec::with_capacity(max_entries),
            optgen: OptGen::new(assoc, (assoc * HISTORY_FACTOR) as usize),
            quanta: 0,
        });
        let now = sset.quanta;
        sset.quanta += 1;
        let window = sset.optgen.window();
        let mut result = SampleResult { reuse: None, evicted: None };
        if let Some(e) = sset.entries.iter_mut().find(|e| e.partial_tag == block) {
            // Reuse: ask OPTgen whether the interval fits, train the payload
            // recorded at the previous access.
            let prev = if now - e.last_quanta < window { Some(e.last_quanta) } else { None };
            let hit = sset.optgen.on_access(prev, now);
            result.reuse = Some((e.payload.clone(), hit));
            e.last_quanta = now;
            e.payload = payload;
        } else {
            sset.optgen.on_access(None, now);
            if sset.entries.len() >= self.max_entries {
                // Evict the least recently used history entry: it was never
                // re-used within the window.
                let (idx, _) = sset
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_quanta)
                    .expect("entries non-empty");
                let evicted = sset.entries.swap_remove(idx);
                result.evicted = Some(evicted.payload);
            }
            sset.entries.push(SamplerEntry { partial_tag: block, last_quanta: now, payload });
        }
        Some(result)
    }

    /// Aggregate OPTgen statistics over all sampled sets: (hits, misses).
    pub fn optgen_stats(&self) -> (u64, u64) {
        self.sets.values().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.optgen.stats();
            (h + sh, m + sm)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsampled_sets_return_none() {
        let mut s: Sampler<u64> = Sampler::new(2048, 11);
        assert!(s.is_sampled(0));
        assert!(!s.is_sampled(1));
        assert_eq!(s.observe(1, 0xAA, 1), None);
        assert!(s.observe(0, 0xAA, 1).is_some());
    }

    #[test]
    fn small_caches_sample_every_set() {
        let s: Sampler<u64> = Sampler::new(16, 4);
        for set in 0..16 {
            assert!(s.is_sampled(set));
        }
    }

    #[test]
    fn reuse_returns_previous_payload_with_opt_verdict() {
        let mut s: Sampler<u64> = Sampler::new(64, 4);
        assert_eq!(s.observe(0, 0xAA, 111).unwrap(), SampleResult { reuse: None, evicted: None });
        let r = s.observe(0, 0xAA, 222).unwrap();
        // Tight reuse, plenty of capacity: OPT hit training for payload 111.
        assert_eq!(r.reuse, Some((111, true)));
    }

    #[test]
    fn thrashing_pattern_trains_negative() {
        // 4-way set, history 32: touch 40 distinct blocks then return to the
        // first — distance exceeds the window, the reuse must be an OPT miss
        // (if the entry even survives; with 32 entries it was evicted).
        let mut s: Sampler<u64> = Sampler::new(64, 4);
        let mut evictions = 0;
        for b in 0..40u64 {
            let r = s.observe(0, b, b).unwrap();
            if r.evicted.is_some() {
                evictions += 1;
            }
        }
        assert!(evictions > 0, "bounded sampler must evict");
        let r = s.observe(0, 0, 99).unwrap();
        // Block 0 was evicted from the sampler, so this is a fresh insert.
        assert_eq!(r.reuse, None);
    }

    #[test]
    fn eviction_yields_lru_payload() {
        let mut s: Sampler<u32> = Sampler::new(64, 1); // history = 8 entries
        for b in 0..8u64 {
            s.observe(0, b, b as u32).unwrap();
        }
        // Touch block 0 to refresh it; block 1 is now LRU.
        s.observe(0, 0, 100).unwrap();
        let r = s.observe(0, 999, 9).unwrap();
        assert_eq!(r.evicted, Some(1));
    }

    #[test]
    fn optgen_stats_accumulate() {
        let mut s: Sampler<u64> = Sampler::new(64, 4);
        s.observe(0, 1, 0).unwrap();
        s.observe(0, 1, 0).unwrap();
        let (h, m) = s.optgen_stats();
        assert_eq!((h, m), (1, 1));
    }
}
