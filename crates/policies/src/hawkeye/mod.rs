//! Hawkeye: learning from Belady's OPT
//! (Jain & Lin, ISCA 2016).
//!
//! Hawkeye reconstructs what OPT *would have done* on a sample of the access
//! stream ([`OptGen`]) and trains a PC-indexed predictor from those
//! decisions: PCs whose loads OPT retains are *cache-friendly*, PCs whose
//! loads OPT discards are *cache-averse*. Friendly fills insert at RRPV 0
//! and age gradually; averse fills insert at RRPV 7 and are evicted first.
//! When a friendly line must be evicted anyway, the PC that inserted it is
//! detrained.

pub mod optgen;
pub mod sampler;

pub use optgen::OptGen;
pub use sampler::{SampleResult, Sampler, HISTORY_FACTOR, SAMPLED_SETS};

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::util::{hash_bits, SatCounter};

/// RRPV width for Hawkeye's backend (3 bits, per the paper).
pub const HAWKEYE_RRPV_BITS: u32 = 3;
/// Maximum RRPV: cache-averse lines live here.
pub const HAWKEYE_RRPV_MAX: u8 = (1 << HAWKEYE_RRPV_BITS) - 1;
/// Friendly lines age up to this value only (7 is reserved for averse).
const FRIENDLY_AGE_CAP: u8 = HAWKEYE_RRPV_MAX - 1;
/// Predictor index width: 2^13 = 8192 entries of 3-bit counters.
const PREDICTOR_INDEX_BITS: u32 = 13;
/// Predictor counter width.
const PREDICTOR_COUNTER_BITS: u32 = 3;

/// The PC-indexed occupancy predictor: 3-bit counters, friendly when the
/// counter is in the upper half.
#[derive(Debug)]
pub struct OccupancyPredictor {
    counters: Vec<SatCounter>,
}

impl OccupancyPredictor {
    /// Creates a predictor with all counters weakly friendly.
    pub fn new() -> Self {
        OccupancyPredictor {
            counters: vec![
                SatCounter::new(
                    PREDICTOR_COUNTER_BITS,
                    1 << (PREDICTOR_COUNTER_BITS - 1)
                );
                1 << PREDICTOR_INDEX_BITS
            ],
        }
    }

    #[inline]
    fn idx(pc: u64) -> usize {
        hash_bits(pc, PREDICTOR_INDEX_BITS) as usize
    }

    /// `true` if loads from `pc` are predicted cache-friendly.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[Self::idx(pc)].msb()
    }

    /// Strengthens the friendly prediction for `pc`.
    pub fn train_friendly(&mut self, pc: u64) {
        self.counters[Self::idx(pc)].inc();
    }

    /// Strengthens the averse prediction for `pc`.
    pub fn train_averse(&mut self, pc: u64) {
        self.counters[Self::idx(pc)].dec();
    }
}

impl Default for OccupancyPredictor {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-line Hawkeye metadata.
#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    rrpv: u8,
    /// PC of the access that last touched this line (for detraining).
    last_pc: u64,
    /// Whether the line was predicted friendly at its last touch.
    friendly: bool,
    valid: bool,
}

/// The Hawkeye replacement policy.
#[derive(Debug)]
pub struct Hawkeye {
    ways: u32,
    meta: Vec<LineMeta>,
    predictor: OccupancyPredictor,
    sampler: Sampler<u64>,
    detrained_evictions: u64,
}

impl Hawkeye {
    /// Creates Hawkeye state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Hawkeye {
            ways,
            meta: vec![LineMeta::default(); (sets * ways) as usize],
            predictor: OccupancyPredictor::new(),
            sampler: Sampler::new(sets, ways),
            detrained_evictions: 0,
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    /// Runs the sampled-OPT training pipeline for one demand access.
    fn train(&mut self, set: u32, info: &AccessInfo) {
        if let Some(result) = self.sampler.observe(set, info.block, info.pc) {
            if let Some((prev_pc, opt_hit)) = result.reuse {
                if opt_hit {
                    self.predictor.train_friendly(prev_pc);
                } else {
                    self.predictor.train_averse(prev_pc);
                }
            }
            if let Some(evicted_pc) = result.evicted {
                self.predictor.train_averse(evicted_pc);
            }
        }
    }

    /// Applies the insertion/promotion decision shared by hits and fills.
    fn touch(&mut self, set: u32, way: u32, info: &AccessInfo, is_fill: bool) {
        let friendly = self.predictor.predict(info.pc);
        let i = self.idx(set, way);
        self.meta[i].last_pc = info.pc;
        self.meta[i].friendly = friendly;
        self.meta[i].valid = true;
        if !friendly {
            self.meta[i].rrpv = HAWKEYE_RRPV_MAX;
            return;
        }
        self.meta[i].rrpv = 0;
        if is_fill {
            // Age every other friendly line so older friendly lines become
            // the preferred victims when no averse line exists.
            let base = self.idx(set, 0);
            for w in 0..self.ways as usize {
                if w != way as usize {
                    let m = &mut self.meta[base + w];
                    if m.valid && m.rrpv < FRIENDLY_AGE_CAP {
                        m.rrpv += 1;
                    }
                }
            }
        }
    }
}

impl ReplacementPolicy for Hawkeye {
    fn name(&self) -> &'static str {
        "hawkeye"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        let base = self.idx(set, 0);
        let metas = &self.meta[base..base + self.ways as usize];
        // Prefer a cache-averse line.
        if let Some(w) = metas.iter().position(|m| m.rrpv == HAWKEYE_RRPV_MAX) {
            return Victim::Way(w as u32);
        }
        // Otherwise evict the oldest friendly line and detrain the PC that
        // put it there: the predictor was too optimistic.
        let (w, _) = metas.iter().enumerate().max_by_key(|(_, m)| m.rrpv).expect("ways > 0");
        let pc = metas[w].last_pc;
        self.predictor.train_averse(pc);
        self.detrained_evictions += 1;
        Victim::Way(w as u32)
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        if !info.kind.is_demand() {
            return;
        }
        self.train(set, info);
        self.touch(set, way, info, false);
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, _evicted: Option<u64>) {
        if !info.kind.is_demand() {
            // Writebacks are inserted averse and never train the predictor.
            let i = self.idx(set, way);
            self.meta[i] =
                LineMeta { rrpv: HAWKEYE_RRPV_MAX, last_pc: 0, friendly: false, valid: true };
            return;
        }
        self.train(set, info);
        self.touch(set, way, info, true);
    }

    fn diag(&self) -> String {
        let (h, m) = self.sampler.optgen_stats();
        format!(
            "optgen hits={h} misses={m} friendly_evictions_detrained={}",
            self.detrained_evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn load(pc: u64, block: u64, set: u32) -> AccessInfo {
        AccessInfo { pc, block, set, kind: AccessType::Load }
    }

    fn wb(block: u64, set: u32) -> AccessInfo {
        AccessInfo { pc: 0, block, set, kind: AccessType::Writeback }
    }

    #[test]
    fn predictor_learns_friendly_and_averse() {
        let mut p = OccupancyPredictor::new();
        let pc = 0x400;
        for _ in 0..4 {
            p.train_averse(pc);
        }
        assert!(!p.predict(pc));
        for _ in 0..8 {
            p.train_friendly(pc);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn averse_lines_are_preferred_victims() {
        let mut hk = Hawkeye::new(64, 4);
        let averse_pc = 0x100;
        // Detrain averse_pc hard via direct predictor access.
        for _ in 0..8 {
            hk.predictor.train_averse(averse_pc);
        }
        // Fill ways 0..3: way 2 filled by the averse PC.
        for w in 0..4u32 {
            let pc = if w == 2 { averse_pc } else { 0x200 + w as u64 };
            hk.on_fill(3, w, &load(pc, w as u64, 3), None);
        }
        assert_eq!(hk.victim(3, &load(0x300, 9, 3), &[]), Victim::Way(2));
    }

    #[test]
    fn friendly_eviction_detrains_inserting_pc() {
        let mut hk = Hawkeye::new(64, 2);
        let pc = 0x500;
        hk.on_fill(5, 0, &load(pc, 1, 5), None);
        hk.on_fill(5, 1, &load(pc, 2, 5), None);
        let before = hk.predictor.counters[OccupancyPredictor::idx(pc)].get();
        let _ = hk.victim(5, &load(0x600, 3, 5), &[]);
        let after = hk.predictor.counters[OccupancyPredictor::idx(pc)].get();
        assert_eq!(after, before - 1, "friendly eviction must detrain");
        assert_eq!(hk.detrained_evictions, 1);
    }

    #[test]
    fn fills_age_other_friendly_lines() {
        let mut hk = Hawkeye::new(64, 3);
        hk.on_fill(0, 0, &load(0x1, 1, 0), None);
        hk.on_fill(0, 1, &load(0x2, 2, 0), None);
        hk.on_fill(0, 2, &load(0x3, 3, 0), None);
        // Way 0 aged twice, way 1 once, way 2 fresh.
        assert_eq!(hk.meta[hk.idx(0, 0)].rrpv, 2);
        assert_eq!(hk.meta[hk.idx(0, 1)].rrpv, 1);
        assert_eq!(hk.meta[hk.idx(0, 2)].rrpv, 0);
        // Victim with no averse line: the oldest friendly (way 0).
        assert_eq!(hk.victim(0, &load(0x4, 4, 0), &[]), Victim::Way(0));
    }

    #[test]
    fn writeback_fill_is_averse_and_untrained() {
        let mut hk = Hawkeye::new(64, 2);
        let (h0, m0) = hk.sampler.optgen_stats();
        hk.on_fill(0, 0, &wb(7, 0), None);
        assert_eq!(hk.meta[hk.idx(0, 0)].rrpv, HAWKEYE_RRPV_MAX);
        assert_eq!(hk.sampler.optgen_stats(), (h0, m0));
    }

    #[test]
    fn sampled_reuse_trains_toward_friendly() {
        let mut hk = Hawkeye::new(64, 4);
        let pc = 0x777;
        let before = hk.predictor.counters[OccupancyPredictor::idx(pc)].get();
        // Set 0 is sampled; tight reuse of one block trains friendly.
        for _ in 0..6 {
            hk.on_hit(0, 0, &load(pc, 0xAB, 0));
        }
        let after = hk.predictor.counters[OccupancyPredictor::idx(pc)].get();
        assert!(after > before, "tight reuse should train friendly");
    }

    #[test]
    fn diag_reports_optgen() {
        let mut hk = Hawkeye::new(64, 2);
        hk.on_fill(0, 0, &load(1, 2, 0), None);
        assert!(hk.diag().contains("optgen"));
    }
}
