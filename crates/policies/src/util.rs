//! Small hardware-flavoured utilities shared by the policies: saturating
//! counters, a deterministic pseudo-random generator, and hash mixers.

/// An `n`-bit saturating counter, the workhorse of hardware predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCounter {
    value: u16,
    max: u16,
}

impl SatCounter {
    /// Creates a counter of `bits` bits initialized to `init`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 15, or `init` exceeds the
    /// maximum value.
    pub fn new(bits: u32, init: u16) -> Self {
        assert!((1..=15).contains(&bits), "counter width must be 1..=15 bits");
        let max = (1u16 << bits) - 1;
        assert!(init <= max, "init exceeds counter maximum");
        SatCounter { value: init, max }
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u16 {
        self.value
    }

    /// Maximum representable value.
    #[inline]
    pub fn max(self) -> u16 {
        self.max
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// `true` if the most significant bit is set, i.e. the value is in the
    /// upper half of its range (`value >= 2^(bits-1)`).
    #[inline]
    pub fn msb(self) -> bool {
        self.value >= self.max.div_ceil(2)
    }
}

/// SplitMix64: a tiny, fast, deterministic PRNG used where hardware would
/// employ an LFSR (BRRIP's epsilon-insertions, random replacement).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for the small bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli event with probability `1/denom`.
    #[inline]
    pub fn one_in(&mut self, denom: u64) -> bool {
        self.below(denom) == 0
    }
}

/// Finalizing 64-bit hash (xxHash/Murmur-style avalanche). Used to index
/// predictor tables from PCs and addresses.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Hashes `x` down to `bits` bits.
#[inline]
pub fn hash_bits(x: u64, bits: u32) -> u64 {
    mix64(x) & ((1u64 << bits) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_counter_saturates_both_ends() {
        let mut c = SatCounter::new(2, 0);
        c.dec();
        assert_eq!(c.get(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.get(), 3);
        assert!(c.msb());
    }

    #[test]
    fn sat_counter_msb_threshold() {
        let mut c = SatCounter::new(3, 0); // max 7
        assert!(!c.msb());
        for _ in 0..4 {
            c.inc();
        }
        assert!(c.msb()); // 4 > 3
    }

    #[test]
    #[should_panic(expected = "counter width must be 1..=15 bits")]
    fn zero_width_counter_rejected() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "init exceeds counter maximum")]
    fn oversized_init_rejected() {
        let _ = SatCounter::new(2, 4);
    }

    #[test]
    fn splitmix_below_is_in_range_and_varied() {
        let mut r = SplitMix64::new(42);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn one_in_32_has_plausible_rate() {
        let mut r = SplitMix64::new(7);
        let hits = (0..32_000).filter(|_| r.one_in(32)).count();
        assert!((700..1300).contains(&hits), "rate {hits}/32000 far from 1/32");
    }

    #[test]
    fn mix64_spreads_sequential_inputs() {
        let a = hash_bits(1, 13);
        let b = hash_bits(2, 13);
        let c = hash_bits(3, 13);
        assert!(a != b || b != c, "consecutive hashes should differ");
        assert!(a < (1 << 13) && b < (1 << 13));
    }
}
