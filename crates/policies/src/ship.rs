//! SHiP-PC: Signature-based Hit Predictor
//! (Wu et al., MICRO 2011).
//!
//! Each filled line remembers a 14-bit *signature* (hashed PC) and an
//! *outcome* bit. A Signature History Counter Table (SHCT) of saturating
//! counters learns, per signature, whether lines it inserts are re-used:
//! re-references increment the signature's counter, evictions of never-hit
//! lines decrement it. Fills whose signature has a zero counter are
//! predicted dead and inserted at the distant RRPV; everything else inserts
//! at the long RRPV (SRRIP behaviour).

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::rrip::{RrpvTable, RRPV_BITS, RRPV_LONG, RRPV_MAX};
use crate::util::{hash_bits, SatCounter};

/// Signature width: 14 bits -> 16 K SHCT entries, per the paper.
const SIGNATURE_BITS: u32 = 14;
/// SHCT counter width (2-bit saturating counters, per the paper).
const SHCT_BITS: u32 = 2;

/// Per-line SHiP metadata.
#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    signature: u16,
    outcome: bool,
    valid: bool,
}

/// SHiP-PC over an SRRIP backend.
#[derive(Debug)]
pub struct Ship {
    table: RrpvTable,
    ways: u32,
    meta: Vec<LineMeta>,
    shct: Vec<SatCounter>,
    predicted_dead: u64,
    predicted_live: u64,
}

impl Ship {
    /// Creates SHiP state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        Ship {
            table: RrpvTable::new(sets, ways, RRPV_BITS),
            ways,
            meta: vec![LineMeta::default(); (sets * ways) as usize],
            // Initialize counters to 1 (weakly live) so cold signatures are
            // not immediately treated as dead.
            shct: vec![SatCounter::new(SHCT_BITS, 1); 1 << SIGNATURE_BITS],
            predicted_dead: 0,
            predicted_live: 0,
        }
    }

    #[inline]
    fn signature(pc: u64) -> u16 {
        hash_bits(pc, SIGNATURE_BITS) as u16
    }

    #[inline]
    fn idx(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }
}

impl ReplacementPolicy for Ship {
    fn name(&self) -> &'static str {
        "ship"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        Victim::Way(self.table.find_victim(set))
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        if !info.kind.is_demand() {
            return;
        }
        self.table.set(set, way, 0);
        let i = self.idx(set, way);
        if self.meta[i].valid && !self.meta[i].outcome {
            self.meta[i].outcome = true;
            self.shct[self.meta[i].signature as usize].inc();
        }
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, _evicted: Option<u64>) {
        let i = self.idx(set, way);
        // Train on the displaced line: never re-used => its signature
        // produced a dead block.
        if self.meta[i].valid && !self.meta[i].outcome {
            self.shct[self.meta[i].signature as usize].dec();
        }
        if info.kind.is_demand() {
            let sig = Self::signature(info.pc);
            let predicted_dead = self.shct[sig as usize].get() == 0;
            let insertion = if predicted_dead {
                self.predicted_dead += 1;
                RRPV_MAX
            } else {
                self.predicted_live += 1;
                RRPV_LONG
            };
            self.table.set(set, way, insertion);
            self.meta[i] = LineMeta { signature: sig, outcome: false, valid: true };
        } else {
            // Writebacks carry no signature; insert distant, untracked.
            self.table.set(set, way, RRPV_MAX);
            self.meta[i] = LineMeta::default();
        }
    }

    fn diag(&self) -> String {
        format!("fills predicted dead={} live={}", self.predicted_dead, self.predicted_live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn load(pc: u64, set: u32) -> AccessInfo {
        AccessInfo { pc, block: 0x10, set, kind: AccessType::Load }
    }

    fn wb(set: u32) -> AccessInfo {
        AccessInfo { pc: 0, block: 0x10, set, kind: AccessType::Writeback }
    }

    /// Drives fills at `pc` in way 0 with no intervening hit so the
    /// signature is repeatedly detrained.
    fn detrain(p: &mut Ship, pc: u64, times: usize) {
        for _ in 0..times {
            p.on_fill(0, 0, &load(pc, 0), None);
        }
    }

    #[test]
    fn streaming_signature_becomes_dead_and_inserts_distant() {
        let mut p = Ship::new(4, 4);
        let pc = 0xBEEF;
        detrain(&mut p, pc, 4); // counter 1 -> 0 after first untouched refill
        p.on_fill(0, 1, &load(pc, 0), None);
        assert_eq!(p.table.get(0, 1), RRPV_MAX, "dead signature must insert distant");
    }

    #[test]
    fn rereferenced_signature_stays_live() {
        let mut p = Ship::new(4, 4);
        let pc = 0xCAFE;
        for _ in 0..8 {
            p.on_fill(0, 2, &load(pc, 0), None);
            p.on_hit(0, 2, &load(pc, 0)); // always re-used: trains live
        }
        p.on_fill(0, 3, &load(pc, 0), None);
        assert_eq!(p.table.get(0, 3), RRPV_LONG);
    }

    #[test]
    fn outcome_trains_shct_once_per_line() {
        let mut p = Ship::new(4, 4);
        let pc = 0x1234;
        let sig = Ship::signature(pc) as usize;
        p.on_fill(0, 0, &load(pc, 0), None);
        let before = p.shct[sig].get();
        p.on_hit(0, 0, &load(pc, 0));
        p.on_hit(0, 0, &load(pc, 0));
        p.on_hit(0, 0, &load(pc, 0));
        assert_eq!(p.shct[sig].get(), before + 1, "only first hit increments");
    }

    #[test]
    fn writeback_fills_are_untracked_and_distant() {
        let mut p = Ship::new(4, 4);
        p.on_fill(1, 0, &wb(1), None);
        assert_eq!(p.table.get(1, 0), RRPV_MAX);
        assert!(!p.meta[p.idx(1, 0)].valid);
    }

    #[test]
    fn writeback_hit_does_not_promote_or_train() {
        let mut p = Ship::new(4, 4);
        let pc = 0x77;
        p.on_fill(0, 0, &load(pc, 0), None);
        let sig = Ship::signature(pc) as usize;
        let before = p.shct[sig].get();
        p.on_hit(0, 0, &wb(0));
        assert_eq!(p.table.get(0, 0), RRPV_LONG);
        assert_eq!(p.shct[sig].get(), before);
    }
}
