//! DIP: Dynamic Insertion Policy (Qureshi et al., ISCA 2007).
//!
//! The precursor of DRRIP: set-dueling between traditional LRU insertion
//! and *Bimodal* insertion (BIP — insert at LRU position except for a 1/32
//! trickle at MRU), which protects against thrashing working sets. DIP is
//! the missing link between the LRU baseline and the RRIP family, so it is
//! included for ablations even though the paper does not evaluate it.

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::util::{SatCounter, SplitMix64};

/// One LRU leader set and one BIP leader set per this many sets.
const LEADER_PERIOD: u32 = 64;
/// Offset of the BIP leader within each region.
const BIP_LEADER_OFFSET: u32 = 33;
/// PSEL width.
const PSEL_BITS: u32 = 10;
/// BIP inserts at MRU once every this many fills.
const BIP_EPSILON: u64 = 32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    LeaderLru,
    LeaderBip,
    Follower,
}

/// Dynamic Insertion Policy over a true-LRU stack.
#[derive(Debug)]
pub struct Dip {
    ways: u32,
    stamp: u64,
    stamps: Vec<u64>,
    /// Minimum stamp per set, tracked so "insert at LRU" can place a line
    /// *below* every resident line.
    psel: SatCounter,
    rng: SplitMix64,
}

impl Dip {
    /// Creates DIP state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Dip {
            ways,
            stamp: 1,
            stamps: vec![0; (sets * ways) as usize],
            psel: SatCounter::new(PSEL_BITS, 0),
            rng: SplitMix64::new(0xD1B2),
        }
    }

    fn role(set: u32) -> SetRole {
        match set % LEADER_PERIOD {
            0 => SetRole::LeaderLru,
            BIP_LEADER_OFFSET => SetRole::LeaderBip,
            _ => SetRole::Follower,
        }
    }

    fn bip_winning(&self) -> bool {
        self.psel.msb()
    }

    #[inline]
    fn idx(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    /// Stamp of the current LRU line in `set` (insertion *below* it uses
    /// `lru_stamp - 1`; stamps start at 1 so this cannot underflow past 0).
    fn min_stamp(&self, set: u32) -> u64 {
        let base = self.idx(set, 0);
        self.stamps[base..base + self.ways as usize].iter().copied().min().expect("ways > 0")
    }
}

impl ReplacementPolicy for Dip {
    fn name(&self) -> &'static str {
        "dip"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        let base = self.idx(set, 0);
        let slice = &self.stamps[base..base + self.ways as usize];
        let (way, _) = slice.iter().enumerate().min_by_key(|&(_, &s)| s).expect("ways > 0");
        Victim::Way(way as u32)
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, _info: &AccessInfo) {
        self.stamp += 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.stamp;
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, _evicted: Option<u64>) {
        if info.kind.is_demand() {
            match Self::role(set) {
                SetRole::LeaderLru => self.psel.inc(),
                SetRole::LeaderBip => self.psel.dec(),
                SetRole::Follower => {}
            }
        }
        let use_bip = match Self::role(set) {
            SetRole::LeaderLru => false,
            SetRole::LeaderBip => true,
            SetRole::Follower => self.bip_winning(),
        };
        let i = self.idx(set, way);
        if use_bip && !self.rng.one_in(BIP_EPSILON) {
            // Insert at LRU: stamped just below the set's current minimum,
            // so the next miss evicts this line unless it hits first.
            self.stamps[i] = self.min_stamp(set).saturating_sub(1);
        } else {
            self.stamp += 1;
            self.stamps[i] = self.stamp;
        }
    }

    fn diag(&self) -> String {
        format!("psel={} ({})", self.psel.get(), if self.bip_winning() { "bip" } else { "lru" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn load(set: u32) -> AccessInfo {
        AccessInfo { pc: 1, block: 2, set, kind: AccessType::Load }
    }

    #[test]
    fn leader_mapping() {
        assert_eq!(Dip::role(0), SetRole::LeaderLru);
        assert_eq!(Dip::role(33), SetRole::LeaderBip);
        assert_eq!(Dip::role(7), SetRole::Follower);
    }

    #[test]
    fn followers_default_to_lru_insertion() {
        let mut p = Dip::new(128, 4);
        for w in 0..4 {
            p.on_fill(1, w, &load(1), None);
        }
        // Newest fill must be MRU: victim is way 0.
        assert_eq!(p.victim(1, &load(1), &[]), Victim::Way(0));
    }

    #[test]
    fn bip_insertion_lands_at_lru() {
        let mut p = Dip::new(128, 4);
        // Drive PSEL toward BIP by missing in the LRU leader set 0.
        for _ in 0..600 {
            p.on_fill(0, 0, &load(0), None);
        }
        assert!(p.bip_winning());
        // Fill a follower set; the new line should mostly be the next victim.
        let mut inserted_at_lru = 0;
        for t in 0..100u32 {
            for w in 0..4 {
                p.on_hit(2, w, &load(2)); // refresh others
            }
            p.on_fill(2, t % 4, &load(2), None);
            if p.victim(2, &load(2), &[]) == Victim::Way(t % 4) {
                inserted_at_lru += 1;
            }
        }
        assert!(inserted_at_lru > 80, "bip must insert at lru: {inserted_at_lru}/100");
    }

    #[test]
    fn bip_leaders_pull_back_toward_lru() {
        let mut p = Dip::new(128, 4);
        for _ in 0..600 {
            p.on_fill(0, 0, &load(0), None);
        }
        assert!(p.bip_winning());
        for _ in 0..600 {
            p.on_fill(33, 0, &load(33), None);
        }
        assert!(!p.bip_winning());
    }

    #[test]
    fn hits_always_promote_to_mru() {
        let mut p = Dip::new(128, 2);
        p.on_fill(5, 0, &load(5), None);
        p.on_fill(5, 1, &load(5), None);
        p.on_hit(5, 0, &load(5));
        assert_eq!(p.victim(5, &load(5), &[]), Victim::Way(1));
    }

    #[test]
    fn diag_reports_winner() {
        let p = Dip::new(128, 4);
        assert!(p.diag().contains("lru"));
    }
}
