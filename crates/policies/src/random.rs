//! Uniform random replacement.

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::util::SplitMix64;

/// Evicts a uniformly random way. The cheapest possible policy and a useful
/// statistical baseline: any policy that cannot beat random on a workload is
/// extracting no signal from it.
#[derive(Debug)]
pub struct RandomPolicy {
    ways: u32,
    rng: SplitMix64,
}

impl RandomPolicy {
    /// Creates a random policy for a cache with `ways` ways.
    pub fn new(_sets: u32, ways: u32) -> Self {
        assert!(ways > 0, "cache geometry must be non-zero");
        RandomPolicy { ways, rng: SplitMix64::new(0xCC51_u64) }
    }

    /// Overrides the eviction RNG seed (for reproducibility studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    #[inline]
    fn victim(&mut self, _set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        Victim::Way(self.rng.below(self.ways as u64) as u32)
    }

    #[inline]
    fn on_hit(&mut self, _set: u32, _way: u32, _info: &AccessInfo) {}

    #[inline]
    fn on_fill(&mut self, _set: u32, _way: u32, _info: &AccessInfo, _evicted: Option<u64>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    #[test]
    fn victims_cover_all_ways() {
        let mut p = RandomPolicy::new(1, 8).with_seed(3);
        let info = AccessInfo { pc: 0, block: 0, set: 0, kind: AccessType::Load };
        let mut seen = [false; 8];
        for _ in 0..500 {
            let Victim::Way(w) = p.victim(0, &info, &[]) else { unreachable!() };
            assert!(w < 8);
            seen[w as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let info = AccessInfo { pc: 0, block: 0, set: 0, kind: AccessType::Load };
        let seq = |seed| {
            let mut p = RandomPolicy::new(1, 4).with_seed(seed);
            (0..16).map(|_| p.victim(0, &info, &[])).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
    }
}
