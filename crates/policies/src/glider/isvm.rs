//! Integer Support Vector Machines for Glider's online predictor.

/// Weights per ISVM (one weight selected per PC-history feature).
pub const ISVM_WEIGHTS: usize = 16;
/// Weight saturation bound (6-bit signed hardware weights).
pub const WEIGHT_MAX: i8 = 31;
/// Weight saturation lower bound.
pub const WEIGHT_MIN: i8 = -32;
/// Training margin: stop reinforcing once the decision sum clears this.
pub const TRAINING_THRESHOLD: i32 = 60;

/// A bank of per-PC integer SVMs. Each table holds [`ISVM_WEIGHTS`] signed
/// weights; the PC-history features of an access each select one weight and
/// the prediction is their sum.
#[derive(Debug)]
pub struct IsvmBank {
    tables: Vec<[i8; ISVM_WEIGHTS]>,
}

impl IsvmBank {
    /// Creates `tables` zero-initialized ISVMs.
    pub fn new(tables: usize) -> Self {
        assert!(tables > 0, "need at least one table");
        IsvmBank { tables: vec![[0; ISVM_WEIGHTS]; tables] }
    }

    /// Number of tables in the bank.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if the bank has no tables (never: the constructor forbids it,
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Decision sum for the access whose current-PC table is `table` and
    /// whose history features are `feats`.
    pub fn predict(&self, table: usize, feats: &[u8]) -> i32 {
        let t = &self.tables[table % self.tables.len()];
        feats.iter().map(|&f| t[f as usize % ISVM_WEIGHTS] as i32).sum()
    }

    /// Perceptron-style update: push the selected weights toward `friendly`
    /// unless the decision is already confidently correct.
    pub fn train(&mut self, table: usize, feats: &[u8], friendly: bool) {
        let sum = self.predict(table, feats);
        if friendly && sum >= TRAINING_THRESHOLD {
            return;
        }
        if !friendly && sum <= -TRAINING_THRESHOLD {
            return;
        }
        let n = self.tables.len();
        let t = &mut self.tables[table % n];
        for &f in feats {
            let w = &mut t[f as usize % ISVM_WEIGHTS];
            *w = if friendly { (*w + 1).min(WEIGHT_MAX) } else { (*w - 1).max(WEIGHT_MIN) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_moves_decision() {
        let mut bank = IsvmBank::new(4);
        let feats = [1u8, 5, 9, 13, 2];
        assert_eq!(bank.predict(0, &feats), 0);
        for _ in 0..5 {
            bank.train(0, &feats, true);
        }
        assert_eq!(bank.predict(0, &feats), 25);
        for _ in 0..10 {
            bank.train(0, &feats, false);
        }
        assert!(bank.predict(0, &feats) < 0);
    }

    #[test]
    fn training_stops_at_margin() {
        let mut bank = IsvmBank::new(1);
        let feats = [0u8, 1, 2, 3, 4];
        for _ in 0..1000 {
            bank.train(0, &feats, true);
        }
        let sum = bank.predict(0, &feats);
        // 5 features: sum advances in steps of 5, halting at >= 60.
        assert!((TRAINING_THRESHOLD..TRAINING_THRESHOLD + 5).contains(&sum));
    }

    #[test]
    fn weights_saturate() {
        // With a single feature the sum can never reach the -60 training
        // margin, so training keeps firing and the weight must clamp.
        let mut bank = IsvmBank::new(1);
        let feats = [7u8];
        for _ in 0..100 {
            bank.train(0, &feats, false);
        }
        assert_eq!(bank.predict(0, &feats), WEIGHT_MIN as i32);
    }

    #[test]
    fn training_margin_halts_multi_feature_updates() {
        // Five identical features advance the sum by 5 per update; training
        // halts at the first update whose starting sum clears the margin.
        let mut bank = IsvmBank::new(1);
        let feats = [7u8; 5];
        for _ in 0..100 {
            bank.train(0, &feats, false);
        }
        let sum = bank.predict(0, &feats);
        assert!(sum <= -TRAINING_THRESHOLD);
        assert!(sum > -TRAINING_THRESHOLD - 25);
    }

    #[test]
    fn tables_are_independent() {
        let mut bank = IsvmBank::new(2);
        let feats = [3u8, 4, 5, 6, 7];
        bank.train(0, &feats, true);
        assert_eq!(bank.predict(1, &feats), 0);
    }

    #[test]
    fn table_index_wraps() {
        let bank = IsvmBank::new(8);
        assert_eq!(bank.predict(8, &[0]), bank.predict(0, &[0]));
    }
}
