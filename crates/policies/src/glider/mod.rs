//! Glider: the practical online variant of the deep-learning-inspired cache
//! replacement policy (Shi, Huang, Jain & Lin, MICRO 2019).
//!
//! Glider's offline study showed an LSTM can predict OPT's decisions from
//! the *sequence of past PCs*; its hardware-friendly distillation replaces
//! the LSTM with one Integer SVM per PC whose features are the k most
//! recent distinct PCs (an order-free set, the *PC History Register*).
//! Training labels come from the same OPTgen sampler Hawkeye uses; the
//! cache backend (RRIP ages, aging-on-fill, averse insertion at RRPV 7) is
//! inherited from Hawkeye.

pub mod isvm;

pub use isvm::{IsvmBank, ISVM_WEIGHTS, TRAINING_THRESHOLD};

use crate::hawkeye::sampler::Sampler;
use crate::hawkeye::{HAWKEYE_RRPV_BITS, HAWKEYE_RRPV_MAX};
use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::util::hash_bits;

/// Depth of the PC history register (k most recent distinct PCs).
pub const PCHR_DEPTH: usize = 5;
/// Number of ISVM tables (indexed by hashed current PC).
const ISVM_TABLES: usize = 2048;
/// Decision sums at or above this insert with high confidence (RRPV 0).
const CONFIDENT_FRIENDLY: i32 = 60;
/// Friendly lines age up to this value (7 is reserved for averse).
const FRIENDLY_AGE_CAP: u8 = HAWKEYE_RRPV_MAX - 1;

const _: () = assert!(HAWKEYE_RRPV_BITS == 3, "glider backend assumes 3-bit rrpv");

/// The features of one access: its ISVM table plus the weight indices
/// selected by the PCHR contents at access time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GliderFeatures {
    table: u16,
    feats: [u8; PCHR_DEPTH],
}

/// PC history register: the most recent distinct PCs, most recent first.
#[derive(Debug, Default)]
pub struct PcHistoryRegister {
    pcs: Vec<u64>,
}

impl PcHistoryRegister {
    /// Creates an empty PCHR.
    pub fn new() -> Self {
        PcHistoryRegister { pcs: Vec::with_capacity(PCHR_DEPTH + 1) }
    }

    /// Inserts `pc` as most recent, deduplicating and truncating to depth.
    pub fn push(&mut self, pc: u64) {
        self.pcs.retain(|&p| p != pc);
        self.pcs.insert(0, pc);
        self.pcs.truncate(PCHR_DEPTH);
    }

    /// Current contents, most recent first.
    pub fn pcs(&self) -> &[u64] {
        &self.pcs
    }

    /// Weight indices selected by the current history. Slots the history
    /// has not filled yet hash PC 0, so cold-start decisions are driven by
    /// a single shared weight and stay near zero.
    fn features(&self) -> [u8; PCHR_DEPTH] {
        std::array::from_fn(|i| {
            let pc = self.pcs.get(i).copied().unwrap_or(0);
            hash_bits(pc, 4) as u8
        })
    }
}

/// Per-line Glider metadata.
#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    rrpv: u8,
    valid: bool,
}

/// The Glider replacement policy.
#[derive(Debug)]
pub struct Glider {
    ways: u32,
    meta: Vec<LineMeta>,
    bank: IsvmBank,
    pchr: PcHistoryRegister,
    sampler: Sampler<GliderFeatures>,
    confident_fills: u64,
    averse_fills: u64,
}

impl Glider {
    /// Creates Glider state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Glider {
            ways,
            meta: vec![LineMeta::default(); (sets * ways) as usize],
            bank: IsvmBank::new(ISVM_TABLES),
            pchr: PcHistoryRegister::new(),
            sampler: Sampler::new(sets, ways),
            confident_fills: 0,
            averse_fills: 0,
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    fn snapshot(&self, pc: u64) -> GliderFeatures {
        GliderFeatures { table: hash_bits(pc, 11) as u16, feats: self.pchr.features() }
    }

    /// Updates PCHR, runs the sampler and returns the decision sum for the
    /// current access.
    fn observe(&mut self, set: u32, info: &AccessInfo) -> i32 {
        self.pchr.push(info.pc);
        let snap = self.snapshot(info.pc);
        if let Some(result) = self.sampler.observe(set, info.block, snap) {
            if let Some((prev, opt_hit)) = result.reuse {
                self.bank.train(prev.table as usize, &prev.feats, opt_hit);
            }
            if let Some(evicted) = result.evicted {
                self.bank.train(evicted.table as usize, &evicted.feats, false);
            }
        }
        self.bank.predict(snap.table as usize, &snap.feats)
    }
}

impl ReplacementPolicy for Glider {
    fn name(&self) -> &'static str {
        "glider"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        let base = self.idx(set, 0);
        let metas = &self.meta[base..base + self.ways as usize];
        if let Some(w) = metas.iter().position(|m| m.rrpv == HAWKEYE_RRPV_MAX) {
            return Victim::Way(w as u32);
        }
        let (w, _) = metas.iter().enumerate().max_by_key(|(_, m)| m.rrpv).expect("ways > 0");
        Victim::Way(w as u32)
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        if !info.kind.is_demand() {
            return;
        }
        let sum = self.observe(set, info);
        let i = self.idx(set, way);
        self.meta[i].rrpv = if sum < 0 { HAWKEYE_RRPV_MAX } else { 0 };
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, _evicted: Option<u64>) {
        let i = self.idx(set, way);
        if !info.kind.is_demand() {
            self.meta[i] = LineMeta { rrpv: HAWKEYE_RRPV_MAX, valid: true };
            return;
        }
        let sum = self.observe(set, info);
        let rrpv = if sum >= CONFIDENT_FRIENDLY {
            self.confident_fills += 1;
            0
        } else if sum >= 0 {
            // Low-confidence friendly: insert cool so it ages out unless
            // promoted by a real hit.
            1
        } else {
            self.averse_fills += 1;
            HAWKEYE_RRPV_MAX
        };
        self.meta[i] = LineMeta { rrpv, valid: true };
        if rrpv == 0 {
            // Hawkeye-style aging of other friendly lines.
            let base = self.idx(set, 0);
            for w in 0..self.ways as usize {
                if w != way as usize {
                    let m = &mut self.meta[base + w];
                    if m.valid && m.rrpv < FRIENDLY_AGE_CAP {
                        m.rrpv += 1;
                    }
                }
            }
        }
    }

    fn diag(&self) -> String {
        let (h, m) = self.sampler.optgen_stats();
        format!(
            "optgen hits={h} misses={m} fills: confident={} averse={}",
            self.confident_fills, self.averse_fills
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn load(pc: u64, block: u64, set: u32) -> AccessInfo {
        AccessInfo { pc, block, set, kind: AccessType::Load }
    }

    #[test]
    fn pchr_dedupes_and_truncates() {
        let mut r = PcHistoryRegister::new();
        for pc in [1u64, 2, 3, 2, 4, 5, 6] {
            r.push(pc);
        }
        assert_eq!(r.pcs(), &[6, 5, 4, 2, 3]);
        r.push(3);
        assert_eq!(r.pcs(), &[3, 6, 5, 4, 2]);
    }

    #[test]
    fn negative_sum_inserts_averse() {
        let mut g = Glider::new(64, 4);
        let pc = 0x42;
        // Pre-train the ISVM negatively for this PC's table/features.
        g.pchr.push(pc);
        let snap = g.snapshot(pc);
        for _ in 0..20 {
            g.bank.train(snap.table as usize, &snap.feats, false);
        }
        g.on_fill(1, 0, &load(pc, 5, 1), None);
        assert_eq!(g.meta[g.idx(1, 0)].rrpv, HAWKEYE_RRPV_MAX);
        assert_eq!(g.averse_fills, 1);
    }

    #[test]
    fn cold_predictor_inserts_low_confidence_friendly() {
        let mut g = Glider::new(64, 4);
        g.on_fill(1, 0, &load(0x10, 5, 1), None);
        assert_eq!(g.meta[g.idx(1, 0)].rrpv, 1);
    }

    #[test]
    fn averse_line_is_first_victim() {
        let mut g = Glider::new(64, 3);
        g.on_fill(2, 0, &load(1, 1, 2), None);
        g.on_fill(2, 1, &load(2, 2, 2), None);
        let i = g.idx(2, 1);
        g.meta[i].rrpv = HAWKEYE_RRPV_MAX; // force averse
        g.on_fill(2, 2, &load(3, 3, 2), None);
        assert_eq!(g.victim(2, &load(4, 4, 2), &[]), Victim::Way(1));
    }

    #[test]
    fn sampled_tight_reuse_trains_friendly() {
        let mut g = Glider::new(64, 4);
        let pc = 0x999;
        // Set 0 is sampled. Repeated hits to the same block with the same
        // PC: OPTgen says hit, ISVM trains toward friendly.
        for _ in 0..30 {
            g.on_hit(0, 0, &load(pc, 0xAB, 0));
        }
        g.pchr.push(pc);
        let snap = g.snapshot(pc);
        assert!(
            g.bank.predict(snap.table as usize, &snap.feats) > 0,
            "tight reuse should yield positive decision sum"
        );
    }

    #[test]
    fn writeback_fill_is_averse() {
        let mut g = Glider::new(64, 2);
        let wb = AccessInfo { pc: 0, block: 1, set: 0, kind: AccessType::Writeback };
        g.on_fill(0, 1, &wb, None);
        assert_eq!(g.meta[g.idx(0, 1)].rrpv, HAWKEYE_RRPV_MAX);
    }
}
