//! Static dispatch over the built-in policies.
//!
//! A cache level drives its replacement policy on every hit, fill and
//! victim query — the hottest calls in the simulator. Routing them through
//! `Box<dyn ReplacementPolicy>` costs an indirect call (and defeats
//! inlining) per event, which the eviction-heavy benchmark shows directly.
//! [`PolicyDispatch`] wraps every concrete built-in policy in an enum so
//! those calls compile to a jump table whose arms inline the concrete hook
//! bodies, while [`PolicyDispatch::Custom`] keeps the open `Box<dyn>`
//! escape hatch for external policies.
//!
//! # Examples
//!
//! ```
//! use ccsim_policies::{AccessInfo, PolicyDispatch, PolicyKind, Victim};
//!
//! let mut policy = PolicyDispatch::from_kind(PolicyKind::Srrip, 64, 8);
//! let info = AccessInfo::load(0x400, 0xBEEF, 3);
//! policy.on_fill(3, 0, &info, None);
//! assert!(matches!(policy.victim(3, &info, &[]), Victim::Way(_)));
//! assert_eq!(policy.name(), "srrip");
//! ```

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::{
    BitPlru, Brrip, Dip, Drrip, Fifo, Glider, Hawkeye, Lru, Mpppb, PolicyKind, RandomPolicy, Ship,
    Srrip,
};

/// A replacement policy with enum (static) dispatch for every built-in
/// implementation and a boxed escape hatch for external ones.
#[derive(Debug)]
#[non_exhaustive]
pub enum PolicyDispatch {
    /// Least recently used.
    Lru(Lru),
    /// First in, first out.
    Fifo(Fifo),
    /// Uniform random victim.
    Random(RandomPolicy),
    /// Bit-PLRU.
    BitPlru(BitPlru),
    /// Dynamic Insertion Policy.
    Dip(Dip),
    /// Static RRIP.
    Srrip(Srrip),
    /// Bimodal RRIP.
    Brrip(Brrip),
    /// Dynamic RRIP.
    Drrip(Drrip),
    /// SHiP-PC.
    Ship(Ship),
    /// Hawkeye.
    Hawkeye(Hawkeye),
    /// Glider.
    Glider(Glider),
    /// MPPPB.
    Mpppb(Mpppb),
    /// Any external [`ReplacementPolicy`], dynamically dispatched.
    Custom(Box<dyn ReplacementPolicy>),
}

/// Forwards one call to whichever variant is live.
macro_rules! each_policy {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            PolicyDispatch::Lru($p) => $body,
            PolicyDispatch::Fifo($p) => $body,
            PolicyDispatch::Random($p) => $body,
            PolicyDispatch::BitPlru($p) => $body,
            PolicyDispatch::Dip($p) => $body,
            PolicyDispatch::Srrip($p) => $body,
            PolicyDispatch::Brrip($p) => $body,
            PolicyDispatch::Drrip($p) => $body,
            PolicyDispatch::Ship($p) => $body,
            PolicyDispatch::Hawkeye($p) => $body,
            PolicyDispatch::Glider($p) => $body,
            PolicyDispatch::Mpppb($p) => $body,
            PolicyDispatch::Custom($p) => $body,
        }
    };
}

impl PolicyDispatch {
    /// Instantiates the built-in policy `kind` for a `sets x ways` cache
    /// in its statically dispatched variant.
    pub fn from_kind(kind: PolicyKind, sets: u32, ways: u32) -> PolicyDispatch {
        match kind {
            PolicyKind::Lru => PolicyDispatch::Lru(Lru::new(sets, ways)),
            PolicyKind::Fifo => PolicyDispatch::Fifo(Fifo::new(sets, ways)),
            PolicyKind::Random => PolicyDispatch::Random(RandomPolicy::new(sets, ways)),
            PolicyKind::BitPlru => PolicyDispatch::BitPlru(BitPlru::new(sets, ways)),
            PolicyKind::Dip => PolicyDispatch::Dip(Dip::new(sets, ways)),
            PolicyKind::Srrip => PolicyDispatch::Srrip(Srrip::new(sets, ways)),
            PolicyKind::Brrip => PolicyDispatch::Brrip(Brrip::new(sets, ways)),
            PolicyKind::Drrip => PolicyDispatch::Drrip(Drrip::new(sets, ways)),
            PolicyKind::Ship => PolicyDispatch::Ship(Ship::new(sets, ways)),
            PolicyKind::Hawkeye => PolicyDispatch::Hawkeye(Hawkeye::new(sets, ways)),
            PolicyKind::Glider => PolicyDispatch::Glider(Glider::new(sets, ways)),
            PolicyKind::Mpppb => PolicyDispatch::Mpppb(Mpppb::new(sets, ways)),
        }
    }

    /// Short stable identifier of the wrapped policy.
    #[inline]
    pub fn name(&self) -> &'static str {
        each_policy!(self, p => p.name())
    }

    /// Whether victim queries must materialize `lines` (see
    /// [`ReplacementPolicy::inspects_lines`]). Every built-in policy
    /// ranks victims from its own metadata and never reads the slice, so
    /// only the boxed escape hatch can ask for reconstructed views.
    #[inline]
    pub fn inspects_lines(&self) -> bool {
        match self {
            PolicyDispatch::Custom(p) => p.inspects_lines(),
            _ => false,
        }
    }

    /// Chooses a victim way (or a bypass) for `info` in a full `set`.
    #[inline]
    pub fn victim(&mut self, set: u32, info: &AccessInfo, lines: &[LineView]) -> Victim {
        each_policy!(self, p => p.victim(set, info, lines))
    }

    /// Chooses a victim way when bypassing is not permitted.
    #[inline]
    pub fn forced_victim(&mut self, set: u32, info: &AccessInfo, lines: &[LineView]) -> u32 {
        each_policy!(self, p => p.forced_victim(set, info, lines))
    }

    /// Notifies the wrapped policy of a hit.
    #[inline]
    pub fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        each_policy!(self, p => p.on_hit(set, way, info))
    }

    /// Notifies the wrapped policy of a fill.
    #[inline]
    pub fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, evicted: Option<u64>) {
        each_policy!(self, p => p.on_fill(set, way, info, evicted))
    }

    /// One-line diagnostic string from the wrapped policy.
    pub fn diag(&self) -> String {
        each_policy!(self, p => p.diag())
    }
}

/// `PolicyDispatch` is itself a [`ReplacementPolicy`], so it can stand in
/// anywhere the trait object could (including inside another `Custom`).
impl ReplacementPolicy for PolicyDispatch {
    fn name(&self) -> &'static str {
        PolicyDispatch::name(self)
    }

    fn inspects_lines(&self) -> bool {
        PolicyDispatch::inspects_lines(self)
    }

    fn victim(&mut self, set: u32, info: &AccessInfo, lines: &[LineView]) -> Victim {
        PolicyDispatch::victim(self, set, info, lines)
    }

    fn forced_victim(&mut self, set: u32, info: &AccessInfo, lines: &[LineView]) -> u32 {
        PolicyDispatch::forced_victim(self, set, info, lines)
    }

    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        PolicyDispatch::on_hit(self, set, way, info)
    }

    fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, evicted: Option<u64>) {
        PolicyDispatch::on_fill(self, set, way, info, evicted)
    }

    fn diag(&self) -> String {
        PolicyDispatch::diag(self)
    }
}

impl From<Box<dyn ReplacementPolicy>> for PolicyDispatch {
    fn from(policy: Box<dyn ReplacementPolicy>) -> PolicyDispatch {
        PolicyDispatch::Custom(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn info(set: u32) -> AccessInfo {
        AccessInfo { pc: 0x400, block: 0x10, set, kind: AccessType::Load }
    }

    #[test]
    fn every_kind_dispatches_statically() {
        for kind in PolicyKind::ALL {
            let mut p = PolicyDispatch::from_kind(kind, 16, 4);
            assert_eq!(p.name(), kind.name());
            for way in 0..4 {
                p.on_fill(1, way, &info(1), None);
            }
            p.on_hit(1, 0, &info(1));
            match p.victim(1, &info(1), &[]) {
                Victim::Way(w) => assert!(w < 4, "{kind}: way {w}"),
                Victim::Bypass => {}
            }
            let w = p.forced_victim(1, &info(1), &[]);
            assert!(w < 4, "{kind}: forced way {w}");
            let _ = p.diag();
        }
    }

    #[test]
    fn custom_escape_hatch_wraps_trait_objects() {
        let boxed: Box<dyn ReplacementPolicy> = Box::new(Lru::new(8, 2));
        let mut p = PolicyDispatch::from(boxed);
        assert!(matches!(p, PolicyDispatch::Custom(_)));
        assert_eq!(p.name(), "lru");
        p.on_fill(0, 0, &info(0), None);
        p.on_fill(0, 1, &info(0), None);
        p.on_hit(0, 0, &info(0));
        assert_eq!(p.victim(0, &info(0), &[]), Victim::Way(1));
    }

    #[test]
    fn built_ins_skip_line_reconstruction_but_custom_defaults_to_views() {
        for kind in PolicyKind::ALL {
            assert!(!PolicyDispatch::from_kind(kind, 8, 2).inspects_lines(), "{kind}");
        }
        // The boxed escape hatch keeps the conservative trait default:
        // external policies get real views unless they opt out.
        let boxed: Box<dyn ReplacementPolicy> = Box::new(Lru::new(8, 2));
        assert!(PolicyDispatch::from(boxed).inspects_lines());
    }

    #[test]
    fn dispatch_matches_boxed_behaviour() {
        // The enum must be behaviourally identical to the trait object it
        // replaces: drive both with the same deterministic storm.
        use crate::util::SplitMix64;
        for kind in PolicyKind::ALL {
            let mut fast = PolicyDispatch::from_kind(kind, 32, 4);
            let mut boxed = PolicyDispatch::Custom(kind.build(32, 4));
            let mut rng = SplitMix64::new(0xD15_EA5E + kind as u64);
            for _ in 0..5_000 {
                let set = rng.below(32) as u32;
                let block = rng.below(1 << 16);
                let i = AccessInfo {
                    pc: 0x400 + rng.below(32) * 4,
                    block,
                    set,
                    kind: AccessType::Load,
                };
                match rng.below(3) {
                    0 => {
                        let way = rng.below(4) as u32;
                        fast.on_fill(set, way, &i, None);
                        boxed.on_fill(set, way, &i, None);
                    }
                    1 => {
                        let way = rng.below(4) as u32;
                        fast.on_hit(set, way, &i);
                        boxed.on_hit(set, way, &i);
                    }
                    _ => {
                        assert_eq!(fast.victim(set, &i, &[]), boxed.victim(set, &i, &[]), "{kind}");
                    }
                }
            }
            assert_eq!(fast.diag(), boxed.diag(), "{kind}: diverged state");
        }
    }
}
