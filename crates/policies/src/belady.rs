//! Belady's OPT as an offline oracle.
//!
//! OPT (evict the block whose next use is farthest in the future) is the
//! provably optimal replacement policy, but it needs future knowledge, so it
//! cannot be a [`ReplacementPolicy`](crate::ReplacementPolicy) driven online
//! by the simulator. Instead this module replays a *recorded* access stream
//! of `(set, block)` pairs and reports the hit/miss split — the headroom
//! figure every online policy is chasing.

use std::collections::{BTreeSet, HashMap};

/// Result of an OPT replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeladyOutcome {
    /// Accesses OPT serves from the cache.
    pub hits: u64,
    /// Accesses OPT must fetch (cold or capacity).
    pub misses: u64,
}

impl BeladyOutcome {
    /// Hit fraction over the stream (0 for an empty stream).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Replays `stream` (pairs of set index and block address) through a
/// `sets x ways` cache under Belady's OPT and returns the hit/miss counts.
///
/// Blocks are assumed to already map to their set (as recorded by the
/// simulator); accesses to set `s` only compete within set `s`.
///
/// # Panics
///
/// Panics if any set index is `>= sets` or if `sets`/`ways` is zero.
///
/// # Examples
///
/// ```
/// use ccsim_policies::belady::belady_replay;
///
/// // One set, two ways, three blocks cycled twice: OPT keeps two of them.
/// let stream: Vec<(u32, u64)> =
///     vec![(0, 1), (0, 2), (0, 3), (0, 1), (0, 2), (0, 3)];
/// let out = belady_replay(&stream, 1, 2);
/// assert_eq!(out.hits + out.misses, 6);
/// assert!(out.hits >= 1, "opt must beat pure thrashing");
/// ```
pub fn belady_replay(stream: &[(u32, u64)], sets: u32, ways: u32) -> BeladyOutcome {
    assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
    // Partition the stream per set, remembering positions.
    let mut per_set: HashMap<u32, Vec<u64>> = HashMap::new();
    for &(set, block) in stream {
        assert!(set < sets, "set index out of range");
        per_set.entry(set).or_default().push(block);
    }
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (_, blocks) in per_set {
        let (h, m) = belady_one_set(&blocks, ways as usize);
        hits += h;
        misses += m;
    }
    BeladyOutcome { hits, misses }
}

/// OPT over a single set's access sequence.
fn belady_one_set(blocks: &[u64], ways: usize) -> (u64, u64) {
    const NEVER: usize = usize::MAX;
    // next_use[i] = position of the next access to blocks[i], or NEVER.
    let mut next_use = vec![NEVER; blocks.len()];
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    for (i, &b) in blocks.iter().enumerate().rev() {
        if let Some(&p) = last_pos.get(&b) {
            next_use[i] = p;
        }
        last_pos.insert(b, i);
    }
    // Resident blocks ordered by next use (max = best victim).
    let mut resident: HashMap<u64, usize> = HashMap::new(); // block -> next use
    let mut order: BTreeSet<(usize, u64)> = BTreeSet::new(); // (next use, block)
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (i, &b) in blocks.iter().enumerate() {
        let nu = next_use[i];
        if let Some(&cur) = resident.get(&b) {
            hits += 1;
            order.remove(&(cur, b));
        } else {
            misses += 1;
            if resident.len() >= ways {
                // Evict the farthest-future resident block.
                let &(far, victim) = order.iter().next_back().expect("cache full");
                order.remove(&(far, victim));
                resident.remove(&victim);
            }
        }
        resident.insert(b, nu);
        order.insert((nu, b));
    }
    (hits, misses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_set(blocks: &[u64], ways: u32) -> BeladyOutcome {
        let stream: Vec<_> = blocks.iter().map(|&b| (0u32, b)).collect();
        belady_replay(&stream, 1, ways)
    }

    #[test]
    fn classic_belady_example() {
        // The textbook FIFO-vs-OPT page string, 3 frames:
        // 7 0 1 2 0 3 0 4 2 3 0 3 2 -> OPT has 7 faults.
        let s = [7u64, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2];
        let out = one_set(&s, 3);
        assert_eq!(out.misses, 7);
        assert_eq!(out.hits, 6);
    }

    #[test]
    fn cyclic_thrash_gets_partial_hits() {
        // 3 blocks, 2 ways, cycled: LRU would hit 0 times; OPT keeps one
        // block stable and hits on it.
        let s = [1u64, 2, 3, 1, 2, 3, 1, 2, 3];
        let out = one_set(&s, 2);
        assert!(out.hits > 0);
        assert!(out.hit_rate() > 0.2);
    }

    #[test]
    fn fits_entirely_when_capacity_sufficient() {
        let s = [1u64, 2, 1, 2, 1, 2];
        let out = one_set(&s, 2);
        assert_eq!(out.misses, 2); // cold only
        assert_eq!(out.hits, 4);
    }

    #[test]
    fn sets_do_not_interfere() {
        let stream = vec![(0u32, 1u64), (1, 1), (0, 1), (1, 1)];
        let out = belady_replay(&stream, 2, 1);
        assert_eq!(out.hits, 2);
        assert_eq!(out.misses, 2);
    }

    #[test]
    fn empty_stream() {
        let out = belady_replay(&[], 4, 4);
        assert_eq!(out, BeladyOutcome { hits: 0, misses: 0 });
        assert_eq!(out.hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "set index out of range")]
    fn bad_set_index_rejected() {
        let _ = belady_replay(&[(9, 1)], 4, 4);
    }
}
