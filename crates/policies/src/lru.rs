//! The LRU baseline: true least-recently-used replacement.

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};

/// True LRU via monotone timestamps: every touch stamps the line with a
/// global counter; the victim is the smallest stamp in the set.
///
/// This is the paper's baseline policy. Writeback hits refresh recency just
/// like demand hits, matching ChampSim's base LRU.
#[derive(Debug)]
pub struct Lru {
    ways: u32,
    stamp: u64,
    stamps: Vec<u64>,
}

impl Lru {
    /// Creates LRU state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Lru { ways, stamp: 0, stamps: vec![0; (sets * ways) as usize] }
    }

    #[inline]
    fn idx(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    #[inline]
    fn touch(&mut self, set: u32, way: u32) {
        self.stamp += 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.stamp;
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        let base = self.idx(set, 0);
        let slice = &self.stamps[base..base + self.ways as usize];
        let (way, _) = slice.iter().enumerate().min_by_key(|&(_, &s)| s).expect("ways > 0");
        Victim::Way(way as u32)
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, _info: &AccessInfo) {
        self.touch(set, way);
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, _info: &AccessInfo, _evicted: Option<u64>) {
        self.touch(set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn info(set: u32) -> AccessInfo {
        AccessInfo { pc: 0x400, block: 0xAB, set, kind: AccessType::Load }
    }

    fn full_set(ways: usize) -> Vec<LineView> {
        (0..ways).map(|w| LineView { valid: true, block: w as u64, dirty: false }).collect()
    }

    #[test]
    fn victim_is_least_recently_touched() {
        let mut p = Lru::new(4, 4);
        for w in 0..4 {
            p.on_fill(1, w, &info(1), None);
        }
        p.on_hit(1, 0, &info(1)); // way 0 becomes MRU; way 1 is now LRU
        assert_eq!(p.victim(1, &info(1), &full_set(4)), Victim::Way(1));
    }

    #[test]
    fn stack_property_sequence() {
        // Fill 0,1,2,3 then hit 2: eviction order must be 0,1,3,2.
        let mut p = Lru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &info(0), None);
        }
        p.on_hit(0, 2, &info(0));
        let mut order = Vec::new();
        for _ in 0..4 {
            let Victim::Way(v) = p.victim(0, &info(0), &full_set(4)) else {
                panic!("lru never bypasses")
            };
            order.push(v);
            p.on_fill(0, v, &info(0), Some(0)); // refill makes it MRU
        }
        assert_eq!(order, vec![0, 1, 3, 2]);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = Lru::new(2, 2);
        p.on_fill(0, 0, &info(0), None);
        p.on_fill(0, 1, &info(0), None);
        p.on_fill(1, 1, &info(1), None);
        p.on_fill(1, 0, &info(1), None);
        assert_eq!(p.victim(0, &info(0), &full_set(2)), Victim::Way(0));
        assert_eq!(p.victim(1, &info(1), &full_set(2)), Victim::Way(1));
    }

    #[test]
    #[should_panic(expected = "cache geometry must be non-zero")]
    fn zero_ways_rejected() {
        let _ = Lru::new(4, 0);
    }
}
