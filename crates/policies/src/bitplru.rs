//! Bit-PLRU (MRU-bit) replacement, a common hardware LRU approximation.

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};

/// Bit-PLRU: each line carries an MRU bit, set on every touch. The victim is
/// the first line whose bit is clear; when setting the last clear bit would
/// leave none, all other bits are cleared instead (starting a new
/// generation). Works for any associativity, unlike tree-PLRU.
#[derive(Debug)]
pub struct BitPlru {
    ways: u32,
    mru: Vec<bool>,
}

impl BitPlru {
    /// Creates bit-PLRU state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        BitPlru { ways, mru: vec![false; (sets * ways) as usize] }
    }

    fn touch(&mut self, set: u32, way: u32) {
        let base = (set * self.ways) as usize;
        let n = self.ways as usize;
        self.mru[base + way as usize] = true;
        if self.mru[base..base + n].iter().all(|&b| b) {
            for (i, b) in self.mru[base..base + n].iter_mut().enumerate() {
                *b = i == way as usize;
            }
        }
    }
}

impl ReplacementPolicy for BitPlru {
    fn name(&self) -> &'static str {
        "bitplru"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        let base = (set * self.ways) as usize;
        let n = self.ways as usize;
        let way = self.mru[base..base + n].iter().position(|&b| !b).unwrap_or(0);
        Victim::Way(way as u32)
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, _info: &AccessInfo) {
        self.touch(set, way);
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, _info: &AccessInfo, _evicted: Option<u64>) {
        self.touch(set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn info() -> AccessInfo {
        AccessInfo { pc: 0, block: 0, set: 0, kind: AccessType::Load }
    }

    #[test]
    fn victim_is_first_non_mru() {
        let mut p = BitPlru::new(1, 4);
        p.on_fill(0, 0, &info(), None);
        p.on_fill(0, 1, &info(), None);
        assert_eq!(p.victim(0, &info(), &[]), Victim::Way(2));
    }

    #[test]
    fn generation_reset_keeps_last_touch() {
        let mut p = BitPlru::new(1, 3);
        p.on_fill(0, 0, &info(), None);
        p.on_fill(0, 1, &info(), None);
        p.on_fill(0, 2, &info(), None); // reset: only way 2 MRU
        assert_eq!(p.victim(0, &info(), &[]), Victim::Way(0));
        p.on_hit(0, 0, &info());
        assert_eq!(p.victim(0, &info(), &[]), Victim::Way(1));
    }

    #[test]
    fn recently_touched_line_protected() {
        let mut p = BitPlru::new(1, 4);
        for w in 0..3 {
            p.on_fill(0, w, &info(), None);
        }
        let Victim::Way(v) = p.victim(0, &info(), &[]) else { unreachable!() };
        assert_eq!(v, 3);
        p.on_fill(0, 3, &info(), None); // triggers generation reset
        let Victim::Way(v2) = p.victim(0, &info(), &[]) else { unreachable!() };
        assert_ne!(v2, 3, "just-filled line must not be the next victim");
    }
}
