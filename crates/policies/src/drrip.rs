//! Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion
//! (Jaleel et al., ISCA 2010).

use crate::policy::{AccessInfo, LineView, ReplacementPolicy, Victim};
use crate::rrip::{RrpvTable, BRRIP_EPSILON, RRPV_BITS, RRPV_LONG, RRPV_MAX};
use crate::util::{SatCounter, SplitMix64};

/// Distance between leader sets: one SRRIP leader and one BRRIP leader per
/// 64-set region (32 + 32 leaders for a 2048-set LLC, as in the paper).
const LEADER_PERIOD: u32 = 64;
/// Offset of the BRRIP leader within each region.
const BRRIP_LEADER_OFFSET: u32 = 33;
/// PSEL width (10 bits, values 0..=1023, per the DRRIP paper).
const PSEL_BITS: u32 = 10;

/// Which dueling pool a set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    LeaderSrrip,
    LeaderBrrip,
    Follower,
}

/// DRRIP: dedicated SRRIP and BRRIP leader sets vote through a PSEL
/// saturating counter; follower sets adopt the winning insertion policy.
///
/// Misses in SRRIP leaders increment PSEL, misses in BRRIP leaders decrement
/// it; followers use BRRIP insertion when PSEL's MSB is set (SRRIP is
/// missing more) and SRRIP insertion otherwise.
#[derive(Debug)]
pub struct Drrip {
    table: RrpvTable,
    psel: SatCounter,
    rng: SplitMix64,
    srrip_leader_misses: u64,
    brrip_leader_misses: u64,
}

impl Drrip {
    /// Creates DRRIP state for a `sets x ways` cache.
    pub fn new(sets: u32, ways: u32) -> Self {
        Drrip {
            table: RrpvTable::new(sets, ways, RRPV_BITS),
            // PSEL starts at zero: followers begin with SRRIP insertion and
            // only switch to BRRIP once SRRIP leaders accumulate more misses.
            psel: SatCounter::new(PSEL_BITS, 0),
            rng: SplitMix64::new(0xD441),
            srrip_leader_misses: 0,
            brrip_leader_misses: 0,
        }
    }

    fn role(set: u32) -> SetRole {
        match set % LEADER_PERIOD {
            0 => SetRole::LeaderSrrip,
            BRRIP_LEADER_OFFSET => SetRole::LeaderBrrip,
            _ => SetRole::Follower,
        }
    }

    /// `true` if followers should currently use BRRIP insertion.
    fn brrip_winning(&self) -> bool {
        self.psel.msb()
    }

    fn insertion(&mut self, set: u32) -> u8 {
        let use_brrip = match Self::role(set) {
            SetRole::LeaderSrrip => false,
            SetRole::LeaderBrrip => true,
            SetRole::Follower => self.brrip_winning(),
        };
        if use_brrip {
            if self.rng.one_in(BRRIP_EPSILON) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn name(&self) -> &'static str {
        "drrip"
    }

    #[inline]
    fn victim(&mut self, set: u32, _info: &AccessInfo, _lines: &[LineView]) -> Victim {
        Victim::Way(self.table.find_victim(set))
    }

    #[inline]
    fn on_hit(&mut self, set: u32, way: u32, info: &AccessInfo) {
        if info.kind.is_demand() {
            self.table.set(set, way, 0);
        }
    }

    #[inline]
    fn on_fill(&mut self, set: u32, way: u32, info: &AccessInfo, _evicted: Option<u64>) {
        // A fill is a miss: leaders vote. Writeback fills don't vote (they
        // say nothing about demand locality).
        if info.kind.is_demand() {
            match Self::role(set) {
                SetRole::LeaderSrrip => {
                    self.psel.inc();
                    self.srrip_leader_misses += 1;
                }
                SetRole::LeaderBrrip => {
                    self.psel.dec();
                    self.brrip_leader_misses += 1;
                }
                SetRole::Follower => {}
            }
        }
        let v = self.insertion(set);
        self.table.set(set, way, v);
    }

    fn diag(&self) -> String {
        format!(
            "psel={} ({}) leader_misses: srrip={} brrip={}",
            self.psel.get(),
            if self.brrip_winning() { "brrip" } else { "srrip" },
            self.srrip_leader_misses,
            self.brrip_leader_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AccessType;

    fn load(set: u32) -> AccessInfo {
        AccessInfo { pc: 3, block: 5, set, kind: AccessType::Load }
    }

    #[test]
    fn leader_set_mapping() {
        assert_eq!(Drrip::role(0), SetRole::LeaderSrrip);
        assert_eq!(Drrip::role(64), SetRole::LeaderSrrip);
        assert_eq!(Drrip::role(33), SetRole::LeaderBrrip);
        assert_eq!(Drrip::role(97), SetRole::LeaderBrrip);
        assert_eq!(Drrip::role(1), SetRole::Follower);
    }

    #[test]
    fn psel_moves_toward_brrip_when_srrip_leaders_miss() {
        let mut p = Drrip::new(128, 4);
        assert!(!p.brrip_winning());
        // Many misses in the SRRIP leader set 0.
        for _ in 0..(1 << PSEL_BITS) {
            p.on_fill(0, 0, &load(0), None);
        }
        assert!(p.brrip_winning());
        // Followers now insert distant almost always.
        let mut distant = 0;
        for _ in 0..100 {
            p.on_fill(1, 0, &load(1), None);
            if p.table.get(1, 0) == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant > 80, "followers not using brrip: {distant}/100");
    }

    #[test]
    fn followers_default_to_srrip_insertion() {
        let mut p = Drrip::new(128, 4);
        p.on_fill(1, 2, &load(1), None);
        assert_eq!(p.table.get(1, 2), RRPV_LONG);
    }

    #[test]
    fn brrip_leader_misses_pull_back_to_srrip() {
        let mut p = Drrip::new(128, 4);
        for _ in 0..600 {
            p.on_fill(0, 0, &load(0), None); // srrip leader misses
        }
        assert!(p.brrip_winning());
        for _ in 0..400 {
            p.on_fill(33, 0, &load(33), None); // brrip leader misses
        }
        assert!(!p.brrip_winning());
    }

    #[test]
    fn diag_mentions_current_winner() {
        let p = Drrip::new(128, 4);
        assert!(p.diag().contains("srrip"));
    }
}
