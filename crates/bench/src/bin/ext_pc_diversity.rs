//! Extension C: PC-diversity characterization — distinct memory PCs and
//! blocks-per-PC for every suite. This is the paper's §I-D causal
//! argument made quantitative: graph kernels (and XSBench) concentrate
//! their footprint on a handful of PCs, which starves PC-indexed
//! predictors of signal; SPEC/Qualcomm spread it over many.
//!
//! Run with `cargo run --release -p ccsim-bench --bin ext_pc_diversity`.

use ccsim_bench::Options;
use ccsim_core::experiment::{report::fmt_f, Table};
use ccsim_trace::stats::TraceStats;
use ccsim_workloads::Suite;

fn main() {
    let opts = Options::from_args();
    let mut table = Table::new(vec![
        "suite".into(),
        "workload".into(),
        "distinct_pcs".into(),
        "mean_blocks_per_pc".into(),
        "max_blocks_per_pc".into(),
        "footprint_mb".into(),
    ]);
    for suite in Suite::ALL {
        let mut suite_pcs = Vec::new();
        suite.for_each_trace(opts.suite_scale(), |t| {
            let s = TraceStats::compute(&t);
            suite_pcs.push(s.distinct_pcs);
            table.row(vec![
                suite.name().into(),
                t.name().into(),
                s.distinct_pcs.to_string(),
                fmt_f(s.mean_blocks_per_pc, 1),
                s.max_blocks_per_pc.to_string(),
                fmt_f(s.footprint_bytes as f64 / (1 << 20) as f64, 2),
            ]);
            eprintln!("{}: {} pcs={}", suite.name(), t.name(), s.distinct_pcs);
        });
        let mean = suite_pcs.iter().sum::<u64>() as f64 / suite_pcs.len().max(1) as f64;
        table.row(vec![
            suite.name().into(),
            "(suite mean)".into(),
            fmt_f(mean, 1),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    println!("\nExtension C: PC diversity per suite\n");
    println!("{}", table.render());
    println!("\nCSV:\n{}", table.to_csv());
}
