//! Extension F: substitution validation — as the synthetic graphs grow
//! toward the paper's input sizes, the MPKI profile converges to the
//! published regime (L1D ~ L2C ~ LLC, most L1D misses served by DRAM).
//!
//! Our default experiments run scaled-down graphs for simulation-time
//! reasons; this experiment demonstrates the scaling trend that justifies
//! the substitution: each doubling of the vertex count pushes the L2C and
//! LLC MPKI toward the L1D MPKI and raises the DRAM-reach fraction toward
//! the paper's 78.6 %.
//!
//! Run with `cargo run --release -p ccsim-bench --bin ext_scaling`
//! (`--quick` caps the sweep at scale 16).

use ccsim_bench::Options;
use ccsim_core::experiment::{report::fmt_f, Table};
use ccsim_core::{simulate, SimConfig};
use ccsim_graph::{generators, traced};
use ccsim_policies::PolicyKind;

fn main() {
    let opts = Options::from_args();
    let config = SimConfig::cascade_lake();
    let max_scale = if opts.quick { 16 } else { 20 };
    let mut table = Table::new(vec![
        "scale".into(),
        "vertices".into(),
        "L1D".into(),
        "L2C".into(),
        "LLC".into(),
        "dram_reach_%".into(),
        "ipc".into(),
    ]);
    for scale in (12..=max_scale).step_by(2) {
        // Uniform random graph at degree 4: footprint doubles per step at
        // near-constant trace length per vertex.
        let g = generators::uniform(scale, 4, 7);
        let (trace, _) = traced::bfs(&g, 0);
        let r = simulate(&trace, &config, PolicyKind::Lru);
        eprintln!(
            "scale {scale}: {} records, reach {:.1}%",
            trace.len(),
            100.0 * r.dram_reach_fraction()
        );
        table.row(vec![
            scale.to_string(),
            (1u64 << scale).to_string(),
            fmt_f(r.mpki_l1d(), 1),
            fmt_f(r.mpki_l2(), 1),
            fmt_f(r.mpki_llc(), 1),
            fmt_f(100.0 * r.dram_reach_fraction(), 1),
            fmt_f(r.ipc(), 3),
        ]);
    }
    println!("\nExtension F: MPKI convergence with graph scale (bfs.urand, LRU)\n");
    println!("{}", table.render());
    println!(
        "Paper regime (full-size inputs): L1D 53.2 ~ L2C 44.2 ~ LLC 41.8, \
         reach 78.6%."
    );
    println!("\nCSV:\n{}", table.to_csv());
}
