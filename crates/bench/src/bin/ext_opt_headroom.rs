//! Extension D: Belady headroom — replays each workload's recorded LLC
//! demand stream through the offline OPT oracle and compares its hit rate
//! against LRU and the best online policy. Shows how much of the
//! (small) OPT-LRU gap the learned policies actually capture on graphs.
//!
//! Run with `cargo run --release -p ccsim-bench --bin ext_opt_headroom`.

use ccsim_bench::Options;
use ccsim_core::experiment::{report::fmt_f, Table};
use ccsim_core::{simulate, simulate_with_llc_log, SimConfig};
use ccsim_policies::{belady::belady_replay, PolicyKind};
use ccsim_workloads::{GapGraph, GapKernel, GapWorkload};

fn main() {
    let opts = Options::from_args();
    let config = SimConfig::cascade_lake();
    let workloads = [
        GapWorkload { kernel: GapKernel::Bfs, graph: GapGraph::Kron },
        GapWorkload { kernel: GapKernel::Bfs, graph: GapGraph::Road },
        GapWorkload { kernel: GapKernel::Pr, graph: GapGraph::Urand },
        GapWorkload { kernel: GapKernel::Cc, graph: GapGraph::Twitter },
        GapWorkload { kernel: GapKernel::Sssp, graph: GapGraph::Web },
        GapWorkload { kernel: GapKernel::Bc, graph: GapGraph::Friendster },
    ];
    let mut table = Table::new(vec![
        "workload".into(),
        "lru_hit_%".into(),
        "hawkeye_hit_%".into(),
        "ship_hit_%".into(),
        "opt_hit_%".into(),
        "headroom_pts".into(),
        "captured_by_hawkeye_%".into(),
    ]);
    for w in workloads {
        let trace = w.trace(opts.gap_scale());
        // The LLC demand stream is policy-independent (L1/L2 are fixed
        // LRU), so one logging run serves the oracle.
        let (lru, log) = simulate_with_llc_log(&trace, &config, PolicyKind::Lru);
        let hawkeye = simulate(&trace, &config, PolicyKind::Hawkeye);
        let ship = simulate(&trace, &config, PolicyKind::Ship);
        let opt = belady_replay(&log, config.llc.sets, config.llc.ways);
        let lru_hr = lru.llc.hit_rate();
        let hk_hr = hawkeye.llc.hit_rate();
        let ship_hr = ship.llc.hit_rate();
        let opt_hr = opt.hit_rate();
        let headroom = opt_hr - lru_hr;
        let captured =
            if headroom.abs() < 1e-9 { 0.0 } else { 100.0 * (hk_hr - lru_hr) / headroom };
        eprintln!(
            "{w}: lru {:.3} hawkeye {:.3} ship {:.3} opt {:.3}",
            lru_hr, hk_hr, ship_hr, opt_hr
        );
        table.row(vec![
            w.to_string(),
            fmt_f(100.0 * lru_hr, 1),
            fmt_f(100.0 * hk_hr, 1),
            fmt_f(100.0 * ship_hr, 1),
            fmt_f(100.0 * opt_hr, 1),
            fmt_f(100.0 * headroom, 1),
            fmt_f(captured, 1),
        ]);
    }
    println!("\nExtension D: OPT headroom at the LLC (GAP workloads)\n");
    println!("{}", table.render());
    println!("\nCSV:\n{}", table.to_csv());
}
