//! Extension A: LLC MPKI per policy on the GAP suite — shows how little
//! any policy dents graph-workload miss rates (the quantitative core of
//! the paper's conclusion).
//!
//! Run with `cargo run --release -p ccsim-bench --bin ext_policy_mpki`.

use ccsim_bench::{lru_plus_paper_policies, Options};
use ccsim_core::experiment::{report::fmt_f, Table};
use ccsim_core::SimConfig;
use ccsim_workloads::paper_workloads;

fn main() {
    let opts = Options::from_args();
    let config = SimConfig::cascade_lake();
    let policies = lru_plus_paper_policies();
    let mut table = Table::new(
        std::iter::once("workload".to_owned())
            .chain(policies.iter().map(|p| p.name().to_owned()))
            .collect(),
    );
    let mut sums = vec![0.0f64; policies.len()];
    let workloads = paper_workloads();
    let n = workloads.len();
    for (i, w) in workloads.into_iter().enumerate() {
        let trace = w.trace(opts.gap_scale());
        let results = ccsim_bench::run_policies(&trace, &policies, &config, opts.threads);
        eprintln!("[{}/{}] {}", i + 1, n, w);
        let mut row = vec![w.to_string()];
        for (k, r) in results.iter().enumerate() {
            sums[k] += r.mpki_llc();
            row.push(fmt_f(r.mpki_llc(), 2));
        }
        table.row(row);
    }
    let mut mean = vec!["mean".to_owned()];
    for s in &sums {
        mean.push(fmt_f(s / n as f64, 2));
    }
    table.row(mean);
    println!("\nExtension A: LLC MPKI per policy on GAP\n");
    println!("{}", table.render());
    println!("\nCSV:\n{}", table.to_csv());
}
