//! Figure 3: geometric-mean speed-up (%) over LRU of the six
//! state-of-the-art LLC replacement policies, per benchmark suite.
//!
//! A thin wrapper over the `fig3` campaign preset (`ccsim-campaign`);
//! the same grid is checked in as `campaigns/fig3_quick.json` for
//! `ccsim campaign`.
//!
//! Run with `cargo run --release -p ccsim-bench --bin fig3` (add `--quick`
//! for a fast smoke run).

use ccsim_bench::Options;
use ccsim_campaign::{presets, Campaign};

fn main() {
    let opts = Options::from_args();
    let spec = presets::fig3_spec(opts.suite_scale());
    let outcome = Campaign::new(spec)
        .threads(opts.threads)
        .verbose(true)
        .run()
        .unwrap_or_else(|e| panic!("fig3 campaign failed: {e}"));
    let table = outcome.report.speedup_by_suite_table("llc_x1");
    println!("\nFigure 3: geomean speed-up (%) over LRU per suite\n");
    println!("{}", table.render());
    println!(
        "Paper shape: all policies positive on SPEC; Hawkeye/Glider/MPPPB \
         fail to generalize to GAPBS (near-zero or negative) while \
         SRRIP/DRRIP/SHiP stay modestly positive."
    );
    println!("\nCSV:\n{}", table.to_csv());
}
