//! Figure 3: geometric-mean speed-up (%) over LRU of the six
//! state-of-the-art LLC replacement policies, per benchmark suite.
//!
//! Run with `cargo run --release -p ccsim-bench --bin fig3` (add `--quick`
//! for a fast smoke run).

use ccsim_bench::{lru_plus_paper_policies, Options};
use ccsim_core::experiment::{report::fmt_f, Table};
use ccsim_core::{geomean_speedup_percent, SimConfig};
use ccsim_workloads::Suite;

fn main() {
    let opts = Options::from_args();
    let config = SimConfig::cascade_lake();
    let policies = lru_plus_paper_policies();
    let mut table = Table::new(
        std::iter::once("suite".to_owned())
            .chain(policies[1..].iter().map(|p| p.name().to_owned()))
            .collect(),
    );
    for suite in Suite::ALL {
        // ratios[p] collects per-workload IPC ratios for policy p.
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); policies.len() - 1];
        let n = suite.len(opts.suite_scale());
        let mut i = 0;
        suite.for_each_trace(opts.suite_scale(), |trace| {
            let results = ccsim_bench::run_policies(&trace, &policies, &config, opts.threads);
            let base_ipc = results[0].ipc();
            i += 1;
            eprint!("[{}] {}/{} {:<16} lru_ipc={:.3}", suite.name(), i, n, trace.name(), base_ipc);
            for (p, r) in results[1..].iter().enumerate() {
                let ratio = r.ipc() / base_ipc;
                ratios[p].push(ratio);
                eprint!(" {}={:+.2}%", r.policy, (ratio - 1.0) * 100.0);
            }
            eprintln!();
        });
        let mut row = vec![suite.name().to_owned()];
        for r in &ratios {
            row.push(fmt_f(geomean_speedup_percent(r), 2));
        }
        table.row(row);
    }
    println!("\nFigure 3: geomean speed-up (%) over LRU per suite\n");
    println!("{}", table.render());
    println!(
        "Paper shape: all policies positive on SPEC; Hawkeye/Glider/MPPPB \
         fail to generalize to GAPBS (near-zero or negative) while \
         SRRIP/DRRIP/SHiP stay modestly positive."
    );
    println!("\nCSV:\n{}", table.to_csv());
}
