//! Figure 2: MPKI at L1D / L2C / LLC for every GAP workload under the
//! baseline LRU policy, plus the paper's in-text headline numbers
//! (mean MPKI per level; fraction of L1D misses served by DRAM).
//!
//! A thin wrapper over the `fig2` campaign preset (`ccsim-campaign`).
//!
//! Run with `cargo run --release -p ccsim-bench --bin fig2` (add `--quick`
//! for a fast smoke run).

use ccsim_bench::Options;
use ccsim_campaign::{presets, Campaign};

fn main() {
    let opts = Options::from_args();
    let spec = presets::fig2_spec(opts.suite_scale());
    let outcome = Campaign::new(spec)
        .threads(opts.threads)
        .verbose(true)
        .run()
        .unwrap_or_else(|e| panic!("fig2 campaign failed: {e}"));
    let table = outcome.report.mpki_table("llc_x1");
    println!("\nFigure 2: GAP MPKI by cache level (LRU baseline)\n");
    println!("{}", table.render());
    println!(
        "Paper reference: mean MPKI L1D 53.2 / L2C 44.2 / LLC 41.8; \
         78.6% of L1D misses reach DRAM."
    );
    println!("\nCSV:\n{}", table.to_csv());
}
