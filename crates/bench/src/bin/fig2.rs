//! Figure 2: MPKI at L1D / L2C / LLC for every GAP workload under the
//! baseline LRU policy, plus the paper's in-text headline numbers
//! (mean MPKI per level; fraction of L1D misses served by DRAM).
//!
//! Run with `cargo run --release -p ccsim-bench --bin fig2` (add `--quick`
//! for a fast smoke run).

use ccsim_bench::Options;
use ccsim_core::experiment::{report::fmt_f, Table};
use ccsim_core::{simulate, SimConfig};
use ccsim_policies::PolicyKind;
use ccsim_workloads::paper_workloads;

fn main() {
    let opts = Options::from_args();
    let config = SimConfig::cascade_lake();
    let mut table = Table::new(vec![
        "workload".into(),
        "L1D".into(),
        "L2C".into(),
        "LLC".into(),
        "dram_reach_%".into(),
        "ipc".into(),
    ]);
    let mut sums = [0.0f64; 3];
    let mut reach_num = 0u64;
    let mut reach_den = 0u64;
    let workloads = paper_workloads();
    let n = workloads.len();
    for (i, w) in workloads.into_iter().enumerate() {
        let trace = w.trace(opts.gap_scale());
        let r = simulate(&trace, &config, PolicyKind::Lru);
        eprintln!(
            "[{}/{}] {:<16} {} records, {} instructions",
            i + 1,
            n,
            w.to_string(),
            trace.len(),
            r.instructions
        );
        sums[0] += r.mpki_l1d();
        sums[1] += r.mpki_l2();
        sums[2] += r.mpki_llc();
        reach_num += r.llc.demand_misses;
        reach_den += r.l1d.demand_misses;
        table.row(vec![
            w.to_string(),
            fmt_f(r.mpki_l1d(), 1),
            fmt_f(r.mpki_l2(), 1),
            fmt_f(r.mpki_llc(), 1),
            fmt_f(100.0 * r.dram_reach_fraction(), 1),
            fmt_f(r.ipc(), 3),
        ]);
    }
    let k = n as f64;
    table.row(vec![
        "mean".into(),
        fmt_f(sums[0] / k, 1),
        fmt_f(sums[1] / k, 1),
        fmt_f(sums[2] / k, 1),
        fmt_f(100.0 * reach_num as f64 / reach_den.max(1) as f64, 1),
        String::new(),
    ]);
    println!("\nFigure 2: GAP MPKI by cache level (LRU baseline)\n");
    println!("{}", table.render());
    println!(
        "Paper reference: mean MPKI L1D 53.2 / L2C 44.2 / LLC 41.8; \
         78.6% of L1D misses reach DRAM."
    );
    println!("\nCSV:\n{}", table.to_csv());
}
