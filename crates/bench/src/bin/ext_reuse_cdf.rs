//! Extension E: reuse-distance CDFs — per suite, the fraction of accesses
//! a fully-associative LRU cache of a given block capacity would hit. The
//! vertical lines to read off are L1D (512 blocks), L2 (16 384) and LLC
//! (22 528 ~ 2^14.5): graph suites stay flat far past the LLC, SPEC rises
//! early.
//!
//! Run with `cargo run --release -p ccsim-bench --bin ext_reuse_cdf`.

use ccsim_bench::Options;
use ccsim_core::experiment::{report::fmt_f, Table};
use ccsim_trace::stats::ReuseProfile;
use ccsim_workloads::{GapGraph, GapKernel, GapWorkload, Suite};

/// Capacities (in 64 B blocks) at which the CDF is reported; chosen to
/// bracket L1D (512), L2 (16K) and the LLC (22K).
const CAPS: [u64; 8] = [64, 512, 2048, 8192, 16384, 32768, 262144, 1 << 21];

fn main() {
    let opts = Options::from_args();
    let mut table = Table::new(
        std::iter::once("workload".to_owned())
            .chain(CAPS.iter().map(|c| format!("<{c}")))
            .chain(std::iter::once("cold_%".to_owned()))
            .collect(),
    );
    // One representative per suite plus contrasting GAP entries.
    let mut entries: Vec<(String, ccsim_trace::Trace)> = Vec::new();
    for suite in [Suite::Spec, Suite::XsBench, Suite::Qualcomm] {
        let mut traces = suite.traces(opts.suite_scale());
        traces.truncate(2);
        for t in traces {
            entries.push((format!("{}:{}", suite.name(), t.name()), t));
        }
    }
    for w in [
        GapWorkload { kernel: GapKernel::Bfs, graph: GapGraph::Kron },
        GapWorkload { kernel: GapKernel::Pr, graph: GapGraph::Twitter },
        GapWorkload { kernel: GapKernel::Bfs, graph: GapGraph::Road },
    ] {
        entries.push((format!("GAPBS:{w}"), w.trace(opts.gap_scale())));
    }
    for (name, trace) in entries {
        let p = ReuseProfile::compute(&trace);
        let mut row = vec![name.clone()];
        for c in CAPS {
            row.push(fmt_f(100.0 * p.hit_fraction_within(c), 1));
        }
        row.push(fmt_f(100.0 * p.cold() as f64 / p.total().max(1) as f64, 1));
        table.row(row);
        eprintln!("{name}: profiled {} accesses", p.total());
    }
    println!("\nExtension E: reuse-distance CDF (% of accesses within capacity)\n");
    println!("{}", table.render());
    println!("\nCSV:\n{}", table.to_csv());
}
