//! Extension B: LLC capacity sensitivity — GAP MPKI under LRU as the LLC
//! scales from the paper's 1.375 MB up to 11 MB (x1, x2, x4, x8 sets).
//! Demonstrates that graph working sets defeat any realistic LLC size.
//!
//! Run with `cargo run --release -p ccsim-bench --bin ext_llc_sweep`.

use ccsim_bench::Options;
use ccsim_core::experiment::{report::fmt_f, Table};
use ccsim_core::{simulate, SimConfig};
use ccsim_policies::PolicyKind;
use ccsim_workloads::{GapGraph, GapKernel, GapWorkload};

fn main() {
    let opts = Options::from_args();
    let factors = [1u32, 2, 4, 8];
    let workloads = [
        GapWorkload { kernel: GapKernel::Bfs, graph: GapGraph::Kron },
        GapWorkload { kernel: GapKernel::Bfs, graph: GapGraph::Urand },
        GapWorkload { kernel: GapKernel::Pr, graph: GapGraph::Twitter },
        GapWorkload { kernel: GapKernel::Sssp, graph: GapGraph::Road },
        GapWorkload { kernel: GapKernel::Cc, graph: GapGraph::Web },
    ];
    let mut table = Table::new(
        std::iter::once("workload".to_owned())
            .chain(factors.iter().map(|f| format!("{:.3}MB", 1.375 * *f as f64)))
            .collect(),
    );
    for w in workloads {
        let trace = w.trace(opts.gap_scale());
        let mut row = vec![w.to_string()];
        for f in factors {
            let config = SimConfig::cascade_lake().with_llc_scale(f);
            let r = simulate(&trace, &config, PolicyKind::Lru);
            row.push(fmt_f(r.mpki_llc(), 2));
            eprintln!("{w} x{f}: llc mpki {:.2} ipc {:.3}", r.mpki_llc(), r.ipc());
        }
        table.row(row);
    }
    println!("\nExtension B: LLC MPKI vs capacity (LRU)\n");
    println!("{}", table.render());
    println!("\nCSV:\n{}", table.to_csv());
}
