//! Simulator throughput benchmarking (`ccsim bench`).
//!
//! The paper's characterization replays billions of memory accesses per
//! (workload × policy × LLC-size) cell, so *simulator* records-per-second —
//! not simulated IPC — is the binding constraint on campaign scale. This
//! module measures it over a small matrix of synthetic patterns chosen to
//! stress the distinct cost regimes of the hot path:
//!
//! * `llc_thrash` — a sequential sweep over twice the LLC capacity: every
//!   access misses at every level and every fill finds a full set, so the
//!   victim-selection path (the allocation/dispatch hot spot) runs at every
//!   level on every record. This is the *eviction-heavy microbench* that
//!   perf-regression gates compare against `BENCH_seed.json`.
//! * `random_churn` — uniform random access over twice the LLC capacity:
//!   the same miss behaviour with set-index and DRAM-row entropy.
//! * `l1_hot` — a loop over an L1-resident buffer: the pure hit path
//!   (lookup + policy promotion, no victim queries).
//!
//! Alongside the end-to-end matrix, [`run_probe_scan`] times the LLC
//! tag-array scan in isolation (resident vs absent probes over a full
//! cascade-lake LLC) so tag-store changes show up undiluted by the
//! rest of the hierarchy.
//!
//! Each (pattern × policy) cell runs `warmup` untimed repetitions followed
//! by `reps` timed ones; the best and median records/sec are reported (the
//! best approximates the noise floor, the median guards against a lucky
//! outlier). Results serialize to a pinned JSON schema
//! ([`BENCH_SCHEMA_VERSION`], fixture `tests/fixtures/bench_v1.json`) so CI
//! dashboards can consume them alongside campaign reports.

use std::time::Instant;

use ccsim_campaign::Json;
use ccsim_core::{simulate, Cache, SimConfig};
use ccsim_policies::{AccessInfo, AccessType, PolicyKind};
use ccsim_trace::synth::{PatternGen, RandomAccess, SequentialStream};
use ccsim_trace::{Trace, TraceBuffer};

use crate::alloc_track;

/// Version of the `ccsim bench --json` output schema.
///
/// v2 added `wall_clock_breakdown` (decode vs simulate vs report wall
/// time from the `bench_*_ns` span timers) and `obs_overhead` (the
/// telemetry hot-path overhead gate). v3 added `probe_scan`, the direct
/// tag-array scan microbench over the SoA packed tag words.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// Maximum tolerated telemetry hot-path overhead, in percent, for the
/// `obs_overhead` gate CI asserts on.
pub const OBS_OVERHEAD_LIMIT_PCT: f64 = 3.0;

/// Pattern name of the eviction-heavy microbench that perf gates track.
pub const EVICTION_HEAVY_PATTERN: &str = "llc_thrash";

/// Options for a throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputOptions {
    /// Reduced-scale traces and repetition counts (CI smoke).
    pub quick: bool,
    /// Policies to measure; defaults to LRU plus the paper's six.
    pub policies: Vec<PolicyKind>,
    /// Untimed repetitions per cell before measurement.
    pub warmup: u32,
    /// Timed repetitions per cell.
    pub reps: u32,
}

impl ThroughputOptions {
    /// Default options at the given scale: LRU + the paper's six policies,
    /// one warmup repetition, five timed repetitions (three when quick).
    pub fn new(quick: bool) -> ThroughputOptions {
        let mut policies = vec![PolicyKind::Lru];
        policies.extend(PolicyKind::PAPER_POLICIES);
        if quick {
            policies = vec![PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Hawkeye];
        }
        ThroughputOptions { quick, policies, warmup: 1, reps: if quick { 3 } else { 5 } }
    }
}

/// One measured (pattern × policy) cell.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Pattern name (`llc_thrash`, `random_churn`, `l1_hot`).
    pub pattern: &'static str,
    /// Policy measured.
    pub policy: PolicyKind,
    /// Trace records replayed per repetition.
    pub records: u64,
    /// Timed repetitions.
    pub reps: u32,
    /// Best records/second across the timed repetitions.
    pub best_rps: f64,
    /// Median records/second across the timed repetitions.
    pub median_rps: f64,
}

impl BenchCell {
    /// Nanoseconds per record at the best repetition.
    pub fn best_ns_per_record(&self) -> f64 {
        if self.best_rps == 0.0 {
            return 0.0;
        }
        1e9 / self.best_rps
    }
}

/// Outcome of the steady-state allocation check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocCheck {
    /// Zero heap allocations per steady-state record.
    Pass,
    /// This many heap allocations per record (the delta between two runs
    /// differing by the given record count, divided down).
    Fail(u64),
    /// No counting allocator is installed in this process.
    Unavailable,
}

impl AllocCheck {
    /// Stable status label (`pass` / `fail` / `unavailable`).
    pub fn status(&self) -> &'static str {
        match self {
            AllocCheck::Pass => "pass",
            AllocCheck::Fail(_) => "fail",
            AllocCheck::Unavailable => "unavailable",
        }
    }
}

/// Wall-clock split of one [`run_throughput`] invocation, measured by
/// the `bench_decode_ns` / `bench_simulate_ns` / `bench_report_ns`
/// span timers in the telemetry catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallClockBreakdown {
    /// Synthesizing/decoding the benchmark traces.
    pub decode_ns: u64,
    /// The measured simulation matrix (warmup + timed repetitions).
    pub simulate_ns: u64,
    /// Allocation check and report assembly.
    pub report_ns: u64,
}

/// The telemetry hot-path overhead gate: the eviction-heavy cell
/// re-measured with the metric catalog disabled, then enabled.
///
/// Instrumentation is accounted at chunk/band granularity — never per
/// record — so the two runs should be within noise of each other;
/// [`OBS_OVERHEAD_LIMIT_PCT`] is the tolerated budget.
#[derive(Debug, Clone, Copy)]
pub struct ObsOverhead {
    /// Best records/sec with telemetry disabled.
    pub baseline_rps: f64,
    /// Best records/sec with telemetry enabled.
    pub enabled_rps: f64,
    /// Throughput lost to telemetry, in percent (negative = noise in
    /// the enabled run's favor).
    pub overhead_pct: f64,
}

impl ObsOverhead {
    /// Whether the overhead is within [`OBS_OVERHEAD_LIMIT_PCT`].
    pub fn pass(&self) -> bool {
        self.overhead_pct <= OBS_OVERHEAD_LIMIT_PCT
    }
}

/// Direct tag-array scan microbench over one LLC-geometry [`Cache`].
///
/// The end-to-end cells above measure the whole hierarchy (L1/L2
/// filtering, MSHRs, DRAM timing), which dilutes the LLC tag-scan
/// share of a record to a few percent. This section times
/// [`Cache::probe`] *alone* — the branch-free match-mask sweep over
/// the packed SoA tag words — on a fully occupied cascade-lake LLC,
/// in the two regimes that bracket its cost: a resident sweep (every
/// probe hits; the scan stops accumulating at the matching way only
/// logically — it still reads the full valid prefix) and an absent
/// sweep (every probe misses; the full `ways`-wide prefix is scanned
/// and no mask bit ever sets). Miss probes are the upper bound the
/// eviction-heavy patterns pay on every level of every access.
#[derive(Debug, Clone, Copy)]
pub struct ProbeScanBench {
    /// LLC sets scanned.
    pub sets: u32,
    /// LLC ways per set (the scan width at full occupancy).
    pub ways: u32,
    /// Probes issued per timed repetition.
    pub probes: u64,
    /// Best probes/second over resident blocks (every probe hits).
    pub hit_rps: f64,
    /// Best probes/second over absent blocks (every probe misses).
    pub miss_rps: f64,
}

impl ProbeScanBench {
    /// Nanoseconds per probe at the best repetition of the given sweep.
    fn ns_per_probe(rps: f64) -> f64 {
        if rps == 0.0 {
            return 0.0;
        }
        1e9 / rps
    }
}

/// Runs the tag-array scan microbench: fills a cascade-lake-geometry
/// LLC to full occupancy (way-major, so no fill ever triggers a victim
/// query), then times resident and absent probe sweeps over every set.
pub fn run_probe_scan(quick: bool, reps: u32) -> ProbeScanBench {
    let llc = SimConfig::cascade_lake().llc;
    let (sets, ways) = (llc.sets, llc.ways);
    let mut cache = Cache::new("probe_scan", llc, PolicyKind::Lru.build_dispatch(sets, ways));
    let block_at = |way: u64, set: u64| (way << 32) | set;
    for way in 0..ways as u64 {
        for set in 0..sets as u64 {
            let block = block_at(way, set);
            cache.fill(&AccessInfo {
                pc: 0x400,
                block,
                set: cache.set_of(block),
                kind: AccessType::Load,
            });
        }
    }
    debug_assert_eq!(cache.occupancy(), (sets * ways) as usize);
    // Stride way-major across sets so consecutive probes touch distinct
    // sets (no same-set value reuse for the optimizer to exploit).
    let resident: Vec<u64> = (0..ways as u64)
        .flat_map(|way| (0..sets as u64).map(move |set| block_at(way, set)))
        .collect();
    let absent: Vec<u64> =
        resident.iter().map(|&b| block_at((b >> 32) + ways as u64 + 1, b & 0xFFFF_FFFF)).collect();
    let laps: u32 = if quick { 8 } else { 32 };
    let time_sweep = |blocks: &[u64], expect_hits: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let mut hits = 0u64;
            for _ in 0..laps {
                for &block in blocks {
                    hits += u64::from(cache.probe(block).is_some());
                }
            }
            best = best.min(start.elapsed().as_secs_f64().max(1e-9));
            let want = if expect_hits { laps as u64 * blocks.len() as u64 } else { 0 };
            assert_eq!(std::hint::black_box(hits), want, "probe sweep disagrees with residency");
        }
        laps as f64 * blocks.len() as f64 / best
    };
    ProbeScanBench {
        sets,
        ways,
        probes: laps as u64 * resident.len() as u64,
        hit_rps: time_sweep(&resident, true),
        miss_rps: time_sweep(&absent, false),
    }
}

/// A full throughput report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Simulated platform summary.
    pub platform: String,
    /// Whether reduced-scale inputs were used.
    pub quick: bool,
    /// Untimed repetitions per cell.
    pub warmup: u32,
    /// Timed repetitions per cell.
    pub reps: u32,
    /// Hot-path generation identifier ([`ccsim_core::HOT_PATH`]).
    pub hot_path: &'static str,
    /// Steady-state allocation check outcome.
    pub alloc_check: AllocCheck,
    /// Where the run's wall clock went.
    pub wall_clock_breakdown: WallClockBreakdown,
    /// Telemetry hot-path overhead gate.
    pub obs_overhead: ObsOverhead,
    /// Direct tag-array scan microbench.
    pub probe_scan: ProbeScanBench,
    /// Measured cells, pattern-major in declaration order, policy-minor in
    /// option order.
    pub cells: Vec<BenchCell>,
}

/// Builds the benchmark traces at the requested scale.
///
/// Record counts are chosen so every cell replays enough records for the
/// timer to dominate scheduling noise (~1M full scale, ~180k quick) while
/// a full default run stays in tens of seconds.
pub fn bench_traces(quick: bool) -> Vec<(&'static str, Trace)> {
    let llc_bytes = SimConfig::cascade_lake().llc.capacity_bytes();
    let thrash_bytes = 2 * llc_bytes;
    let blocks = thrash_bytes / 64;
    let laps = if quick { 4 } else { 23 };
    let count = if quick { 150_000 } else { 1_000_000 };

    let mut thrash = TraceBuffer::new(EVICTION_HEAVY_PATTERN);
    SequentialStream::new(0x1000_0000, thrash_bytes).stride(64).laps(laps).emit(&mut thrash);

    let mut churn = TraceBuffer::new("random_churn");
    RandomAccess::new(0x4000_0000, blocks, 64, count).seed(11).emit(&mut churn);

    let mut hot = TraceBuffer::new("l1_hot");
    let hot_laps = (count / (16 * 1024 / 8)).max(1) as u32;
    SequentialStream::new(0x2000_0000, 16 * 1024).laps(hot_laps).emit(&mut hot);

    vec![
        (EVICTION_HEAVY_PATTERN, thrash.finish()),
        ("random_churn", churn.finish()),
        ("l1_hot", hot.finish()),
    ]
}

/// Measures one (trace × policy) cell.
fn measure_cell(
    pattern: &'static str,
    trace: &Trace,
    policy: PolicyKind,
    config: &SimConfig,
    warmup: u32,
    reps: u32,
) -> BenchCell {
    for _ in 0..warmup {
        std::hint::black_box(simulate(trace, config, policy));
    }
    let mut rps: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(simulate(trace, config, policy));
            trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
        })
        .collect();
    rps.sort_by(|a, b| a.total_cmp(b));
    BenchCell {
        pattern,
        policy,
        records: trace.len() as u64,
        reps,
        best_rps: *rps.last().expect("reps > 0"),
        median_rps: rps[rps.len() / 2],
    }
}

/// Verifies the zero-allocations-per-steady-state-record contract by
/// differencing: two LRU replays of the same eviction-heavy pattern,
/// differing only in lap count, must allocate *exactly* the same number of
/// times — end-of-run result assembly cancels out, so any difference is a
/// per-record allocation. Requires a [`crate::alloc_track::CountingAlloc`]
/// in the running binary; reports [`AllocCheck::Unavailable`] otherwise.
pub fn steady_state_alloc_check() -> AllocCheck {
    if !alloc_track::counting_enabled() {
        return AllocCheck::Unavailable;
    }
    let config = SimConfig::cascade_lake();
    let bytes = 2 * config.llc.capacity_bytes();
    let build = |laps: u32| {
        let mut buf = TraceBuffer::new("alloc_probe");
        SequentialStream::new(0x1000_0000, bytes).stride(64).laps(laps).emit(&mut buf);
        buf.finish()
    };
    let short = build(2);
    let long = build(4);
    let extra_records = (long.len() - short.len()) as u64;
    let count = |trace: &Trace| {
        let before = alloc_track::allocations();
        std::hint::black_box(simulate(trace, &config, PolicyKind::Lru));
        alloc_track::allocations() - before
    };
    // Warm both so one-time lazy work (thread-locals etc.) is excluded.
    count(&short);
    count(&long);
    let delta = count(&long).saturating_sub(count(&short));
    if delta == 0 {
        AllocCheck::Pass
    } else {
        AllocCheck::Fail(delta.div_ceil(extra_records.max(1)).max(1))
    }
}

/// Measures the telemetry overhead gate on the eviction-heavy pattern,
/// previous enablement restored afterwards. Disabled/enabled reps are
/// **interleaved** (off, on, off, on, …) so clock drift, thermal
/// throttling and neighborly noise hit both states equally — two
/// back-to-back blocks can disagree by several percent on a busy
/// machine even with telemetry compiled out entirely. Best-of-reps per
/// state then compares the least-perturbed run of each.
fn measure_obs_overhead(trace: &Trace, config: &SimConfig, reps: u32) -> ObsOverhead {
    let was_enabled = ccsim_obs::enabled();
    let time_one = |enabled: bool| {
        ccsim_obs::set_enabled(enabled);
        let start = Instant::now();
        std::hint::black_box(simulate(trace, config, PolicyKind::Lru));
        trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
    };
    // One warmup pass per state.
    time_one(false);
    time_one(true);
    let mut baseline_rps = 0.0f64;
    let mut enabled_rps = 0.0f64;
    for _ in 0..reps.max(5) {
        baseline_rps = baseline_rps.max(time_one(false));
        enabled_rps = enabled_rps.max(time_one(true));
    }
    ccsim_obs::set_enabled(was_enabled);
    ObsOverhead {
        baseline_rps,
        enabled_rps,
        overhead_pct: 100.0 * (1.0 - enabled_rps / baseline_rps.max(1e-9)),
    }
}

/// CI validation knob: when this env var holds a factor > 1, every
/// measured cell's records/sec is divided by it after measurement. A
/// deterministic synthetic regression lets the trends-gate smoke test
/// prove `ccsim trends check` actually fails on a real slowdown without
/// burning CPU to fake one. Ignored (with no side effects) otherwise.
pub const SYNTH_SLOWDOWN_ENV: &str = "CCSIM_BENCH_SYNTH_SLOWDOWN";

fn synth_slowdown() -> Option<f64> {
    let factor: f64 = std::env::var(SYNTH_SLOWDOWN_ENV).ok()?.parse().ok()?;
    (factor > 1.0 && factor.is_finite()).then_some(factor)
}

/// Runs the full throughput matrix.
pub fn run_throughput(options: &ThroughputOptions) -> BenchReport {
    let config = SimConfig::cascade_lake();
    let m = ccsim_obs::metrics();
    let decode_span = m.bench_decode_ns.span();
    let traces = bench_traces(options.quick);
    let decode_ns = decode_span.stop();
    let simulate_span = m.bench_simulate_ns.span();
    let mut cells = Vec::new();
    for (pattern, trace) in &traces {
        for &policy in &options.policies {
            cells.push(measure_cell(pattern, trace, policy, &config, options.warmup, options.reps));
        }
    }
    let obs_overhead = measure_obs_overhead(&traces[0].1, &config, options.reps);
    let probe_scan = run_probe_scan(options.quick, options.reps);
    let simulate_ns = simulate_span.stop();
    let report_span = m.bench_report_ns.span();
    let mut report = BenchReport {
        platform: config.to_string(),
        quick: options.quick,
        warmup: options.warmup,
        reps: options.reps,
        hot_path: ccsim_core::HOT_PATH,
        alloc_check: steady_state_alloc_check(),
        wall_clock_breakdown: WallClockBreakdown { decode_ns, simulate_ns, report_ns: 0 },
        obs_overhead,
        probe_scan,
        cells,
    };
    report.wall_clock_breakdown.report_ns = report_span.stop();
    if let Some(factor) = synth_slowdown() {
        for cell in &mut report.cells {
            cell.best_rps /= factor;
            cell.median_rps /= factor;
        }
    }
    report
}

impl BenchReport {
    /// The report as a JSON tree in the pinned schema
    /// ([`BENCH_SCHEMA_VERSION`]; fixture `tests/fixtures/bench_v1.json`).
    pub fn to_json(&self) -> Json {
        let alloc = match self.alloc_check {
            AllocCheck::Pass => {
                Json::obj(vec![("status", Json::str("pass")), ("allocs_per_record", Json::int(0))])
            }
            AllocCheck::Fail(n) => {
                Json::obj(vec![("status", Json::str("fail")), ("allocs_per_record", Json::int(n))])
            }
            AllocCheck::Unavailable => Json::obj(vec![
                ("status", Json::str("unavailable")),
                ("allocs_per_record", Json::Null),
            ]),
        };
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("pattern", Json::str(c.pattern)),
                    ("policy", Json::str(c.policy.name())),
                    ("records", Json::int(c.records)),
                    ("reps", Json::int(c.reps as u64)),
                    ("best_rps", Json::num(c.best_rps)),
                    ("median_rps", Json::num(c.median_rps)),
                    ("best_ns_per_record", Json::num(c.best_ns_per_record())),
                ])
            })
            .collect();
        let wall = Json::obj(vec![
            ("decode_ns", Json::int(self.wall_clock_breakdown.decode_ns)),
            ("simulate_ns", Json::int(self.wall_clock_breakdown.simulate_ns)),
            ("report_ns", Json::int(self.wall_clock_breakdown.report_ns)),
        ]);
        let obs = Json::obj(vec![
            ("baseline_rps", Json::num(self.obs_overhead.baseline_rps)),
            ("enabled_rps", Json::num(self.obs_overhead.enabled_rps)),
            ("overhead_pct", Json::num(self.obs_overhead.overhead_pct)),
            ("limit_pct", Json::num(OBS_OVERHEAD_LIMIT_PCT)),
            ("status", Json::str(if self.obs_overhead.pass() { "pass" } else { "fail" })),
        ]);
        let probe = Json::obj(vec![
            ("sets", Json::int(self.probe_scan.sets as u64)),
            ("ways", Json::int(self.probe_scan.ways as u64)),
            ("probes", Json::int(self.probe_scan.probes)),
            ("hit_rps", Json::num(self.probe_scan.hit_rps)),
            ("miss_rps", Json::num(self.probe_scan.miss_rps)),
            ("hit_ns_per_probe", Json::num(ProbeScanBench::ns_per_probe(self.probe_scan.hit_rps))),
            (
                "miss_ns_per_probe",
                Json::num(ProbeScanBench::ns_per_probe(self.probe_scan.miss_rps)),
            ),
        ]);
        Json::obj(vec![
            ("ccsim_bench", Json::int(BENCH_SCHEMA_VERSION)),
            ("platform", Json::str(&self.platform)),
            ("quick", Json::Bool(self.quick)),
            ("warmup", Json::int(self.warmup as u64)),
            ("reps", Json::int(self.reps as u64)),
            ("hot_path", Json::str(self.hot_path)),
            ("alloc_check", alloc),
            ("wall_clock_breakdown", wall),
            ("obs_overhead", obs),
            ("probe_scan", probe),
            ("cells", Json::Arr(cells)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_traces_have_expected_shapes() {
        let traces = bench_traces(true);
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].0, EVICTION_HEAVY_PATTERN);
        for (name, trace) in &traces {
            assert!(trace.len() > 50_000, "{name} too small: {}", trace.len());
        }
        // The thrash working set must exceed the LLC so steady-state fills
        // always find full sets.
        let llc_blocks = SimConfig::cascade_lake().llc.capacity_bytes() / 64;
        let stats = ccsim_trace::stats::TraceStats::compute(&traces[0].1);
        assert!(stats.footprint_blocks > llc_blocks, "thrash must exceed the LLC");
    }

    #[test]
    fn measure_cell_reports_ordered_statistics() {
        let mut buf = TraceBuffer::new("t");
        SequentialStream::new(0, 1 << 12).emit(&mut buf);
        let trace = buf.finish();
        let cell = measure_cell("t", &trace, PolicyKind::Lru, &SimConfig::tiny(), 0, 3);
        assert_eq!(cell.records, trace.len() as u64);
        assert!(cell.best_rps >= cell.median_rps);
        assert!(cell.best_ns_per_record() > 0.0);
    }

    #[test]
    fn alloc_check_without_counting_allocator_is_unavailable() {
        // The test harness binary does not install CountingAlloc.
        assert_eq!(steady_state_alloc_check(), AllocCheck::Unavailable);
        assert_eq!(AllocCheck::Unavailable.status(), "unavailable");
        assert_eq!(AllocCheck::Pass.status(), "pass");
        assert_eq!(AllocCheck::Fail(3).status(), "fail");
    }

    #[test]
    fn report_serializes_in_schema_order() {
        let report = BenchReport {
            platform: "test".into(),
            quick: true,
            warmup: 1,
            reps: 3,
            hot_path: ccsim_core::HOT_PATH,
            alloc_check: AllocCheck::Pass,
            wall_clock_breakdown: WallClockBreakdown {
                decode_ns: 100,
                simulate_ns: 900,
                report_ns: 50,
            },
            obs_overhead: ObsOverhead { baseline_rps: 100.0, enabled_rps: 99.0, overhead_pct: 1.0 },
            probe_scan: ProbeScanBench {
                sets: 2048,
                ways: 11,
                probes: 1000,
                hit_rps: 4e8,
                miss_rps: 5e8,
            },
            cells: vec![BenchCell {
                pattern: "llc_thrash",
                policy: PolicyKind::Lru,
                records: 10,
                reps: 3,
                best_rps: 100.0,
                median_rps: 90.0,
            }],
        };
        let json = report.to_json().to_string();
        assert!(json.starts_with(r#"{"ccsim_bench":3,"#), "{json}");
        assert!(json.contains(r#""alloc_check":{"status":"pass","allocs_per_record":0}"#));
        assert!(json.contains(r#""wall_clock_breakdown":{"decode_ns":100,"#), "{json}");
        assert!(json.contains(r#""overhead_pct":1,"limit_pct":3,"status":"pass""#), "{json}");
        assert!(json.contains(r#""probe_scan":{"sets":2048,"ways":11,"probes":1000,"#), "{json}");
        assert!(json.contains(r#""hit_ns_per_probe":2.5,"#), "{json}");
        assert!(json.contains(r#""pattern":"llc_thrash""#));
    }

    #[test]
    fn probe_scan_sweeps_a_full_llc_in_both_regimes() {
        let bench = run_probe_scan(true, 1);
        let llc = SimConfig::cascade_lake().llc;
        assert_eq!((bench.sets, bench.ways), (llc.sets, llc.ways));
        assert_eq!(bench.probes, 8 * (llc.sets as u64) * (llc.ways as u64));
        assert!(bench.hit_rps > 0.0 && bench.miss_rps > 0.0);
        assert!(ProbeScanBench::ns_per_probe(bench.hit_rps) > 0.0);
        assert_eq!(ProbeScanBench::ns_per_probe(0.0), 0.0);
    }

    #[test]
    fn synth_slowdown_requires_a_real_factor() {
        assert_eq!(synth_slowdown(), None, "unset: no slowdown");
        std::env::set_var(SYNTH_SLOWDOWN_ENV, "2.5");
        assert_eq!(synth_slowdown(), Some(2.5));
        for bogus in ["1.0", "0.5", "-3", "nan", "fast"] {
            std::env::set_var(SYNTH_SLOWDOWN_ENV, bogus);
            assert_eq!(synth_slowdown(), None, "{bogus} must not slow anything down");
        }
        std::env::remove_var(SYNTH_SLOWDOWN_ENV);
    }

    #[test]
    fn obs_overhead_gate_passes_and_fails_on_the_limit() {
        let ok = ObsOverhead { baseline_rps: 100.0, enabled_rps: 98.0, overhead_pct: 2.0 };
        assert!(ok.pass());
        let bad = ObsOverhead { baseline_rps: 100.0, enabled_rps: 90.0, overhead_pct: 10.0 };
        assert!(!bad.pass());
        // Noise in the enabled run's favor is a pass, not an error.
        let lucky = ObsOverhead { baseline_rps: 100.0, enabled_rps: 101.0, overhead_pct: -1.0 };
        assert!(lucky.pass());
    }
}
