//! # ccsim-bench
//!
//! Shared plumbing for the figure-regeneration binaries and Criterion
//! benchmarks. Each binary in `src/bin/` regenerates one of the paper's
//! figures/tables or an extension experiment; see `DESIGN.md` at the
//! workspace root for the per-experiment index.
//!
//! All binaries accept `--quick` to run scaled-down inputs (useful for
//! smoke-testing the harness) and print the same tables at reduced
//! fidelity.

#![warn(missing_docs)]

pub mod alloc_track;
pub mod gridbench;
pub mod throughput;

use ccsim_core::experiment::{run_matrix, MatrixEntry};
use ccsim_core::{SimConfig, SimResult};
use ccsim_policies::PolicyKind;
use ccsim_trace::Trace;
use ccsim_workloads::{GapScale, SuiteScale};

/// Parsed command-line options shared by all figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Run scaled-down inputs.
    pub quick: bool,
    /// Worker threads for policy sweeps.
    pub threads: usize,
}

impl Options {
    /// Parses `std::env::args`: recognizes `--quick` and `--threads N`.
    pub fn from_args() -> Options {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let threads = args
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(default_threads);
        Options { quick, threads }
    }

    /// The GAP scale preset implied by the options.
    pub fn gap_scale(&self) -> GapScale {
        if self.quick {
            GapScale::Quick
        } else {
            GapScale::Full
        }
    }

    /// The synthetic-suite scale preset implied by the options.
    pub fn suite_scale(&self) -> SuiteScale {
        if self.quick {
            SuiteScale::Quick
        } else {
            SuiteScale::Full
        }
    }
}

/// Default worker count for sweeps; see
/// [`ccsim_core::experiment::default_threads`].
pub fn default_threads() -> usize {
    ccsim_core::experiment::default_threads()
}

/// Runs one trace under every given policy (in parallel) and returns the
/// results in policy order.
pub fn run_policies(
    trace: &Trace,
    policies: &[PolicyKind],
    config: &SimConfig,
    threads: usize,
) -> Vec<SimResult> {
    let traces = std::slice::from_ref(trace);
    run_matrix(traces, policies, config, threads)
        .into_iter()
        .map(|MatrixEntry { result, .. }| result)
        .collect()
}

/// LRU first, then the paper's six policies: the column layout of every
/// speed-up table.
pub fn lru_plus_paper_policies() -> Vec<PolicyKind> {
    let mut v = vec![PolicyKind::Lru];
    v.extend(PolicyKind::PAPER_POLICIES);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::synth::{PatternGen, RandomAccess};
    use ccsim_trace::TraceBuffer;

    #[test]
    fn policy_column_layout() {
        let p = lru_plus_paper_policies();
        assert_eq!(p.len(), 7);
        assert_eq!(p[0], PolicyKind::Lru);
        assert_eq!(p[1], PolicyKind::Srrip);
    }

    #[test]
    fn run_policies_orders_results() {
        let mut b = TraceBuffer::new("t");
        RandomAccess::new(0, 1 << 10, 64, 1000).emit(&mut b);
        let t = b.finish();
        let results =
            run_policies(&t, &[PolicyKind::Lru, PolicyKind::Srrip], &SimConfig::tiny(), 2);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].policy, "lru");
        assert_eq!(results[1].policy, "srrip");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
