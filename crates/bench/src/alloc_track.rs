//! A counting global allocator for allocation-free-path verification.
//!
//! The hot-path contract (see `ccsim_core`'s crate docs) promises zero
//! steady-state heap allocations per simulated trace record. That claim is
//! only checkable from outside the allocator, so this module provides a
//! [`CountingAlloc`] that binaries and tests opt into with
//! `#[global_allocator]`. Counting is a single relaxed atomic increment per
//! allocation — cheap enough to leave on in the `ccsim` CLI, whose `bench`
//! subcommand uses it to report measured allocations per record.
//!
//! When no binary installs the allocator the counter never moves;
//! [`counting_enabled`] distinguishes "zero allocations" from "nobody is
//! counting" so `ccsim bench` can report `unavailable` instead of a
//! hollow pass.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation (including
/// reallocations) in a process-wide counter.
///
/// # Examples
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ccsim_bench::alloc_track::CountingAlloc =
///     ccsim_bench::alloc_track::CountingAlloc;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations observed so far (0 forever unless a [`CountingAlloc`]
/// is installed as the global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// `true` if a [`CountingAlloc`] is actually installed: performs one heap
/// allocation and checks that the counter moved.
pub fn counting_enabled() -> bool {
    let before = allocations();
    let probe = vec![0u8; 64];
    std::hint::black_box(&probe);
    drop(probe);
    allocations() > before
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counter must
    // stay put and the probe must say so.
    #[test]
    fn uninstalled_counter_reports_disabled() {
        assert_eq!(allocations(), 0);
        assert!(!counting_enabled());
        assert_eq!(allocations(), 0);
    }
}
