//! One-pass grid replay benchmark (`ccsim bench --grid`).
//!
//! Measures the campaign engine's two execution paths over the *same*
//! on-disk `CCTR` file and the *same* policy × LLC-scale grid:
//!
//! * **per-cell** — the `--per-cell` escape hatch and the pre-band
//!   status quo: every cell opens the file and replays it end to end
//!   ([`ccsim_core::simulate_stream`]), so a `C`-cell grid decodes the
//!   trace `C` times;
//! * **grid** — the one-pass default: a single [`ccsim_core::GridReplay`]
//!   pass decodes each record once and steps every cell through it in
//!   lockstep ([`ccsim_core::simulate_grid_stream`]).
//!
//! Both modes are timed single-threaded over `reps` repetitions (best
//! taken) and the metric is **records·cells/second** — grid throughput,
//! not single-cell throughput — plus the pass count each mode needs
//! (`cells` vs `1`). Results are checked bit-identical across modes
//! (`identical`), which is the grid driver's core contract.
//!
//! The workloads sweep the cost regimes that bound the speedup. Decode
//! costs a few ns/record; simulation costs ~15 ns (pure hit path) to
//! hundreds of ns (eviction-heavy), so on a warm page cache the one-pass
//! win is the decode/read share of the per-record budget — largest for
//! `block_hot`, smallest for `llc_thrash`, where chunk-switching between
//! many multi-MB cell states can even cost a few percent. The pass-count
//! column is the machine-independent part: on cold storage (the
//! multi-gigabyte ingested traces campaigns exist for) each avoided pass
//! is an avoided full read of the file, and I/O — not simulation — is
//! what the `cells`-fold amortization removes. One-pass chunk sizes
//! default to the footprint-aware autotuner
//! ([`ccsim_core::autotune_chunk_records`]); `chunk_records` forces a
//! specific size for sensitivity studies (`--chunk-records`).
//!
//! Results serialize to a pinned JSON schema
//! ([`GRID_BENCH_SCHEMA_VERSION`], fixture `tests/fixtures/bench_v2.json`)
//! distinguished from the throughput schema by `"mode": "grid"`.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::time::Instant;

use ccsim_campaign::Json;
use ccsim_core::{simulate_grid_stream, simulate_stream, SimConfig, SimResult};
use ccsim_policies::PolicyKind;
use ccsim_trace::synth::{PatternGen, SequentialStream};
use ccsim_trace::{write_trace, Trace, TraceBuffer, TraceReader};

/// Version of the `ccsim bench --grid --json` output schema.
///
/// v3 added `grid.chunk_records`: the chunk size the one-pass mode was
/// asked to use (`0` = autotuned from the grid's combined tag-state
/// footprint against the host LLC budget).
pub const GRID_BENCH_SCHEMA_VERSION: u64 = 3;

/// Options for a grid replay benchmark run.
#[derive(Debug, Clone)]
pub struct GridBenchOptions {
    /// Reduced-scale traces and repetition counts (CI smoke).
    pub quick: bool,
    /// Grid policies; defaults to all twelve.
    pub policies: Vec<PolicyKind>,
    /// Grid LLC scale factors; defaults to `[1, 2, 4, 8]`.
    pub llc_scales: Vec<u32>,
    /// Untimed repetitions per (workload × mode) before measurement.
    pub warmup: u32,
    /// Timed repetitions per (workload × mode); the best is reported.
    pub reps: u32,
    /// Records per one-pass chunk; `0` autotunes from the grid's
    /// combined tag-state footprint (the `--chunk-records` override).
    pub chunk_records: usize,
}

impl GridBenchOptions {
    /// Defaults at the given scale: the full 12-policy × 4-scale grid
    /// (48 cells), one warmup, three timed repetitions (two when quick).
    pub fn new(quick: bool) -> GridBenchOptions {
        GridBenchOptions {
            quick,
            policies: PolicyKind::ALL.to_vec(),
            llc_scales: vec![1, 2, 4, 8],
            warmup: 1,
            reps: if quick { 2 } else { 3 },
            chunk_records: 0,
        }
    }

    fn cells(&self) -> Vec<(SimConfig, PolicyKind)> {
        let mut cells = Vec::new();
        for &scale in &self.llc_scales {
            let config = SimConfig::cascade_lake().with_llc_scale(scale);
            for &policy in &self.policies {
                cells.push((config, policy));
            }
        }
        cells
    }
}

/// One mode's timing over one workload.
#[derive(Debug, Clone, Copy)]
pub struct ModeTiming {
    /// Full trace passes (file open + decode) this mode needs: the cell
    /// count for per-cell replay, `1` for one-pass grid replay.
    pub passes: usize,
    /// Best wall-clock seconds across the timed repetitions.
    pub best_elapsed_s: f64,
    /// Best records·cells per second (grid throughput).
    pub best_cell_rps: f64,
}

/// One workload's per-cell vs grid comparison.
#[derive(Debug, Clone)]
pub struct GridWorkloadResult {
    /// Workload name (`block_hot`, `l1_hot`, `llc_thrash`).
    pub workload: &'static str,
    /// Trace records replayed per pass.
    pub records: u64,
    /// Grid cells simulated.
    pub cells: usize,
    /// Per-cell replay timing (`cells` passes).
    pub per_cell: ModeTiming,
    /// One-pass grid replay timing (1 pass).
    pub grid: ModeTiming,
    /// Grid records·cells/sec over per-cell records·cells/sec.
    pub speedup: f64,
    /// Whether the two modes produced bit-identical results.
    pub identical: bool,
}

/// A full grid benchmark report.
#[derive(Debug, Clone)]
pub struct GridBenchReport {
    /// Simulated platform summary (base config; scales vary per cell).
    pub platform: String,
    /// Whether reduced-scale inputs were used.
    pub quick: bool,
    /// Untimed repetitions per mode.
    pub warmup: u32,
    /// Timed repetitions per mode.
    pub reps: u32,
    /// Hot-path generation identifier ([`ccsim_core::HOT_PATH`]).
    pub hot_path: &'static str,
    /// Grid policies, in order.
    pub policies: Vec<PolicyKind>,
    /// Grid LLC scale factors, in order.
    pub llc_scales: Vec<u32>,
    /// Total grid cells (`policies × llc_scales`).
    pub cells: usize,
    /// Requested one-pass chunk size (`0` = autotuned per workload).
    pub chunk_records: usize,
    /// Per-workload comparisons, in declaration order.
    pub workloads: Vec<GridWorkloadResult>,
}

/// Builds the benchmark workloads at the requested scale: the pure-hit
/// floor (`block_hot`), the L1-resident hit path (`l1_hot`), and the
/// eviction-heavy sweep (`llc_thrash`, two LLC capacities sequentially).
pub fn grid_bench_traces(quick: bool) -> Vec<(&'static str, Trace)> {
    let count = if quick { 60_000 } else { 400_000 };

    // One 64-byte block, hit on every access: the cheapest possible
    // per-record simulation, so decode amortization shows at its best.
    let mut block = TraceBuffer::new("block_hot");
    SequentialStream::new(0x3000_0000, 64).laps((count / 8).max(1) as u32).emit(&mut block);

    let mut hot = TraceBuffer::new("l1_hot");
    SequentialStream::new(0x2000_0000, 16 * 1024).laps((count / 2048).max(1) as u32).emit(&mut hot);

    let llc_bytes = SimConfig::cascade_lake().llc.capacity_bytes();
    let mut thrash = TraceBuffer::new("llc_thrash");
    SequentialStream::new(0x1000_0000, 2 * llc_bytes)
        .stride(64)
        .laps(if quick { 1 } else { 4 })
        .emit(&mut thrash);

    vec![("block_hot", block.finish()), ("l1_hot", hot.finish()), ("llc_thrash", thrash.finish())]
}

fn open_reader(path: &std::path::Path) -> Result<TraceReader<BufReader<File>>, String> {
    let file = File::open(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
    TraceReader::new(BufReader::new(file)).map_err(|e| format!("decoding {}: {e}", path.display()))
}

/// Replays every cell independently — one full streamed pass per cell,
/// exactly what `ccsim campaign --per-cell` does for a cached trace.
fn per_cell_pass(
    path: &std::path::Path,
    cells: &[(SimConfig, PolicyKind)],
) -> Result<Vec<SimResult>, String> {
    cells
        .iter()
        .map(|(config, policy)| {
            simulate_stream(open_reader(path)?, config, *policy).map_err(|e| e.to_string())
        })
        .collect()
}

/// Replays every cell in one lockstep pass over the file.
fn grid_pass(
    path: &std::path::Path,
    cells: &[(SimConfig, PolicyKind)],
    chunk_records: usize,
) -> Result<Vec<SimResult>, String> {
    simulate_grid_stream(open_reader(path)?, cells, chunk_records).map_err(|e| e.to_string())
}

fn time_mode(
    passes: usize,
    records: u64,
    cells: usize,
    warmup: u32,
    reps: u32,
    mut run: impl FnMut() -> Result<Vec<SimResult>, String>,
) -> Result<(ModeTiming, Vec<SimResult>), String> {
    for _ in 0..warmup {
        std::hint::black_box(run()?);
    }
    let mut best_elapsed = f64::INFINITY;
    let mut results = Vec::new();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = std::hint::black_box(run()?);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        if elapsed < best_elapsed {
            best_elapsed = elapsed;
        }
        results = out;
    }
    let timing = ModeTiming {
        passes,
        best_elapsed_s: best_elapsed,
        best_cell_rps: records as f64 * cells as f64 / best_elapsed,
    };
    Ok((timing, results))
}

/// Runs the grid replay benchmark: for each workload, writes the trace
/// to a temporary `CCTR` file, times per-cell replay against one-pass
/// grid replay over it, and cross-checks the two result sets.
///
/// # Errors
///
/// Returns a message on temp-file I/O failures or trace decode errors.
pub fn run_grid_bench(options: &GridBenchOptions) -> Result<GridBenchReport, String> {
    let cells = options.cells();
    if cells.is_empty() {
        return Err("grid bench needs at least one policy and one LLC scale".into());
    }
    let mut workloads = Vec::new();
    for (name, trace) in grid_bench_traces(options.quick) {
        let path = temp_trace_path(name);
        let file = File::create(&path).map_err(|e| format!("creating {}: {e}", path.display()))?;
        write_trace(&trace, std::io::BufWriter::new(file))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let measured = (|| {
            let (per_cell, reference) = time_mode(
                cells.len(),
                trace.len() as u64,
                cells.len(),
                options.warmup,
                options.reps,
                || per_cell_pass(&path, &cells),
            )?;
            let (grid, results) = time_mode(
                1,
                trace.len() as u64,
                cells.len(),
                options.warmup,
                options.reps,
                || grid_pass(&path, &cells, options.chunk_records),
            )?;
            Ok::<_, String>(GridWorkloadResult {
                workload: name,
                records: trace.len() as u64,
                cells: cells.len(),
                per_cell,
                grid,
                speedup: grid.best_cell_rps / per_cell.best_cell_rps.max(1e-9),
                identical: results == reference,
            })
        })();
        let _ = std::fs::remove_file(&path);
        workloads.push(measured?);
    }
    Ok(GridBenchReport {
        platform: SimConfig::cascade_lake().to_string(),
        quick: options.quick,
        warmup: options.warmup,
        reps: options.reps,
        hot_path: ccsim_core::HOT_PATH,
        policies: options.policies.clone(),
        llc_scales: options.llc_scales.clone(),
        cells: cells.len(),
        chunk_records: options.chunk_records,
        workloads,
    })
}

fn temp_trace_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ccsim_gridbench_{}_{name}.cctr", std::process::id()))
}

impl GridBenchReport {
    /// The report as a JSON tree in the pinned schema
    /// ([`GRID_BENCH_SCHEMA_VERSION`]; fixture `tests/fixtures/bench_v2.json`).
    pub fn to_json(&self) -> Json {
        let mode = |t: &ModeTiming| {
            Json::obj(vec![
                ("passes", Json::int(t.passes as u64)),
                ("best_elapsed_s", Json::num(t.best_elapsed_s)),
                ("cell_rps", Json::num(t.best_cell_rps)),
            ])
        };
        let workloads = self
            .workloads
            .iter()
            .map(|w| {
                Json::obj(vec![
                    ("workload", Json::str(w.workload)),
                    ("records", Json::int(w.records)),
                    ("cells", Json::int(w.cells as u64)),
                    ("per_cell", mode(&w.per_cell)),
                    ("grid", mode(&w.grid)),
                    ("speedup", Json::num(w.speedup)),
                    ("identical", Json::Bool(w.identical)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("ccsim_bench", Json::int(GRID_BENCH_SCHEMA_VERSION)),
            ("mode", Json::str("grid")),
            ("platform", Json::str(&self.platform)),
            ("quick", Json::Bool(self.quick)),
            ("warmup", Json::int(self.warmup as u64)),
            ("reps", Json::int(self.reps as u64)),
            ("hot_path", Json::str(self.hot_path)),
            (
                "grid",
                Json::obj(vec![
                    (
                        "policies",
                        Json::Arr(self.policies.iter().map(|p| Json::str(p.name())).collect()),
                    ),
                    (
                        "llc_scales",
                        Json::Arr(self.llc_scales.iter().map(|&s| Json::int(s as u64)).collect()),
                    ),
                    ("cells", Json::int(self.cells as u64)),
                    ("chunk_records", Json::int(self.chunk_records as u64)),
                ]),
            ),
            ("workloads", Json::Arr(workloads)),
        ])
    }

    /// Human-readable table: per-workload passes, throughput and speedup.
    pub fn render(&self) -> String {
        use ccsim_core::experiment::Table;
        let mut t = Table::new(
            [
                "workload",
                "records",
                "cells",
                "passes",
                "Mrec·cells/s",
                "grid Mrec·cells/s",
                "speedup",
                "identical",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        );
        for w in &self.workloads {
            t.row(vec![
                w.workload.to_owned(),
                w.records.to_string(),
                w.cells.to_string(),
                format!("{}→{}", w.per_cell.passes, w.grid.passes),
                format!("{:.1}", w.per_cell.best_cell_rps / 1e6),
                format!("{:.1}", w.grid.best_cell_rps / 1e6),
                format!("{:.2}x", w.speedup),
                w.identical.to_string(),
            ]);
        }
        format!(
            "grid replay: {} cells ({} policies × {} LLC scales), {} pass(es) per cell-grid vs {}\n{}",
            self.cells,
            self.policies.len(),
            self.llc_scales.len(),
            self.cells,
            1,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_bench_modes_agree_and_schema_leads_with_version() {
        let options = GridBenchOptions {
            quick: true,
            policies: vec![PolicyKind::Lru, PolicyKind::Srrip],
            llc_scales: vec![1, 2],
            warmup: 0,
            reps: 1,
            chunk_records: 17,
        };
        let report = run_grid_bench(&options).unwrap();
        assert_eq!(report.cells, 4);
        assert_eq!(report.workloads.len(), 3);
        for w in &report.workloads {
            assert!(w.identical, "{}: per-cell and grid results diverged", w.workload);
            assert_eq!(w.per_cell.passes, 4);
            assert_eq!(w.grid.passes, 1);
            assert!(w.per_cell.best_cell_rps > 0.0 && w.grid.best_cell_rps > 0.0);
        }
        let json = report.to_json().to_string();
        assert!(json.starts_with(r#"{"ccsim_bench":3,"mode":"grid","#), "{json}");
        // A forced odd chunk size must not change results — chunking is
        // invisible to the simulation.
        assert!(json.contains(r#""chunk_records":17"#), "{json}");
        let rendered = report.render();
        assert!(rendered.contains("block_hot"), "{rendered}");
        assert!(rendered.contains("4→1"), "{rendered}");
    }

    #[test]
    fn grid_bench_traces_cover_the_cost_regimes() {
        let traces = grid_bench_traces(true);
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].0, "block_hot");
        let llc_blocks = SimConfig::cascade_lake().llc.capacity_bytes() / 64;
        let stats = ccsim_trace::stats::TraceStats::compute(&traces[2].1);
        assert!(stats.footprint_blocks > llc_blocks, "llc_thrash must exceed the LLC");
        let block = ccsim_trace::stats::TraceStats::compute(&traces[0].1);
        assert_eq!(block.footprint_blocks, 1, "block_hot must stay in one block");
    }
}
