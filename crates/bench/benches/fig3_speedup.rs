//! Criterion benchmark for the Figure 3 pipeline: one quick workload per
//! suite, simulated under each of the paper's policies. Prints the
//! speed-up series once so the sign pattern can be checked alongside the
//! timings; the full-fidelity table comes from the `fig3` binary.

use ccsim_core::{simulate, SimConfig};
use ccsim_policies::PolicyKind;
use ccsim_workloads::{Suite, SuiteScale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig3_speedup(c: &mut Criterion) {
    let config = SimConfig::cascade_lake();
    let mut group = c.benchmark_group("fig3_speedup");
    group.sample_size(10);
    for suite in Suite::ALL {
        let trace = suite.traces(SuiteScale::Quick).into_iter().next().expect("suite non-empty");
        let lru = simulate(&trace, &config, PolicyKind::Lru);
        for policy in PolicyKind::PAPER_POLICIES {
            let r = simulate(&trace, &config, policy);
            eprintln!(
                "fig3[{}:{}] {} {:+.2}%",
                suite.name(),
                trace.name(),
                policy,
                r.speedup_over(&lru)
            );
            group.bench_function(format!("{}/{}", suite.name(), policy), |b| {
                b.iter(|| simulate(black_box(&trace), &config, policy))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3_speedup);
criterion_main!(benches);
