//! Microbenchmarks of the cache tag array and MSHR bank.

use ccsim_core::cache::MshrGrant;
use ccsim_core::{Cache, CacheConfig};
use ccsim_policies::{AccessInfo, AccessType, PolicyKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn llc_cache() -> Cache {
    let cfg = CacheConfig { sets: 2048, ways: 11, latency: 44, mshrs: 64 };
    Cache::new("LLC", cfg, PolicyKind::Lru.build(cfg.sets, cfg.ways))
}

fn lookup_fill_cycle(n: u64) -> u64 {
    let mut c = llc_cache();
    let mut state = 0xDEAD_BEEF_u64;
    let mut hits = 0u64;
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let block = (state >> 20) & 0x3_FFFF;
        let info = AccessInfo { pc: 0x400, block, set: c.set_of(block), kind: AccessType::Load };
        match c.lookup(&info) {
            Some(_) => hits += 1,
            None => {
                let _ = c.fill(&info);
            }
        }
    }
    hits
}

fn mshr_pressure(n: u64) -> u64 {
    let mut c = llc_cache();
    let mut acc = 0u64;
    for i in 0..n {
        match c.mshrs().acquire(i & 0xFF, i) {
            MshrGrant::Issue { slot, start_at } => {
                c.mshrs().complete(slot, i & 0xFF, start_at + 100);
                acc += start_at;
            }
            MshrGrant::Merged { completes_at } => acc += completes_at,
        }
    }
    acc
}

fn cache_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_micro");
    group.sample_size(20);
    group.bench_function("lookup_fill_cycle", |b| b.iter(|| lookup_fill_cycle(black_box(100_000))));
    group.bench_function("mshr_pressure", |b| b.iter(|| mshr_pressure(black_box(100_000))));
    group.finish();
}

criterion_group!(benches, cache_micro);
criterion_main!(benches);
