//! Microbenchmarks of raw policy decision throughput: fill/hit/victim
//! cycles driven directly, isolating the policies from the cache model.

use ccsim_policies::{AccessInfo, AccessType, PolicyKind, Victim};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Drives `n` pseudo-random policy events and returns a checksum of
/// victim ways (defeats dead-code elimination).
fn drive(policy: PolicyKind, sets: u32, ways: u32, n: u64) -> u64 {
    let mut p = policy.build(sets, ways);
    let mut filled = vec![0u32; sets as usize];
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut sum = 0u64;
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let set = (state >> 33) as u32 % sets;
        let block = (state >> 17) & 0xFFFFF;
        let pc = 0x400000 + ((state >> 7) & 0x3F) * 4;
        let info = AccessInfo {
            pc,
            block,
            set,
            kind: if state & 0xF == 0 { AccessType::Writeback } else { AccessType::Load },
        };
        if filled[set as usize] < ways {
            let way = filled[set as usize];
            filled[set as usize] += 1;
            p.on_fill(set, way, &info, None);
        } else if state & 1 == 0 {
            match p.victim(set, &info, &[]) {
                Victim::Way(w) => {
                    sum += w as u64;
                    p.on_fill(set, w, &info, Some(block ^ 1));
                }
                Victim::Bypass => sum += 100,
            }
        } else {
            p.on_hit(set, (state >> 45) as u32 % ways, &info);
        }
    }
    sum
}

fn policy_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_micro");
    group.sample_size(20);
    for policy in PolicyKind::ALL {
        group.bench_function(policy.name(), |b| {
            b.iter(|| drive(black_box(policy), 256, 11, 50_000))
        });
    }
    group.finish();
}

criterion_group!(benches, policy_micro);
criterion_main!(benches);
