//! Benchmarks of the synthetic graph generators (trace-production cost is
//! part of the experiment budget, so generator throughput matters).

use ccsim_graph::generators;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn graph_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_gen");
    group.sample_size(10);
    let scale = 13;
    group.bench_function("uniform", |b| b.iter(|| generators::uniform(black_box(scale), 8, 1)));
    group.bench_function("kronecker", |b| b.iter(|| generators::kronecker(black_box(scale), 8, 1)));
    group.bench_function("road", |b| b.iter(|| generators::road(black_box(scale), 1)));
    group.bench_function("power_law", |b| {
        b.iter(|| generators::power_law(black_box(scale), 8, 1.85, 1))
    });
    group.bench_function("web", |b| b.iter(|| generators::web(black_box(scale), 8, 1)));
    group.finish();
}

criterion_group!(benches, graph_gen);
criterion_main!(benches);
