//! Microbenchmarks of the DDR4 model under contrasting address streams.

use ccsim_core::{Dram, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn stream_pattern(n: u64) -> u64 {
    let mut d = Dram::new(SimConfig::cascade_lake().dram);
    let mut t = 0;
    for b in 0..n {
        t = d.access(b, t, false);
    }
    t
}

fn random_pattern(n: u64) -> u64 {
    let mut d = Dram::new(SimConfig::cascade_lake().dram);
    let mut state = 0x9E37_79B9u64;
    let mut t = 0;
    let mut last = 0;
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        last = d.access(state >> 30, t, state & 8 == 0);
        t += 10;
    }
    last
}

fn dram_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_micro");
    group.sample_size(30);
    group.bench_function("sequential_row_hits", |b| b.iter(|| stream_pattern(black_box(100_000))));
    group.bench_function("random_row_conflicts", |b| b.iter(|| random_pattern(black_box(100_000))));
    group.finish();
}

criterion_group!(benches, dram_micro);
criterion_main!(benches);
