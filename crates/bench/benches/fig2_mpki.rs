//! Criterion benchmark for the Figure 2 pipeline: measures the MPKI
//! characterization path (simulate a GAP trace under LRU) at quick scale
//! and reports the measured MPKI once per workload so the series can be
//! eyeballed alongside the timing. The full-fidelity table comes from the
//! `fig2` binary.

use ccsim_core::{simulate, SimConfig};
use ccsim_policies::PolicyKind;
use ccsim_workloads::{GapGraph, GapKernel, GapScale, GapWorkload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig2_mpki(c: &mut Criterion) {
    let config = SimConfig::cascade_lake();
    let mut group = c.benchmark_group("fig2_mpki");
    group.sample_size(10);
    for (kernel, graph) in [
        (GapKernel::Bfs, GapGraph::Kron),
        (GapKernel::Pr, GapGraph::Urand),
        (GapKernel::Cc, GapGraph::Twitter),
        (GapKernel::Sssp, GapGraph::Road),
        (GapKernel::Bc, GapGraph::Web),
        (GapKernel::Tc, GapGraph::Friendster),
    ] {
        let w = GapWorkload { kernel, graph };
        let trace = w.trace(GapScale::Quick);
        let r = simulate(&trace, &config, PolicyKind::Lru);
        eprintln!(
            "fig2[{w}]: mpki l1d={:.1} l2={:.1} llc={:.1}",
            r.mpki_l1d(),
            r.mpki_l2(),
            r.mpki_llc()
        );
        group.bench_function(w.to_string(), |b| {
            b.iter(|| simulate(black_box(&trace), &config, PolicyKind::Lru))
        });
    }
    group.finish();
}

criterion_group!(benches, fig2_mpki);
criterion_main!(benches);
