//! Ablation benchmarks for design choices called out in DESIGN.md:
//!
//! * DRRIP's set-dueling vs its fixed components (SRRIP, BRRIP) on a
//!   thrashing stream — dueling should track the better component;
//! * SHiP vs plain SRRIP on a stream with learnable dead PCs;
//! * Hawkeye vs Glider vs MPPPB (different predictors over comparable
//!   training signals) on a PC-history-sensitive mix.
//!
//! Each benchmark prints the LLC hit rates once (the quality axis) and
//! measures simulation time (the cost axis).

use ccsim_core::{simulate, SimConfig};
use ccsim_policies::PolicyKind;
use ccsim_trace::synth::{PatternGen, PointerChase, SequentialStream};
use ccsim_trace::{Trace, TraceBuffer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn thrash_trace() -> Trace {
    let mut buf = TraceBuffer::new("thrash2mb");
    SequentialStream::new(0x1000_0000, 2 << 20).stride(64).laps(6).emit(&mut buf);
    buf.finish()
}

fn dead_pc_trace() -> Trace {
    let mut buf = TraceBuffer::new("dead_pcs");
    for lap in 0..4u64 {
        // PC A: streaming (dead on arrival), PC B: tight reuse.
        SequentialStream::new(0x1000_0000 + lap * (4 << 20), 4 << 20)
            .stride(64)
            .sites(0x100, 0x104)
            .emit(&mut buf);
        SequentialStream::new(0x4000_0000, 512 << 10)
            .stride(64)
            .laps(2)
            .sites(0x200, 0x204)
            .emit(&mut buf);
    }
    buf.finish()
}

fn history_trace() -> Trace {
    let mut buf = TraceBuffer::new("history_mix");
    for phase in 0..6u64 {
        PointerChase::new(0x1000_0000, 1 << 14, 64)
            .steps(40_000)
            .seed(phase)
            .site(0x300 + phase * 4)
            .emit(&mut buf);
        SequentialStream::new(0x8000_0000, 1 << 20)
            .stride(64)
            .sites(0x400 + phase * 4, 0x404 + phase * 4)
            .emit(&mut buf);
    }
    buf.finish()
}

fn bench_policies(c: &mut Criterion, group_name: &str, trace: &Trace, policies: &[PolicyKind]) {
    let config = SimConfig::cascade_lake();
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &p in policies {
        let r = simulate(trace, &config, p);
        eprintln!(
            "{group_name}[{}]: llc hit rate {:.3}, ipc {:.3}",
            p.name(),
            r.llc.hit_rate(),
            r.ipc()
        );
        group.bench_function(p.name(), |b| b.iter(|| simulate(black_box(trace), &config, p)));
    }
    group.finish();
}

fn ablation(c: &mut Criterion) {
    bench_policies(
        c,
        "ablation_dueling",
        &thrash_trace(),
        &[PolicyKind::Srrip, PolicyKind::Brrip, PolicyKind::Drrip],
    );
    bench_policies(
        c,
        "ablation_signature",
        &dead_pc_trace(),
        &[PolicyKind::Srrip, PolicyKind::Ship],
    );
    bench_policies(
        c,
        "ablation_predictor",
        &history_trace(),
        &[PolicyKind::Hawkeye, PolicyKind::Glider, PolicyKind::Mpppb],
    );
}

criterion_group!(benches, ablation);
criterion_main!(benches);
