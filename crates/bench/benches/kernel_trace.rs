//! Benchmarks of instrumented-kernel trace capture (arena overhead plus
//! algorithm execution).

use ccsim_graph::{generators, traced};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn kernel_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_trace");
    group.sample_size(10);
    let g = generators::kronecker(12, 8, 7);
    let gw = generators::uniform(12, 8, 7).with_random_weights(64, 3);
    let gt = g.transpose();
    group.bench_function("bfs", |b| b.iter(|| traced::bfs(black_box(&g), 0)));
    group.bench_function("pagerank_2iter", |b| {
        b.iter(|| traced::pagerank(black_box(&g), &gt, 2, 0.85))
    });
    group.bench_function("cc", |b| b.iter(|| traced::connected_components(black_box(&g))));
    group.bench_function("sssp", |b| b.iter(|| traced::sssp(black_box(&gw), 0, 16)));
    group.bench_function("bc", |b| b.iter(|| traced::betweenness(black_box(&g), &[0])));
    group.bench_function("tc", |b| b.iter(|| traced::triangle_count(black_box(&g))));
    group.finish();
}

criterion_group!(benches, kernel_trace);
criterion_main!(benches);
