//! SPEC CPU 2006/2017-like workload proxies.
//!
//! We cannot redistribute SPEC traces; these proxies reproduce the property
//! the paper's argument rests on: *many distinct PCs, each with a stable,
//! learnable reuse behaviour*. Streaming PCs produce dead-on-arrival
//! blocks, loop-blocked PCs produce near reuse, pointer-chasing PCs produce
//! far reuse — exactly the signal SHiP/Hawkeye/Glider/MPPPB were designed
//! to exploit (and which graph kernels lack).
//!
//! Each proxy models the dominant behaviours reported for a real SPEC
//! benchmark (named in its constructor) rather than claiming instruction-
//! level fidelity.

use ccsim_trace::synth::{
    AccessDistribution, PatternGen, PointerChase, RandomAccess, SequentialStream, StackWalk,
};
use ccsim_trace::{Trace, TraceBuffer};

/// Trace-size preset for the synthetic suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteScale {
    /// Figure-quality length (~1-2 M memory records per workload).
    Full,
    /// Short traces for tests and micro-benchmarks.
    Quick,
}

impl SuiteScale {
    /// Multiplier applied to per-phase repetition counts.
    fn reps(self) -> u64 {
        match self {
            SuiteScale::Full => 8,
            SuiteScale::Quick => 1,
        }
    }

    /// Stable lowercase name (`"full"` / `"quick"`), used in campaign
    /// specs and trace-cache keys.
    pub fn name(self) -> &'static str {
        match self {
            SuiteScale::Full => "full",
            SuiteScale::Quick => "quick",
        }
    }
}

impl std::fmt::Display for SuiteScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SuiteScale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(SuiteScale::Full),
            "quick" => Ok(SuiteScale::Quick),
            other => Err(format!("unknown scale {other:?}, expected \"quick\" or \"full\"")),
        }
    }
}

/// Names of the SPEC-like proxy workloads, in suite order.
pub const SPEC_NAMES: [&str; 8] = [
    "spec.stream",
    "spec.blocked",
    "spec.chase",
    "spec.hotcold",
    "spec.stack",
    "spec.scanreuse",
    "spec.blocked2",
    "spec.phased",
];

/// Builds one member of the SPEC-like suite by name, or `None` if the name
/// is not in [`SPEC_NAMES`]. `seed` perturbs the stochastic phases of the
/// proxy (0 reproduces the paper's traces); purely streaming members are
/// seed-insensitive by construction.
pub fn spec_workload(name: &str, scale: SuiteScale, seed: u64) -> Option<Trace> {
    let r = scale.reps();
    Some(match name {
        "spec.stream" => stream_heavy(name, r),
        "spec.blocked" => blocked_loops(name, r),
        "spec.chase" => pointer_chaser(name, r, seed),
        "spec.hotcold" => hot_cold(name, r, seed),
        "spec.stack" => stack_and_scan(name, r, seed),
        "spec.scanreuse" => scan_with_reuse(name, r),
        "spec.blocked2" => blocked_loops_large(name, r),
        "spec.phased" => mixed_phases(name, r, seed),
        _ => return None,
    })
}

/// Base of the synthetic data segment for proxy workloads.
const DATA: u64 = 0x1000_0000;
/// Code-region stride separating each phase's PC sites.
const CODE_STRIDE: u64 = 0x1000;

fn pcs(phase: u64) -> (u64, u64) {
    let base = 0x40_0000 + phase * CODE_STRIDE;
    (base, base + 4)
}

/// Builds the SPEC-like proxy suite.
pub fn spec_suite(scale: SuiteScale) -> Vec<Trace> {
    SPEC_NAMES.iter().map(|n| spec_workload(n, scale, 0).expect("listed member")).collect()
}

/// `libquantum`/`lbm`-like: several long unit-stride streams, each from its
/// own PC, with a store stream. Dead-on-arrival at the LLC.
fn stream_heavy(name: &str, reps: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    for _ in 0..reps {
        for arr in 0..4u64 {
            let (pl, ps) = pcs(arr);
            SequentialStream::new(DATA + arr * (8 << 20), 4 << 20)
                .stride(8)
                .store_every(if arr % 2 == 1 { 4 } else { 0 })
                .work(3)
                .sites(pl, ps)
                .emit(&mut buf);
        }
    }
    buf.finish()
}

/// `gcc`/`gems`-like: a working set slightly larger than the LLC swept
/// repeatedly — the cyclic-thrash pattern where LRU gets zero hits but
/// scan-resistant policies retain a useful fraction.
fn blocked_loops(name: &str, reps: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    // 2 MB working set vs 1.375 MB LLC, swept one access per block, split
    // across four arrays each owned by its own loop (distinct PCs).
    for _ in 0..12 * reps {
        for arr in 0..4u64 {
            let (pl, ps) = pcs(10 + arr);
            SequentialStream::new(DATA + arr * (512 << 10), 512 << 10)
                .stride(64)
                .store_every(if arr == 2 { 8 } else { 0 })
                .work(6)
                .sites(pl, ps)
                .emit(&mut buf);
        }
    }
    buf.finish()
}

/// Larger blocked variant (4 MB): deeper into the thrash regime.
fn blocked_loops_large(name: &str, reps: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    for _ in 0..6 * reps {
        for arr in 0..4u64 {
            let (pl, ps) = pcs(15 + arr);
            SequentialStream::new(DATA + arr * (1 << 20), 1 << 20)
                .stride(64)
                .store_every(if arr == 1 { 6 } else { 0 })
                .work(6)
                .sites(pl, ps)
                .emit(&mut buf);
        }
    }
    buf.finish()
}

/// `mcf`/`xalancbmk`-like: dominant pointer chase over an 8 MB pool with a
/// hot stack and a small streaming side-channel.
fn pointer_chaser(name: &str, reps: u64, seed: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    let (pc_chase, _) = pcs(20);
    for phase in 0..reps {
        PointerChase::new(DATA, 1 << 17, 64)
            .steps(120_000)
            .seed(phase ^ seed)
            .work(5)
            .site(pc_chase)
            .emit(&mut buf);
        StackWalk::new(0x7FFF_0000_0000, 8)
            .calls(4_000)
            .seed(phase ^ seed)
            .sites(0x40_2000, 0x40_2004)
            .emit(&mut buf);
        let (pl, ps) = pcs(21 + phase);
        SequentialStream::new(DATA + (64 << 20), 256 << 10).work(2).sites(pl, ps).emit(&mut buf);
    }
    buf.finish()
}

/// `omnetpp`-like: Zipf-skewed random access over 16 MB — the hot head fits
/// in the LLC if the policy can keep it there against the cold tail.
fn hot_cold(name: &str, reps: u64, seed: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    let (pl, ps) = pcs(30);
    RandomAccess::new(DATA, 1 << 18, 64, 250_000 * reps)
        .distribution(AccessDistribution::Zipf(0.9))
        .store_fraction(0.2)
        .work(5)
        .seed(7 ^ seed)
        .sites(pl, ps)
        .emit(&mut buf);
    buf.finish()
}

/// `perlbench`-like: deep call stacks and small-footprint scans — high
/// baseline hit rate, little for any policy to improve.
fn stack_and_scan(name: &str, reps: u64, seed: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    for phase in 0..reps {
        StackWalk::new(0x7FFF_0000_0000, 16)
            .calls(30_000)
            .max_depth(24)
            .seed(phase ^ seed)
            .sites(0x40_4000, 0x40_4004)
            .emit(&mut buf);
        let (pl, ps) = pcs(40 + phase % 4);
        SequentialStream::new(DATA + phase % 4 * (1 << 20), 128 << 10)
            .laps(4)
            .work(4)
            .sites(pl, ps)
            .emit(&mut buf);
    }
    buf.finish()
}

/// `lbm`-like with re-reference: one big stream plus a second PC that
/// re-reads a fixed 512 KB subset every lap (learnable near reuse).
fn scan_with_reuse(name: &str, reps: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    for _ in 0..reps {
        let (pl, ps) = pcs(50);
        SequentialStream::new(DATA, 8 << 20).stride(64).work(3).sites(pl, ps).emit(&mut buf);
        let (pl2, ps2) = pcs(51);
        SequentialStream::new(DATA + (32 << 20), 512 << 10)
            .stride(64)
            .laps(4)
            .store_every(8)
            .work(3)
            .sites(pl2, ps2)
            .emit(&mut buf);
    }
    buf.finish()
}

/// Multi-phase composite alternating all behaviours (phase-change stress
/// for adaptive policies like DRRIP's dueling).
fn mixed_phases(name: &str, reps: u64, seed: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    for phase in 0..3 * reps {
        let (pl, ps) = pcs(60 + phase % 8);
        match phase % 3 {
            0 => SequentialStream::new(DATA, 2 << 20)
                .stride(64)
                .laps(4)
                .work(4)
                .sites(pl, ps)
                .emit(&mut buf),
            1 => RandomAccess::new(DATA + (16 << 20), 1 << 15, 64, 80_000)
                .work(4)
                .seed(phase ^ seed)
                .sites(pl, ps)
                .emit(&mut buf),
            _ => PointerChase::new(DATA + (32 << 20), 1 << 14, 64)
                .steps(60_000)
                .seed(phase ^ seed)
                .work(4)
                .site(pl)
                .emit(&mut buf),
        }
    }
    buf.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn suite_has_eight_named_workloads() {
        let suite = spec_suite(SuiteScale::Quick);
        assert_eq!(suite.len(), 8);
        let names: Vec<_> = suite.iter().map(|t| t.name().to_owned()).collect();
        assert!(names.iter().all(|n| n.starts_with("spec.")));
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(dedup, names, "names must be unique");
    }

    #[test]
    fn spec_proxies_have_pc_diversity() {
        // The decisive contrast with GAP: an order of magnitude more PCs.
        let suite = spec_suite(SuiteScale::Quick);
        let total_pcs: u64 = suite.iter().map(|t| TraceStats::compute(t).distinct_pcs).sum();
        assert!(total_pcs >= 20, "suite pcs {total_pcs}");
    }

    #[test]
    fn blocked_working_set_exceeds_llc() {
        let t = blocked_loops("x", 1);
        let stats = TraceStats::compute(&t);
        assert!(stats.footprint_bytes > 1_375_000 && stats.footprint_bytes < (4 << 20));
    }

    #[test]
    fn full_scale_is_larger() {
        let q = spec_suite(SuiteScale::Quick);
        let f = spec_suite(SuiteScale::Full);
        for (a, b) in q.iter().zip(&f) {
            assert!(b.len() > a.len(), "{}", a.name());
        }
    }
}
