//! GAP benchmark suite workload assembly: kernel x input-graph
//! combinations matching the paper's Figure 2 x-axis.

use std::fmt;
use std::str::FromStr;

use ccsim_graph::{generators, traced, Graph};
use ccsim_trace::Trace;

/// The six GAP kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GapKernel {
    /// Betweenness centrality (Brandes).
    Bc,
    /// Breadth-first search (direction-optimizing).
    Bfs,
    /// Connected components (Shiloach–Vishkin).
    Cc,
    /// PageRank (pull).
    Pr,
    /// Single-source shortest paths (delta-stepping).
    Sssp,
    /// Triangle counting (ordered merge).
    Tc,
}

impl GapKernel {
    /// All kernels in the paper's figure order.
    pub const ALL: [GapKernel; 6] = [
        GapKernel::Bc,
        GapKernel::Bfs,
        GapKernel::Cc,
        GapKernel::Pr,
        GapKernel::Sssp,
        GapKernel::Tc,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            GapKernel::Bc => "bc",
            GapKernel::Bfs => "bfs",
            GapKernel::Cc => "cc",
            GapKernel::Pr => "pr",
            GapKernel::Sssp => "sssp",
            GapKernel::Tc => "tc",
        }
    }
}

/// The six GAP input graphs, reproduced as scaled synthetic classes (see
/// `ccsim_graph::generators` for the class mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GapGraph {
    /// Friendster social network: power law, highest degree.
    Friendster,
    /// Graph500 Kronecker.
    Kron,
    /// USA road network: constant degree 4, huge diameter.
    Road,
    /// Twitter follower graph: heavy power law.
    Twitter,
    /// Uniform random.
    Urand,
    /// Web crawl (sk-2005): power law with host locality.
    Web,
}

impl GapGraph {
    /// All graphs in the paper's figure order.
    pub const ALL: [GapGraph; 6] = [
        GapGraph::Friendster,
        GapGraph::Kron,
        GapGraph::Road,
        GapGraph::Twitter,
        GapGraph::Urand,
        GapGraph::Web,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            GapGraph::Friendster => "friendster",
            GapGraph::Kron => "kron",
            GapGraph::Road => "road",
            GapGraph::Twitter => "twitter",
            GapGraph::Urand => "urand",
            GapGraph::Web => "web",
        }
    }

    /// Builds the synthetic stand-in at `2^scale` vertices. Degrees are
    /// kept moderate (5-6) so that, at fixed trace length, vertex counts —
    /// and with them the randomly-accessed property-array footprints — are
    /// as large as the simulation budget allows.
    pub fn build(self, scale: u32, seed: u64) -> Graph {
        match self {
            GapGraph::Friendster => generators::power_law(scale, 6, 1.85, seed),
            GapGraph::Kron => generators::kronecker(scale, 6, seed),
            GapGraph::Road => generators::road(scale, seed),
            GapGraph::Twitter => generators::power_law(scale, 5, 1.8, seed),
            GapGraph::Urand => generators::uniform(scale, 6, seed),
            GapGraph::Web => generators::web(scale, 6, seed),
        }
    }
}

/// Trace-size preset: `Full` regenerates the figures, `Quick` keeps tests
/// and Criterion benches fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapScale {
    /// Figure-quality scale: property arrays exceed the 1.375 MB LLC.
    Full,
    /// Small graphs for unit tests and micro-benchmarks.
    Quick,
}

/// One GAP workload: a kernel applied to an input graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GapWorkload {
    /// The kernel.
    pub kernel: GapKernel,
    /// The input graph.
    pub graph: GapGraph,
}

impl fmt::Display for GapWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.kernel.name(), self.graph.name())
    }
}

impl FromStr for GapWorkload {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (k, g) = s.split_once('.').ok_or_else(|| format!("expected kernel.graph: {s}"))?;
        let kernel = GapKernel::ALL
            .into_iter()
            .find(|x| x.name() == k)
            .ok_or_else(|| format!("unknown kernel {k}"))?;
        let graph = GapGraph::ALL
            .into_iter()
            .find(|x| x.name() == g)
            .ok_or_else(|| format!("unknown graph {g}"))?;
        Ok(GapWorkload { kernel, graph })
    }
}

impl GapWorkload {
    /// Graph scale (log2 vertices) for this kernel at the given preset.
    /// Heavier kernels get smaller graphs so trace lengths stay comparable.
    pub fn scale(&self, preset: GapScale) -> u32 {
        let full = match self.kernel {
            GapKernel::Bfs => 20,
            GapKernel::Cc => 18,
            GapKernel::Pr => 19,
            GapKernel::Sssp => 17,
            GapKernel::Bc => 17,
            GapKernel::Tc => 13,
        };
        match preset {
            GapScale::Full => full,
            GapScale::Quick => full.saturating_sub(6).max(8),
        }
    }

    /// Runs the instrumented kernel and returns its trace, named
    /// `kernel.graph`.
    pub fn trace(&self, preset: GapScale) -> Trace {
        self.trace_seeded(preset, 0)
    }

    /// Like [`GapWorkload::trace`], but perturbs graph synthesis with
    /// `extra_seed` (0 reproduces the paper's graphs exactly).
    pub fn trace_seeded(&self, preset: GapScale, extra_seed: u64) -> Trace {
        const GAP_SEED: u64 = 0x6A50_5EED;
        let seed = GAP_SEED
            ^ ((self.kernel as u64) << 8)
            ^ self.graph as u64
            ^ extra_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let scale = self.scale(preset);
        let g = self.graph.build(scale, seed);
        let source = hub_vertex(&g);
        let mut trace = match self.kernel {
            GapKernel::Bfs => traced::bfs(&g, source).0,
            GapKernel::Cc => traced::connected_components(&g).0,
            GapKernel::Pr => {
                let t = g.transpose();
                traced::pagerank(&g, &t, 2, 0.85).0
            }
            GapKernel::Sssp => {
                let gw = g.with_random_weights(64, seed);
                traced::sssp(&gw, source, 16).0
            }
            GapKernel::Bc => traced::betweenness(&g, &[source]).0,
            GapKernel::Tc => traced::triangle_count(&g).0,
        };
        trace.set_name(self.to_string());
        trace
    }
}

/// The 35 kernel/graph combinations of the paper's Figure 2 (every pair
/// except `sssp.friendster`, absent from the figure).
pub fn paper_workloads() -> Vec<GapWorkload> {
    let mut v = Vec::new();
    for kernel in GapKernel::ALL {
        for graph in GapGraph::ALL {
            if kernel == GapKernel::Sssp && graph == GapGraph::Friendster {
                continue;
            }
            v.push(GapWorkload { kernel, graph });
        }
    }
    v
}

/// Highest-degree vertex: a deterministic "interesting" traversal source
/// (GAP samples random non-isolated sources; hubs maximize coverage).
fn hub_vertex(g: &Graph) -> u32 {
    (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn paper_workload_list_matches_figure() {
        let w = paper_workloads();
        assert_eq!(w.len(), 35);
        assert!(!w.iter().any(|x| x.to_string() == "sssp.friendster"));
        assert!(w.iter().any(|x| x.to_string() == "bc.friendster"));
        assert!(w.iter().any(|x| x.to_string() == "tc.web"));
    }

    #[test]
    fn workload_names_parse_roundtrip() {
        for w in paper_workloads() {
            let parsed: GapWorkload = w.to_string().parse().unwrap();
            assert_eq!(parsed, w);
        }
        assert!("bogus".parse::<GapWorkload>().is_err());
        assert!("bfs.mars".parse::<GapWorkload>().is_err());
    }

    #[test]
    fn quick_traces_have_graph_signature() {
        let w = GapWorkload { kernel: GapKernel::Bfs, graph: GapGraph::Kron };
        let t = w.trace(GapScale::Quick);
        assert_eq!(t.name(), "bfs.kron");
        let stats = TraceStats::compute(&t);
        assert!(stats.distinct_pcs <= 12, "pcs {}", stats.distinct_pcs);
        assert!(t.len() > 1000);
    }

    #[test]
    fn every_kernel_produces_a_quick_trace() {
        for kernel in GapKernel::ALL {
            let w = GapWorkload { kernel, graph: GapGraph::Urand };
            let t = w.trace(GapScale::Quick);
            assert!(!t.is_empty(), "{w} produced an empty trace");
        }
    }

    #[test]
    fn graph_builders_honor_scale() {
        for graph in GapGraph::ALL {
            let g = graph.build(10, 1);
            assert_eq!(g.num_vertices(), 1024, "{}", graph.name());
        }
    }
}
