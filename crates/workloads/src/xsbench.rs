//! XSBench-like workload proxies.
//!
//! XSBench (the Monte Carlo neutron-transport mini-app) is dominated by a
//! single loop: sample a particle energy, binary-search the unionized
//! energy grid, then gather cross-section data for every nuclide at that
//! grid point. The result is a tiny PC set probing a multi-hundred-MB
//! table uniformly at random — no policy can do much, which is exactly the
//! paper's point for this suite.

use ccsim_trace::synth::{BinarySearchProbe, PatternGen};
use ccsim_trace::{Trace, TraceBuffer};

use crate::spec::SuiteScale;

/// Names of the XSBench-like proxy workloads, in suite order.
pub const XSBENCH_NAMES: [&str; 3] = ["xsbench.small", "xsbench.large", "xsbench.xl"];

/// Builds the XSBench-like proxy suite (three problem sizes).
pub fn xsbench_suite(scale: SuiteScale) -> Vec<Trace> {
    XSBENCH_NAMES.iter().map(|n| xsbench_workload(n, scale, 0).expect("listed member")).collect()
}

/// Builds one member of the XSBench-like suite by name, or `None` if the
/// name is not in [`XSBENCH_NAMES`]. `seed` perturbs the lookup sequence
/// (0 reproduces the paper's traces).
pub fn xsbench_workload(name: &str, scale: SuiteScale, seed: u64) -> Option<Trace> {
    let probes = match scale {
        SuiteScale::Full => 60_000,
        SuiteScale::Quick => 3_000,
    };
    Some(match name {
        "xsbench.small" => lookup_workload(name, 1 << 17, 16 << 10, probes, seed),
        "xsbench.large" => lookup_workload(name, 1 << 20, 64 << 10, probes, seed),
        "xsbench.xl" => lookup_workload(name, 1 << 22, 64 << 10, probes / 2, seed),
        _ => return None,
    })
}

/// One XSBench configuration: `grid_points` grid entries (8 B keys) and a
/// nuclide payload region; each lookup binary-searches the grid then reads
/// a 128 B cross-section bundle.
fn lookup_workload(
    name: &str,
    grid_points: u64,
    payload_entries: u64,
    probes: u64,
    seed: u64,
) -> Trace {
    let mut buf = TraceBuffer::new(name);
    let grid_base = 0x2000_0000;
    let payload_base = grid_base + grid_points * 8 + (1 << 20);
    BinarySearchProbe::new(grid_base, grid_points, 8, payload_base, 128)
        .probes(probes)
        .seed(grid_points ^ seed) // distinct but deterministic per size
        .emit(&mut buf);
    let _ = payload_entries;
    buf.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn suite_has_three_sizes() {
        let suite = xsbench_suite(SuiteScale::Quick);
        assert_eq!(suite.len(), 3);
        assert!(suite.iter().all(|t| t.name().starts_with("xsbench.")));
    }

    #[test]
    fn tiny_pc_set_like_graph_workloads() {
        for t in xsbench_suite(SuiteScale::Quick) {
            let s = TraceStats::compute(&t);
            assert!(s.distinct_pcs <= 3, "{}: {}", t.name(), s.distinct_pcs);
        }
    }

    #[test]
    fn footprint_grows_with_problem_size() {
        let suite = xsbench_suite(SuiteScale::Quick);
        let f: Vec<u64> = suite.iter().map(|t| TraceStats::compute(t).footprint_bytes).collect();
        assert!(f[1] > f[0], "large > small");
    }
}
