//! Qualcomm-server-like workload proxies.
//!
//! The paper's fourth suite comes from the Qualcomm Server traces
//! (CVP-1-style datacenter binaries): very large code footprints, hundreds
//! of active PCs, and a mixture of regular and irregular data accesses with
//! modest per-PC footprints — learnable, but noisier than SPEC. We model
//! that middle ground: many phases, each with its own PC set, alternating
//! hot structures, streams, chases and stack traffic.

use ccsim_trace::synth::{
    AccessDistribution, PatternGen, PointerChase, RandomAccess, SequentialStream, StackWalk,
};
use ccsim_trace::{Trace, TraceBuffer};

use crate::spec::SuiteScale;

/// Names of the Qualcomm-server-like proxy workloads, in suite order.
pub const QUALCOMM_NAMES: [&str; 5] =
    ["qcom.srv0", "qcom.srv1", "qcom.srv2", "qcom.srv3", "qcom.srv4"];

/// Builds the Qualcomm-server-like proxy suite.
pub fn qualcomm_suite(scale: SuiteScale) -> Vec<Trace> {
    QUALCOMM_NAMES.iter().map(|n| qualcomm_workload(n, scale, 0).expect("listed member")).collect()
}

/// Builds one member of the Qualcomm-like suite by name, or `None` if the
/// name is not in [`QUALCOMM_NAMES`]. `seed` perturbs the stochastic
/// request mix (0 reproduces the paper's traces).
pub fn qualcomm_workload(name: &str, scale: SuiteScale, seed: u64) -> Option<Trace> {
    let reps = match scale {
        SuiteScale::Full => 6,
        SuiteScale::Quick => 1,
    };
    let variant = QUALCOMM_NAMES.iter().position(|n| *n == name)? as u64;
    Some(server_workload(name, variant, reps, seed))
}

/// One server workload: interleaved request-processing phases. Each phase
/// uses its own code region (distinct PCs), touches a per-request buffer,
/// consults shared hot tables (Zipf), and walks session objects.
fn server_workload(name: &str, variant: u64, reps: u64, seed: u64) -> Trace {
    let mut buf = TraceBuffer::new(name);
    let data = 0x4000_0000 + variant * (1 << 30);
    // Per-variant service characteristics: table skew and sizes differ so
    // the five servers stress the hierarchy differently.
    let theta = 0.75 + 0.1 * variant as f64;
    let table_entries = 1u64 << (15 + variant % 3);
    let session_nodes = 1u64 << (12 + variant % 3);
    let req_buffer = (16 << 10) << (variant % 2);
    for r in 0..reps {
        for req in 0..12u64 {
            let code = 0x50_0000 + (variant * 101 + req * 13) % 97 * 0x200;
            // Request buffer: small stream, new address each request.
            SequentialStream::new(data + (r * 12 + req) % 64 * (256 << 10), req_buffer)
                .store_every(3)
                .work(3)
                .sites(code, code + 4)
                .emit(&mut buf);
            // Shared lookup tables: Zipf-hot.
            RandomAccess::new(data + (1 << 28), table_entries, 64, 2_000)
                .distribution(AccessDistribution::Zipf(theta))
                .work(6)
                .seed((variant * 1000 + r * 12 + req) ^ seed)
                .sites(code + 8, code + 12)
                .emit(&mut buf);
            // Session-object walk.
            PointerChase::new(data + (1 << 29), session_nodes, 128)
                .steps(1_500)
                .seed(req ^ seed)
                .work(4)
                .site(code + 16)
                .emit(&mut buf);
        }
        StackWalk::new(0x7FFF_4000_0000 + (variant << 20), 12)
            .calls(5_000)
            .seed(r ^ seed)
            .emit(&mut buf);
    }
    buf.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn suite_has_five_servers() {
        let suite = qualcomm_suite(SuiteScale::Quick);
        assert_eq!(suite.len(), 5);
    }

    #[test]
    fn many_pcs_distinguish_from_gap_and_xsbench() {
        for t in qualcomm_suite(SuiteScale::Quick) {
            let s = TraceStats::compute(&t);
            assert!(s.distinct_pcs > 30, "{}: pcs {}", t.name(), s.distinct_pcs);
        }
    }

    #[test]
    fn variants_differ() {
        let suite = qualcomm_suite(SuiteScale::Quick);
        assert_ne!(suite[0].records()[..100], suite[1].records()[..100]);
    }
}
