//! # ccsim-workloads
//!
//! Benchmark-suite assembly for the ccsim characterization study: the GAP
//! kernel x graph grid of the paper's Figure 2, plus the SPEC-like,
//! XSBench-like and Qualcomm-server-like proxy suites of Figure 3.
//!
//! # Example
//!
//! ```
//! use ccsim_workloads::{Suite, SuiteScale};
//!
//! let traces = Suite::XsBench.traces(SuiteScale::Quick);
//! assert_eq!(traces.len(), 3);
//! assert!(traces[0].name().starts_with("xsbench."));
//! ```

#![warn(missing_docs)]

pub mod gap;
pub mod qualcomm;
pub mod spec;
pub mod xsbench;

pub use gap::{paper_workloads, GapGraph, GapKernel, GapScale, GapWorkload};
pub use qualcomm::qualcomm_suite;
pub use spec::{spec_suite, SuiteScale};
pub use xsbench::xsbench_suite;

use ccsim_trace::Trace;

/// The four benchmark suites of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2006/2017 proxy.
    Spec,
    /// XSBench proxy.
    XsBench,
    /// Qualcomm server-trace proxy.
    Qualcomm,
    /// The GAP benchmark suite (kernels on synthetic inputs).
    Gapbs,
}

impl Suite {
    /// All suites in the paper's figure order.
    pub const ALL: [Suite; 4] = [Suite::Spec, Suite::XsBench, Suite::Qualcomm, Suite::Gapbs];

    /// Display name matching the figure.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Spec => "SPEC",
            Suite::XsBench => "XSBench",
            Suite::Qualcomm => "Qualcomm",
            Suite::Gapbs => "GAPBS",
        }
    }

    /// Number of workloads the suite materializes.
    pub fn len(self, _scale: SuiteScale) -> usize {
        match self {
            Suite::Spec => 8,
            Suite::XsBench => 3,
            Suite::Qualcomm => 5,
            Suite::Gapbs => paper_workloads().len(),
        }
    }

    /// Streams the suite's traces one at a time through `f`, so that at
    /// most one multi-million-record trace is alive at once. Prefer this
    /// over [`Suite::traces`] for the GAP suite at [`SuiteScale::Full`].
    pub fn for_each_trace(self, scale: SuiteScale, mut f: impl FnMut(Trace)) {
        match self {
            Suite::Spec => spec_suite(scale).into_iter().for_each(f),
            Suite::XsBench => xsbench_suite(scale).into_iter().for_each(f),
            Suite::Qualcomm => qualcomm_suite(scale).into_iter().for_each(f),
            Suite::Gapbs => {
                let gap_scale = match scale {
                    SuiteScale::Full => GapScale::Full,
                    SuiteScale::Quick => GapScale::Quick,
                };
                for w in paper_workloads() {
                    f(w.trace(gap_scale));
                }
            }
        }
    }

    /// Materializes all of the suite's traces at once.
    ///
    /// For `Gapbs` this runs the instrumented kernels over the full
    /// Figure 2 grid; at [`SuiteScale::Full`] that is several gigabytes of
    /// records — use [`Suite::for_each_trace`] instead there.
    pub fn traces(self, scale: SuiteScale) -> Vec<Trace> {
        let mut v = Vec::new();
        self.for_each_trace(scale, |t| v.push(t));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_match_figure_three() {
        let names: Vec<_> = Suite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["SPEC", "XSBench", "Qualcomm", "GAPBS"]);
    }

    #[test]
    fn non_gap_suites_materialize_quickly() {
        for suite in [Suite::Spec, Suite::XsBench, Suite::Qualcomm] {
            let traces = suite.traces(SuiteScale::Quick);
            assert!(!traces.is_empty());
            for t in &traces {
                assert!(!t.is_empty(), "{} has empty trace {}", suite.name(), t.name());
            }
        }
    }
}
