//! # ccsim-workloads
//!
//! Benchmark-suite assembly for the ccsim characterization study: the GAP
//! kernel x graph grid of the paper's Figure 2, plus the SPEC-like,
//! XSBench-like and Qualcomm-server-like proxy suites of Figure 3.
//!
//! # Example
//!
//! ```
//! use ccsim_workloads::{Suite, SuiteScale};
//!
//! let traces = Suite::XsBench.traces(SuiteScale::Quick);
//! assert_eq!(traces.len(), 3);
//! assert!(traces[0].name().starts_with("xsbench."));
//! ```

#![warn(missing_docs)]

pub mod gap;
pub mod qualcomm;
pub mod spec;
pub mod xsbench;

pub use gap::{paper_workloads, GapGraph, GapKernel, GapScale, GapWorkload};
pub use qualcomm::{qualcomm_suite, qualcomm_workload, QUALCOMM_NAMES};
pub use spec::{spec_suite, spec_workload, SuiteScale, SPEC_NAMES};
pub use xsbench::{xsbench_suite, xsbench_workload, XSBENCH_NAMES};

use ccsim_trace::Trace;

impl From<SuiteScale> for GapScale {
    fn from(scale: SuiteScale) -> GapScale {
        match scale {
            SuiteScale::Full => GapScale::Full,
            SuiteScale::Quick => GapScale::Quick,
        }
    }
}

/// Builds any workload the crate knows by its canonical name — a GAP
/// `kernel.graph` pair or a synthetic-suite member (`spec.*`, `xsbench.*`,
/// `qcom.srv*`) — without materializing the rest of its suite.
///
/// This is the single name-to-trace entry point shared by the CLI and the
/// campaign engine.
///
/// # Errors
///
/// Returns a message naming the unknown workload.
///
/// # Examples
///
/// ```
/// use ccsim_workloads::{build_workload, SuiteScale};
///
/// let t = build_workload("xsbench.small", SuiteScale::Quick).unwrap();
/// assert_eq!(t.name(), "xsbench.small");
/// assert!(build_workload("nope.nothing", SuiteScale::Quick).is_err());
/// ```
pub fn build_workload(name: &str, scale: SuiteScale) -> Result<Trace, String> {
    build_workload_seeded(name, scale, 0)
}

/// Like [`build_workload`], but perturbs the stochastic components of
/// synthesis with `seed` (0 reproduces the paper's traces exactly; purely
/// streaming proxies are seed-insensitive by construction). Campaigns
/// thread their spec seed through here, and the trace cache keys on it.
///
/// # Errors
///
/// Returns a message naming the unknown workload.
pub fn build_workload_seeded(name: &str, scale: SuiteScale, seed: u64) -> Result<Trace, String> {
    if let Ok(gap) = name.parse::<GapWorkload>() {
        return Ok(gap.trace_seeded(scale.into(), seed));
    }
    let unknown = || format!("unknown workload {name:?}; try `ccsim workloads`");
    match name.split('.').next() {
        Some("spec") => spec_workload(name, scale, seed).ok_or_else(unknown),
        Some("xsbench") => xsbench_workload(name, scale, seed).ok_or_else(unknown),
        Some("qcom") => qualcomm_workload(name, scale, seed).ok_or_else(unknown),
        _ => Err(unknown()),
    }
}

/// `true` if [`build_workload`] would succeed for `name`, without building
/// anything (used to validate campaign specs cheaply).
pub fn is_known_workload(name: &str) -> bool {
    name.parse::<GapWorkload>().is_ok()
        || SPEC_NAMES.contains(&name)
        || XSBENCH_NAMES.contains(&name)
        || QUALCOMM_NAMES.contains(&name)
}

/// The four benchmark suites of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2006/2017 proxy.
    Spec,
    /// XSBench proxy.
    XsBench,
    /// Qualcomm server-trace proxy.
    Qualcomm,
    /// The GAP benchmark suite (kernels on synthetic inputs).
    Gapbs,
}

impl Suite {
    /// All suites in the paper's figure order.
    pub const ALL: [Suite; 4] = [Suite::Spec, Suite::XsBench, Suite::Qualcomm, Suite::Gapbs];

    /// Display name matching the figure.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Spec => "SPEC",
            Suite::XsBench => "XSBench",
            Suite::Qualcomm => "Qualcomm",
            Suite::Gapbs => "GAPBS",
        }
    }

    /// Number of workloads the suite materializes.
    pub fn len(self, _scale: SuiteScale) -> usize {
        match self {
            Suite::Spec => 8,
            Suite::XsBench => 3,
            Suite::Qualcomm => 5,
            Suite::Gapbs => paper_workloads().len(),
        }
    }

    /// Canonical member workload names, in suite (figure) order. These are
    /// exactly the names [`build_workload`] accepts, and expanding them is
    /// free — no trace is materialized.
    pub fn member_names(self) -> Vec<String> {
        match self {
            Suite::Spec => SPEC_NAMES.iter().map(|s| (*s).to_owned()).collect(),
            Suite::XsBench => XSBENCH_NAMES.iter().map(|s| (*s).to_owned()).collect(),
            Suite::Qualcomm => QUALCOMM_NAMES.iter().map(|s| (*s).to_owned()).collect(),
            Suite::Gapbs => paper_workloads().iter().map(|w| w.to_string()).collect(),
        }
    }

    /// Resolves a suite selector name (`"spec"`, `"xsbench"`,
    /// `"qualcomm"`/`"qcom"`, `"gap"`/`"gapbs"`), case-sensitive lowercase.
    pub fn from_selector(s: &str) -> Option<Suite> {
        match s {
            "spec" => Some(Suite::Spec),
            "xsbench" => Some(Suite::XsBench),
            "qualcomm" | "qcom" => Some(Suite::Qualcomm),
            "gap" | "gapbs" => Some(Suite::Gapbs),
            _ => None,
        }
    }

    /// The suite a canonical workload name belongs to, by its prefix
    /// (anything that is not `spec.*` / `xsbench.*` / `qcom.*` is a GAP
    /// `kernel.graph` pair).
    pub fn of_workload(name: &str) -> Suite {
        match name.split('.').next() {
            Some("spec") => Suite::Spec,
            Some("xsbench") => Suite::XsBench,
            Some("qcom") => Suite::Qualcomm,
            _ => Suite::Gapbs,
        }
    }

    /// Streams the suite's traces one at a time through `f`, so that at
    /// most one multi-million-record trace is alive at once. Prefer this
    /// over [`Suite::traces`] for the GAP suite at [`SuiteScale::Full`].
    pub fn for_each_trace(self, scale: SuiteScale, mut f: impl FnMut(Trace)) {
        match self {
            Suite::Spec => spec_suite(scale).into_iter().for_each(f),
            Suite::XsBench => xsbench_suite(scale).into_iter().for_each(f),
            Suite::Qualcomm => qualcomm_suite(scale).into_iter().for_each(f),
            Suite::Gapbs => {
                for w in paper_workloads() {
                    f(w.trace(scale.into()));
                }
            }
        }
    }

    /// Materializes all of the suite's traces at once.
    ///
    /// For `Gapbs` this runs the instrumented kernels over the full
    /// Figure 2 grid; at [`SuiteScale::Full`] that is several gigabytes of
    /// records — use [`Suite::for_each_trace`] instead there.
    pub fn traces(self, scale: SuiteScale) -> Vec<Trace> {
        let mut v = Vec::new();
        self.for_each_trace(scale, |t| v.push(t));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_match_figure_three() {
        let names: Vec<_> = Suite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["SPEC", "XSBench", "Qualcomm", "GAPBS"]);
    }

    #[test]
    fn non_gap_suites_materialize_quickly() {
        for suite in [Suite::Spec, Suite::XsBench, Suite::Qualcomm] {
            let traces = suite.traces(SuiteScale::Quick);
            assert!(!traces.is_empty());
            for t in &traces {
                assert!(!t.is_empty(), "{} has empty trace {}", suite.name(), t.name());
            }
        }
    }

    #[test]
    fn member_names_match_generated_traces() {
        for suite in [Suite::Spec, Suite::XsBench, Suite::Qualcomm] {
            let names = suite.member_names();
            let generated: Vec<String> =
                suite.traces(SuiteScale::Quick).iter().map(|t| t.name().to_owned()).collect();
            assert_eq!(names, generated, "{}", suite.name());
        }
        assert_eq!(Suite::Gapbs.member_names().len(), 35);
    }

    #[test]
    fn build_workload_matches_suite_member_bytes() {
        // The per-name builder must produce the identical trace the whole-
        // suite builder does — the campaign trace cache depends on it.
        let from_suite = &qualcomm_suite(SuiteScale::Quick)[2];
        let direct = build_workload("qcom.srv2", SuiteScale::Quick).unwrap();
        assert_eq!(&direct, from_suite);
    }

    #[test]
    fn every_member_name_is_known() {
        for suite in Suite::ALL {
            for name in suite.member_names() {
                assert!(is_known_workload(&name), "{name}");
                assert_eq!(Suite::of_workload(&name), suite, "{name}");
            }
        }
        assert!(!is_known_workload("spec.nothing"));
        assert!(!is_known_workload("bfs.mars"));
    }

    #[test]
    fn seed_perturbs_stochastic_workloads() {
        // Seed 0 is the canonical (paper) trace...
        let canonical = build_workload("xsbench.small", SuiteScale::Quick).unwrap();
        let seeded0 = build_workload_seeded("xsbench.small", SuiteScale::Quick, 0).unwrap();
        assert_eq!(canonical, seeded0);
        // ...a different seed actually reaches synthesis...
        for name in ["xsbench.small", "qcom.srv0", "spec.hotcold", "bfs.kron"] {
            let a = build_workload_seeded(name, SuiteScale::Quick, 0).unwrap();
            let b = build_workload_seeded(name, SuiteScale::Quick, 0xDEAD).unwrap();
            assert_ne!(a, b, "{name}: seed must perturb the trace");
            let b2 = build_workload_seeded(name, SuiteScale::Quick, 0xDEAD).unwrap();
            assert_eq!(b, b2, "{name}: seeded synthesis must stay deterministic");
        }
        // ...and purely streaming proxies are seed-insensitive.
        let s0 = build_workload_seeded("spec.stream", SuiteScale::Quick, 0).unwrap();
        let s1 = build_workload_seeded("spec.stream", SuiteScale::Quick, 1).unwrap();
        assert_eq!(s0, s1);
    }

    #[test]
    fn suite_selectors_resolve() {
        assert_eq!(Suite::from_selector("spec"), Some(Suite::Spec));
        assert_eq!(Suite::from_selector("qcom"), Some(Suite::Qualcomm));
        assert_eq!(Suite::from_selector("qualcomm"), Some(Suite::Qualcomm));
        assert_eq!(Suite::from_selector("gap"), Some(Suite::Gapbs));
        assert_eq!(Suite::from_selector("gapbs"), Some(Suite::Gapbs));
        assert_eq!(Suite::from_selector("xsbench"), Some(Suite::XsBench));
        assert_eq!(Suite::from_selector("mars"), None);
    }

    #[test]
    fn suite_scale_parses_and_displays() {
        assert_eq!("quick".parse::<SuiteScale>().unwrap(), SuiteScale::Quick);
        assert_eq!("full".parse::<SuiteScale>().unwrap(), SuiteScale::Full);
        assert!("medium".parse::<SuiteScale>().is_err());
        assert_eq!(SuiteScale::Quick.to_string(), "quick");
    }
}
