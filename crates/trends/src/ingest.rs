//! Ingest: distilling the workspace's machine-readable documents into
//! the compact summaries a ledger entry stores.
//!
//! Each summary has two JSON faces: `from_doc` parses the *source*
//! document (`ccsim bench --json`, `report-diff --json`, an obs
//! manifest, or a watch view) and keeps only the fields trend tables
//! and gates consume; `to_json` / `from_entry_json` round-trip the
//! summary through the ledger line. Source parsing is strict about
//! schema identity (wrong document kinds are errors, not zeros) but
//! versions are accepted across the documented compatibility range —
//! in particular a v1 obs manifest without the pre-computed quantile
//! block still yields quantiles, derived from its raw histogram
//! buckets.

use ccsim_campaign::Json;
use ccsim_obs::{
    records_per_sec, QuantileSummary, HISTOGRAM_BUCKETS, OBS_MIN_SCHEMA_VERSION, OBS_SCHEMA_VERSION,
};

/// Oldest / newest `ccsim bench --json` schema this crate ingests
/// (v1 predates `wall_clock_breakdown` and `obs_overhead`; v3 adds the
/// `probe_scan` section, which the ledger does not distill yet).
pub const BENCH_MIN_SCHEMA: u64 = 1;
/// Newest accepted bench schema.
pub const BENCH_MAX_SCHEMA: u64 = 3;
/// The `report-diff --json` schema this crate ingests.
pub const DIFF_SCHEMA: u64 = 1;

fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer `{key}`"))
}

fn opt_u64(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn opt_f64(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn req_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn schema_in(doc: &Json, field: &str, min: u64, max: u64) -> Result<u64, String> {
    let v =
        doc.get(field).and_then(Json::as_u64).ok_or_else(|| format!("not a `{field}` document"))?;
    if (min..=max).contains(&v) {
        Ok(v)
    } else {
        Err(format!("unsupported {field} schema {v} (supported: {min}..={max})"))
    }
}

fn quantiles_to_json(q: &QuantileSummary) -> Json {
    Json::obj(vec![
        ("p50", Json::int(q.p50)),
        ("p90", Json::int(q.p90)),
        ("p99", Json::int(q.p99)),
        ("min", Json::int(q.min)),
        ("max", Json::int(q.max)),
        ("count", Json::int(q.count)),
    ])
}

fn quantiles_from_json(doc: &Json) -> QuantileSummary {
    QuantileSummary {
        p50: opt_u64(doc, "p50"),
        p90: opt_u64(doc, "p90"),
        p99: opt_u64(doc, "p99"),
        min: opt_u64(doc, "min"),
        max: opt_u64(doc, "max"),
        count: opt_u64(doc, "count"),
    }
}

/// The `campaign_cell_sim_ns` quantiles of one obs document: the
/// pre-computed v2 `quantiles` block when present, else derived from
/// the raw sparse `[index, count]` buckets (the v1 read path). `None`
/// when the histogram is absent entirely (telemetry disabled).
fn cell_sim_quantiles(doc: &Json) -> Option<QuantileSummary> {
    let hist = doc.get("histograms")?.get("campaign_cell_sim_ns")?;
    if let Some(q) = hist.get("quantiles") {
        // The manifest's quantile block sits next to the histogram's
        // own `count` and does not repeat it.
        return Some(QuantileSummary { count: opt_u64(hist, "count"), ..quantiles_from_json(q) });
    }
    let pairs = hist.get("buckets")?.as_array()?;
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    for pair in pairs {
        let pair = pair.as_array()?;
        let (i, c) = (pair.first()?.as_u64()?, pair.get(1)?.as_u64()?);
        if let Some(slot) = buckets.get_mut(i as usize) {
            *slot = c;
        }
    }
    Some(QuantileSummary::from_buckets(&buckets))
}

/// One measured (pattern × policy) bench cell, as stored in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCellSummary {
    /// Pattern name (`llc_thrash`, `random_churn`, `l1_hot`).
    pub pattern: String,
    /// Policy name.
    pub policy: String,
    /// Trace records replayed per repetition.
    pub records: u64,
    /// Best records/second across the timed repetitions.
    pub best_rps: f64,
    /// Median records/second across the timed repetitions.
    pub median_rps: f64,
}

/// What a ledger entry keeps of one `ccsim bench --json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Whether reduced-scale inputs were used (quick runs and full runs
    /// are different suites; gates only compare like against like).
    pub quick: bool,
    /// Telemetry hot-path overhead, percent (0 for a v1 report).
    pub overhead_pct: f64,
    /// Wall clock spent synthesizing traces, nanoseconds.
    pub decode_ns: u64,
    /// Wall clock spent in the measured simulation matrix, nanoseconds.
    pub simulate_ns: u64,
    /// Wall clock spent on checks and report assembly, nanoseconds.
    pub report_ns: u64,
    /// Measured cells, in report order.
    pub cells: Vec<BenchCellSummary>,
}

impl BenchSummary {
    /// Distills a `ccsim bench --json` document.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not a bench report of a
    /// supported schema or a cell is malformed.
    pub fn from_doc(doc: &Json) -> Result<BenchSummary, String> {
        schema_in(doc, "ccsim_bench", BENCH_MIN_SCHEMA, BENCH_MAX_SCHEMA)?;
        let wall = doc.get("wall_clock_breakdown");
        let overhead_pct = doc.get("obs_overhead").map_or(0.0, |o| opt_f64(o, "overhead_pct"));
        let mut cells = Vec::new();
        for cell in doc.get("cells").and_then(Json::as_array).unwrap_or(&[]) {
            cells.push(BenchCellSummary {
                pattern: req_str(cell, "pattern")?,
                policy: req_str(cell, "policy")?,
                records: req_u64(cell, "records")?,
                best_rps: opt_f64(cell, "best_rps"),
                median_rps: opt_f64(cell, "median_rps"),
            });
        }
        Ok(BenchSummary {
            quick: matches!(doc.get("quick"), Some(Json::Bool(true))),
            overhead_pct,
            decode_ns: wall.map_or(0, |w| opt_u64(w, "decode_ns")),
            simulate_ns: wall.map_or(0, |w| opt_u64(w, "simulate_ns")),
            report_ns: wall.map_or(0, |w| opt_u64(w, "report_ns")),
            cells,
        })
    }

    /// The ledger representation.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("pattern", Json::str(&c.pattern)),
                    ("policy", Json::str(&c.policy)),
                    ("records", Json::int(c.records)),
                    ("best_rps", Json::num(c.best_rps)),
                    ("median_rps", Json::num(c.median_rps)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("quick", Json::Bool(self.quick)),
            ("overhead_pct", Json::num(self.overhead_pct)),
            ("decode_ns", Json::int(self.decode_ns)),
            ("simulate_ns", Json::int(self.simulate_ns)),
            ("report_ns", Json::int(self.report_ns)),
            ("cells", Json::Arr(cells)),
        ])
    }

    /// Parses the ledger representation back.
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed cell.
    pub fn from_entry_json(doc: &Json) -> Result<BenchSummary, String> {
        let mut cells = Vec::new();
        for cell in doc.get("cells").and_then(Json::as_array).unwrap_or(&[]) {
            cells.push(BenchCellSummary {
                pattern: req_str(cell, "pattern")?,
                policy: req_str(cell, "policy")?,
                records: opt_u64(cell, "records"),
                best_rps: opt_f64(cell, "best_rps"),
                median_rps: opt_f64(cell, "median_rps"),
            });
        }
        Ok(BenchSummary {
            quick: matches!(doc.get("quick"), Some(Json::Bool(true))),
            overhead_pct: opt_f64(doc, "overhead_pct"),
            decode_ns: opt_u64(doc, "decode_ns"),
            simulate_ns: opt_u64(doc, "simulate_ns"),
            report_ns: opt_u64(doc, "report_ns"),
            cells,
        })
    }
}

/// What a ledger entry keeps of one `report-diff --json` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffSummary {
    /// First campaign name.
    pub campaign_a: String,
    /// Second campaign name.
    pub campaign_b: String,
    /// Whether both reports covered exactly the same grid.
    pub same_grid: bool,
    /// The MPKI threshold the diff was taken at.
    pub threshold: f64,
    /// Largest absolute per-cell LLC-MPKI delta.
    pub max_abs_mpki_delta: f64,
    /// Cells whose absolute delta exceeded the threshold.
    pub cells_over_threshold: u64,
    /// Common cells compared.
    pub cells: u64,
}

impl DiffSummary {
    /// Distills a `report-diff --json` document.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not a diff of the
    /// supported schema.
    pub fn from_doc(doc: &Json) -> Result<DiffSummary, String> {
        schema_in(doc, "ccsim_report_diff", DIFF_SCHEMA, DIFF_SCHEMA)?;
        Ok(DiffSummary {
            campaign_a: req_str(doc, "campaign_a")?,
            campaign_b: req_str(doc, "campaign_b")?,
            same_grid: matches!(doc.get("same_grid"), Some(Json::Bool(true))),
            threshold: opt_f64(doc, "threshold"),
            max_abs_mpki_delta: opt_f64(doc, "max_abs_mpki_delta"),
            cells_over_threshold: opt_u64(doc, "cells_over_threshold"),
            cells: doc.get("cells").and_then(Json::as_array).map_or(0, |c| c.len() as u64),
        })
    }

    /// The ledger representation.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("campaign_a", Json::str(&self.campaign_a)),
            ("campaign_b", Json::str(&self.campaign_b)),
            ("same_grid", Json::Bool(self.same_grid)),
            ("threshold", Json::num(self.threshold)),
            ("max_abs_mpki_delta", Json::num(self.max_abs_mpki_delta)),
            ("cells_over_threshold", Json::int(self.cells_over_threshold)),
            ("cells", Json::int(self.cells)),
        ])
    }

    /// Parses the ledger representation back.
    ///
    /// # Errors
    ///
    /// Returns a message on missing campaign names.
    pub fn from_entry_json(doc: &Json) -> Result<DiffSummary, String> {
        Ok(DiffSummary {
            campaign_a: req_str(doc, "campaign_a")?,
            campaign_b: req_str(doc, "campaign_b")?,
            same_grid: matches!(doc.get("same_grid"), Some(Json::Bool(true))),
            threshold: opt_f64(doc, "threshold"),
            max_abs_mpki_delta: opt_f64(doc, "max_abs_mpki_delta"),
            cells_over_threshold: opt_u64(doc, "cells_over_threshold"),
            cells: opt_u64(doc, "cells"),
        })
    }
}

/// What a ledger entry keeps of one per-worker obs manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestSummary {
    /// Worker id (`(solo)` for single-process runs).
    pub worker: String,
    /// Cells the worker simulated.
    pub cells_done: u64,
    /// Engine-records advanced.
    pub records_simulated: u64,
    /// Simulation wall-clock, nanoseconds.
    pub sim_wall_ns: u64,
    /// Per-cell simulation-time quantiles (`campaign_cell_sim_ns`);
    /// `None` when the manifest carried no histogram.
    pub cell_sim: Option<QuantileSummary>,
}

impl ManifestSummary {
    /// Records per second over this worker's simulation wall-clock.
    pub fn records_per_sec(&self) -> u64 {
        records_per_sec(self.records_simulated, self.sim_wall_ns)
    }

    /// Distills an obs manifest document (v1 or v2 — quantiles are
    /// derived from raw buckets when the pre-computed block is absent).
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not a manifest of a
    /// supported obs schema.
    pub fn from_doc(doc: &Json) -> Result<ManifestSummary, String> {
        schema_in(doc, "ccsim_obs", OBS_MIN_SCHEMA_VERSION, OBS_SCHEMA_VERSION)?;
        if doc.get("kind").and_then(Json::as_str) != Some("manifest") {
            return Err("not a manifest document (kind != \"manifest\")".to_owned());
        }
        Ok(ManifestSummary {
            worker: req_str(doc, "worker")?,
            cells_done: opt_u64(doc, "cells_done"),
            records_simulated: opt_u64(doc, "records_simulated"),
            sim_wall_ns: opt_u64(doc, "sim_wall_ns"),
            cell_sim: cell_sim_quantiles(doc),
        })
    }

    /// The ledger representation.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("worker", Json::str(&self.worker)),
            ("cells_done", Json::int(self.cells_done)),
            ("records_simulated", Json::int(self.records_simulated)),
            ("sim_wall_ns", Json::int(self.sim_wall_ns)),
            ("records_per_sec", Json::int(self.records_per_sec())),
            ("cell_sim", self.cell_sim.as_ref().map_or(Json::Null, quantiles_to_json)),
        ])
    }

    /// Parses the ledger representation back.
    ///
    /// # Errors
    ///
    /// Returns a message on a missing worker id.
    pub fn from_entry_json(doc: &Json) -> Result<ManifestSummary, String> {
        Ok(ManifestSummary {
            worker: req_str(doc, "worker")?,
            cells_done: opt_u64(doc, "cells_done"),
            records_simulated: opt_u64(doc, "records_simulated"),
            sim_wall_ns: opt_u64(doc, "sim_wall_ns"),
            cell_sim: match doc.get("cell_sim") {
                None | Some(Json::Null) => None,
                Some(q) => Some(quantiles_from_json(q)),
            },
        })
    }
}

/// What a ledger entry keeps of one `campaign watch --once --json`
/// aggregate view.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchSummary {
    /// Campaign name.
    pub campaign: String,
    /// Whether the grid was fully journaled at capture time.
    pub done: bool,
    /// Engine-records simulated across the fleet.
    pub records_simulated: u64,
    /// Summed fleet simulation wall-clock, nanoseconds.
    pub sim_wall_ns: u64,
    /// Mean simulation wall-clock per completed cell, nanoseconds.
    pub mean_cell_sim_ns: u64,
    /// Fleet-wide per-cell sim-time quantiles (`None` for a v1 watch
    /// document, which predates the aggregate quantile block).
    pub cell_sim: Option<QuantileSummary>,
}

impl WatchSummary {
    /// Fleet records per second over the summed simulation wall-clock.
    pub fn records_per_sec(&self) -> u64 {
        records_per_sec(self.records_simulated, self.sim_wall_ns)
    }

    /// Distills a watch document.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not a watch view of a
    /// supported obs schema or lacks the aggregate block.
    pub fn from_doc(doc: &Json) -> Result<WatchSummary, String> {
        schema_in(doc, "ccsim_obs", OBS_MIN_SCHEMA_VERSION, OBS_SCHEMA_VERSION)?;
        if doc.get("kind").and_then(Json::as_str) != Some("watch") {
            return Err("not a watch document (kind != \"watch\")".to_owned());
        }
        let agg = doc.get("aggregate").ok_or("watch document lacks `aggregate`")?;
        Ok(WatchSummary {
            campaign: req_str(doc, "campaign")?,
            done: matches!(doc.get("done"), Some(Json::Bool(true))),
            records_simulated: opt_u64(agg, "records_simulated"),
            sim_wall_ns: opt_u64(agg, "sim_wall_ns"),
            mean_cell_sim_ns: opt_u64(agg, "mean_cell_sim_ns"),
            cell_sim: agg.get("cell_sim_ns").map(quantiles_from_json),
        })
    }

    /// The ledger representation.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("campaign", Json::str(&self.campaign)),
            ("done", Json::Bool(self.done)),
            ("records_simulated", Json::int(self.records_simulated)),
            ("sim_wall_ns", Json::int(self.sim_wall_ns)),
            ("records_per_sec", Json::int(self.records_per_sec())),
            ("mean_cell_sim_ns", Json::int(self.mean_cell_sim_ns)),
            ("cell_sim", self.cell_sim.as_ref().map_or(Json::Null, quantiles_to_json)),
        ])
    }

    /// Parses the ledger representation back.
    ///
    /// # Errors
    ///
    /// Returns a message on a missing campaign name.
    pub fn from_entry_json(doc: &Json) -> Result<WatchSummary, String> {
        Ok(WatchSummary {
            campaign: req_str(doc, "campaign")?,
            done: matches!(doc.get("done"), Some(Json::Bool(true))),
            records_simulated: opt_u64(doc, "records_simulated"),
            sim_wall_ns: opt_u64(doc, "sim_wall_ns"),
            mean_cell_sim_ns: opt_u64(doc, "mean_cell_sim_ns"),
            cell_sim: match doc.get("cell_sim") {
                None | Some(Json::Null) => None,
                Some(q) => Some(quantiles_from_json(q)),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_doc_distills_to_summary() {
        let doc = Json::parse(
            r#"{"ccsim_bench": 2, "quick": true, "warmup": 1, "reps": 3,
                "wall_clock_breakdown": {"decode_ns": 100, "simulate_ns": 900, "report_ns": 50},
                "obs_overhead": {"baseline_rps": 100.0, "enabled_rps": 99.0,
                                 "overhead_pct": 1.0, "limit_pct": 3.0, "status": "pass"},
                "cells": [{"pattern": "llc_thrash", "policy": "lru", "records": 10,
                           "reps": 3, "best_rps": 100.5, "median_rps": 90.25}]}"#,
        )
        .unwrap();
        let s = BenchSummary::from_doc(&doc).unwrap();
        assert!(s.quick);
        assert_eq!(s.overhead_pct, 1.0);
        assert_eq!(s.simulate_ns, 900);
        assert_eq!(s.cells.len(), 1);
        assert_eq!(s.cells[0].policy, "lru");
        assert_eq!(s.cells[0].median_rps, 90.25);
        let round = BenchSummary::from_entry_json(&Json::parse(&s.to_json().to_string()).unwrap());
        assert_eq!(round.unwrap(), s);
    }

    #[test]
    fn bench_v1_without_overhead_block_is_accepted() {
        let doc = Json::parse(
            r#"{"ccsim_bench": 1, "quick": false,
                "cells": [{"pattern": "llc_thrash", "policy": "lru",
                           "records": 10, "best_rps": 5.0, "median_rps": 4.0}]}"#,
        )
        .unwrap();
        let s = BenchSummary::from_doc(&doc).unwrap();
        assert_eq!(s.overhead_pct, 0.0);
        assert_eq!(s.simulate_ns, 0);
        assert_eq!(s.cells.len(), 1);
        let err = BenchSummary::from_doc(&Json::parse(r#"{"ccsim_bench": 9}"#).unwrap());
        assert!(err.unwrap_err().contains("unsupported"));
        let not = BenchSummary::from_doc(&Json::parse("{}").unwrap());
        assert!(not.unwrap_err().contains("ccsim_bench"));
    }

    #[test]
    fn bench_v3_with_probe_scan_is_accepted() {
        // v3 adds `probe_scan`; the ledger ignores it but must not
        // reject the document (CI records v3 reports via trends).
        let doc = Json::parse(
            r#"{"ccsim_bench": 3, "quick": true,
                "wall_clock_breakdown": {"decode_ns": 1, "simulate_ns": 2, "report_ns": 3},
                "obs_overhead": {"overhead_pct": 0.5, "limit_pct": 3.0, "status": "pass"},
                "probe_scan": {"sets": 2048, "ways": 11, "probes": 1000,
                               "hit_rps": 1.0e8, "miss_rps": 9.0e7,
                               "hit_ns_per_probe": 10.0, "miss_ns_per_probe": 11.1},
                "cells": [{"pattern": "llc_thrash", "policy": "lru",
                           "records": 10, "best_rps": 5.0, "median_rps": 4.0}]}"#,
        )
        .unwrap();
        let s = BenchSummary::from_doc(&doc).unwrap();
        assert_eq!(s.overhead_pct, 0.5);
        assert_eq!(s.cells.len(), 1);
    }

    #[test]
    fn diff_doc_distills_to_summary() {
        let doc = Json::parse(
            r#"{"ccsim_report_diff": 1, "campaign_a": "m1", "campaign_b": "m2",
                "same_grid": true, "threshold": 0.5, "max_abs_mpki_delta": 0.25,
                "cells_over_threshold": 0,
                "cells": [{"id": "x"}, {"id": "y"}], "only_in_a": [], "only_in_b": []}"#,
        )
        .unwrap();
        let s = DiffSummary::from_doc(&doc).unwrap();
        assert!(s.same_grid);
        assert_eq!(s.cells, 2);
        assert_eq!(s.max_abs_mpki_delta, 0.25);
        let round = DiffSummary::from_entry_json(&Json::parse(&s.to_json().to_string()).unwrap());
        assert_eq!(round.unwrap(), s);
    }

    #[test]
    fn v2_manifest_uses_precomputed_quantiles() {
        let doc = Json::parse(
            r#"{"ccsim_obs": 2, "kind": "manifest", "campaign": "c", "spec": "s",
                "worker": "w1", "cells_done": 4, "bands_done": 2,
                "records_simulated": 1000, "sim_wall_ns": 2000000000,
                "histograms": {"campaign_cell_sim_ns": {"count": 4, "sum": 40,
                    "quantiles": {"p50": 15, "p90": 31, "p99": 31, "min": 8, "max": 31},
                    "buckets": [[4, 3], [5, 1]]}}}"#,
        )
        .unwrap();
        let s = ManifestSummary::from_doc(&doc).unwrap();
        assert_eq!(s.worker, "w1");
        assert_eq!(s.records_per_sec(), 500);
        let q = s.cell_sim.unwrap();
        assert_eq!((q.p50, q.max), (15, 31));
    }

    #[test]
    fn v1_manifest_derives_quantiles_from_buckets() {
        let doc = Json::parse(
            r#"{"ccsim_obs": 1, "kind": "manifest", "campaign": "c", "spec": "s",
                "worker": "w1", "cells_done": 4, "records_simulated": 100, "sim_wall_ns": 50,
                "histograms": {"campaign_cell_sim_ns": {"count": 4, "sum": 40,
                    "buckets": [[4, 3], [5, 1]]}}}"#,
        )
        .unwrap();
        let s = ManifestSummary::from_doc(&doc).unwrap();
        let q = s.cell_sim.unwrap();
        assert_eq!(q.count, 4);
        assert_eq!(q.p50, 15, "bucket 4 upper bound");
        assert_eq!(q.max, 31, "bucket 5 upper bound");
        let round =
            ManifestSummary::from_entry_json(&Json::parse(&s.to_json().to_string()).unwrap());
        assert_eq!(round.unwrap(), s);

        // No histogram at all (telemetry disabled): no quantiles.
        let bare = Json::parse(
            r#"{"ccsim_obs": 1, "kind": "manifest", "worker": "w2",
                "records_simulated": 0, "sim_wall_ns": 0}"#,
        )
        .unwrap();
        assert_eq!(ManifestSummary::from_doc(&bare).unwrap().cell_sim, None);
        // Wrong kind is an error, not an empty summary.
        let events = Json::parse(r#"{"ccsim_obs": 2, "kind": "events", "worker": "w"}"#).unwrap();
        assert!(ManifestSummary::from_doc(&events).is_err());
    }

    #[test]
    fn watch_doc_distills_to_summary() {
        let doc = Json::parse(
            r#"{"ccsim_obs": 2, "kind": "watch", "campaign": "demo", "done": true,
                "cells": {"total": 2, "completed": 2},
                "workers": [],
                "aggregate": {"records_simulated": 4000, "sim_wall_ns": 1000000000,
                    "records_per_sec": 4000, "mean_cell_sim_ns": 250,
                    "cell_sim_ns": {"p50": 255, "p90": 511, "p99": 511,
                                    "min": 128, "max": 511, "count": 4},
                    "eta_seconds": 0}}"#,
        )
        .unwrap();
        let s = WatchSummary::from_doc(&doc).unwrap();
        assert!(s.done);
        assert_eq!(s.records_per_sec(), 4000);
        assert_eq!(s.cell_sim.unwrap().p90, 511);
        let round = WatchSummary::from_entry_json(&Json::parse(&s.to_json().to_string()).unwrap());
        assert_eq!(round.unwrap(), s);

        // A v1 watch document has no aggregate quantile block: still
        // ingestible, just without quantiles.
        let v1 = Json::parse(
            r#"{"ccsim_obs": 1, "kind": "watch", "campaign": "demo", "done": false,
                "aggregate": {"records_simulated": 10, "sim_wall_ns": 10,
                              "records_per_sec": 1000000000, "mean_cell_sim_ns": 5,
                              "eta_seconds": 1}}"#,
        )
        .unwrap();
        assert_eq!(WatchSummary::from_doc(&v1).unwrap().cell_sim, None);
    }
}
