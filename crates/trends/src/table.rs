//! Deterministic trend tables: tracked series × the last N revisions,
//! with a unicode sparkline per row.
//!
//! Output is a pure function of the ledger slice — no clocks, no
//! locale, no float-formatting ambiguity (fixed precision everywhere)
//! — so a fixed ledger renders byte-identically forever, which is what
//! `tests/trends.rs` pins and what makes the table diffable as a CI
//! artifact.

use crate::check::{extract_series, SeriesKind};
use crate::entry::TrendEntry;

/// Sparkline glyphs, low to high.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Scales a non-negative quantity with G/M/k suffixes at fixed
/// two-decimal precision (`1234567` → `1.23M`), plain integers under
/// 1000 rendered exactly.
fn fmt_scaled(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else if v == v.trunc() {
        format!("{v}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats one cell of a series row.
fn fmt_value(kind: SeriesKind, v: f64) -> String {
    match kind {
        SeriesKind::Throughput | SeriesKind::LatencyNs => fmt_scaled(v),
        SeriesKind::OverheadPct => format!("{v:.2}"),
        SeriesKind::MpkiDelta => format!("{v:.4}"),
    }
}

/// A sparkline over a row's present values, scaled to its own
/// min..max ( `·` marks a revision with no value; a flat row renders
/// mid-scale).
fn sparkline(values: &[Option<f64>]) -> String {
    let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
    let (min, max) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|v| match v {
            None => '·',
            Some(v) if max == min => SPARKS[3],
            Some(v) => {
                let t = (v - min) / (max - min);
                SPARKS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Percent share of `part` in `total`, one decimal.
fn share_pct(part: u64, total: u64) -> Option<f64> {
    if total == 0 {
        None
    } else {
        Some(100.0 * part as f64 / total as f64)
    }
}

/// Renders the trend table for `entries` (oldest first; pass
/// [`crate::Ledger::last_n`]). One column per revision, one row per
/// tracked series plus the bench wall-clock split, ending in a
/// sparkline column. Empty input renders a one-line notice.
pub fn render_table(entries: &[TrendEntry]) -> String {
    if entries.is_empty() {
        return "trends: empty ledger (run `ccsim trends record` first)\n".to_owned();
    }
    // Rows: the gated series first, then informational wall-split rows.
    let mut rows: Vec<(String, Vec<Option<String>>, String)> = Vec::new();
    for s in extract_series(entries) {
        let cells = s.values.iter().map(|v| v.map(|v| fmt_value(s.kind, v))).collect();
        rows.push((s.name.clone(), cells, sparkline(&s.values)));
    }
    for (name, pick) in [
        ("bench/wall/decode_pct", 0usize),
        ("bench/wall/simulate_pct", 1),
        ("bench/wall/report_pct", 2),
    ] {
        let values: Vec<Option<f64>> = entries
            .iter()
            .map(|e| {
                let b = e.bench.as_ref()?;
                let total = b.decode_ns + b.simulate_ns + b.report_ns;
                let part = [b.decode_ns, b.simulate_ns, b.report_ns][pick];
                share_pct(part, total)
            })
            .collect();
        if values.iter().any(Option::is_some) {
            let cells = values.iter().map(|v| v.map(|v| format!("{v:.1}"))).collect();
            rows.push((name.to_owned(), cells, sparkline(&values)));
        }
    }

    let mut headers: Vec<String> = vec!["series".to_owned()];
    headers.extend(entries.iter().map(|e| {
        if e.label.is_empty() {
            e.short_rev().to_owned()
        } else {
            format!("{} ({})", e.short_rev(), e.label)
        }
    }));
    headers.push("trend".to_owned());

    // Column widths over header + body (sparkline width = char count).
    let width = |s: &str| s.chars().count();
    let mut widths: Vec<usize> = headers.iter().map(|h| width(h)).collect();
    for (name, cells, spark) in &rows {
        widths[0] = widths[0].max(width(name));
        for (i, cell) in cells.iter().enumerate() {
            let text = cell.as_deref().unwrap_or("-");
            widths[i + 1] = widths[i + 1].max(width(text));
        }
        let last = widths.len() - 1;
        widths[last] = widths[last].max(width(spark));
    }

    let mut out = String::new();
    let mut push_row = |cells: Vec<String>| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i] - width(cell);
            if i == 0 {
                // Series names left-align; numeric columns right-align.
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    push_row(headers);
    for (name, cells, spark) in rows {
        let mut line = vec![name];
        line.extend(cells.into_iter().map(|c| c.unwrap_or_else(|| "-".to_owned())));
        line.push(spark);
        push_row(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{BenchCellSummary, BenchSummary};

    fn entry(rev: &str, rps: f64) -> TrendEntry {
        let mut e = TrendEntry::new(rev, "", "100");
        e.bench = Some(BenchSummary {
            quick: true,
            overhead_pct: 1.0,
            decode_ns: 100,
            simulate_ns: 800,
            report_ns: 100,
            cells: vec![BenchCellSummary {
                pattern: "llc_thrash".into(),
                policy: "lru".into(),
                records: 10,
                best_rps: rps,
                median_rps: rps,
            }],
        });
        e
    }

    #[test]
    fn scaled_formatting_is_fixed_precision() {
        assert_eq!(fmt_scaled(0.0), "0");
        assert_eq!(fmt_scaled(12.5), "12.50");
        assert_eq!(fmt_scaled(999.0), "999");
        assert_eq!(fmt_scaled(1_234.0), "1.23k");
        assert_eq!(fmt_scaled(1_234_567.0), "1.23M");
        assert_eq!(fmt_scaled(2_500_000_000.0), "2.50G");
    }

    #[test]
    fn sparkline_scales_per_row_and_marks_gaps() {
        assert_eq!(sparkline(&[Some(1.0), Some(8.0)]), "▁█");
        assert_eq!(sparkline(&[Some(5.0), Some(5.0)]), "▄▄");
        assert_eq!(sparkline(&[Some(1.0), None, Some(8.0)]), "▁·█");
    }

    #[test]
    fn table_renders_deterministically_with_columns_per_revision() {
        let entries = vec![entry("aaaaaaaaaaaa", 1_000_000.0), entry("bbbbbbbbbbbb", 1_200_000.0)];
        let a = render_table(&entries);
        let b = render_table(&entries);
        assert_eq!(a, b, "byte-deterministic");
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].starts_with("series"), "{a}");
        assert!(lines[0].contains("aaaaaaaaaa") && lines[0].contains("bbbbbbbbbb"), "{a}");
        assert!(lines[0].contains("trend"));
        assert!(a.contains("bench/llc_thrash/median_rps"), "{a}");
        assert!(a.contains("1.00M") && a.contains("1.20M"), "{a}");
        assert!(a.contains("bench/wall/simulate_pct"), "{a}");
        assert!(a.contains("80.0"), "{a}");
        assert!(a.contains('▁') && a.contains('█'), "{a}");
        assert!(render_table(&[]).contains("empty ledger"));
    }
}
