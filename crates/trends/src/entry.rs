//! One ledger entry: everything recorded about a single revision.

use ccsim_campaign::Json;

use crate::ingest::{BenchSummary, DiffSummary, ManifestSummary, WatchSummary};
use crate::TRENDS_SCHEMA_VERSION;

/// One line of `trends.jsonl`: a revision tag plus the distilled
/// summaries of whichever source documents were recorded for it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrendEntry {
    /// Git revision (or any unique build identifier).
    pub rev: String,
    /// Free-form label (branch, tag, CI run id); may be empty.
    pub label: String,
    /// Capture timestamp, an opaque string chosen by the recorder
    /// (unix seconds from the CLI). Never interpreted — entry order in
    /// the ledger, not timestamps, defines history.
    pub timestamp: String,
    /// `ccsim bench --json` summary, when recorded.
    pub bench: Option<BenchSummary>,
    /// `report-diff --json` summary, when recorded.
    pub diff: Option<DiffSummary>,
    /// Per-worker obs-manifest summaries, in recording order.
    pub manifests: Vec<ManifestSummary>,
    /// `campaign watch --once --json` summary, when recorded.
    pub watch: Option<WatchSummary>,
}

impl TrendEntry {
    /// A bare entry tagged with a revision.
    pub fn new(rev: &str, label: &str, timestamp: &str) -> TrendEntry {
        TrendEntry {
            rev: rev.to_owned(),
            label: label.to_owned(),
            timestamp: timestamp.to_owned(),
            ..TrendEntry::default()
        }
    }

    /// The short revision used in table headers (first 10 characters).
    pub fn short_rev(&self) -> &str {
        let end = self.rev.char_indices().nth(10).map_or(self.rev.len(), |(i, _)| i);
        &self.rev[..end]
    }

    /// Fleet records/sec for this entry: the watch aggregate when
    /// recorded, else the sum over recorded worker manifests (`None`
    /// when neither source is present).
    pub fn fleet_records_per_sec(&self) -> Option<u64> {
        if let Some(w) = &self.watch {
            return Some(w.records_per_sec());
        }
        if self.manifests.is_empty() {
            return None;
        }
        let records: u64 = self.manifests.iter().map(|m| m.records_simulated).sum();
        let wall: u64 = self.manifests.iter().map(|m| m.sim_wall_ns).sum();
        Some(ccsim_obs::records_per_sec(records, wall))
    }

    /// Fleet per-cell sim-time p99, nanoseconds: from the watch
    /// aggregate when recorded, else the worst recorded worker p99.
    pub fn fleet_cell_sim_p99_ns(&self) -> Option<u64> {
        if let Some(q) = self.watch.as_ref().and_then(|w| w.cell_sim.as_ref()) {
            return Some(q.p99);
        }
        self.manifests.iter().filter_map(|m| m.cell_sim.as_ref().map(|q| q.p99)).max()
    }

    /// The single-line ledger representation (compact JSON, no
    /// trailing newline).
    pub fn to_json_line(&self) -> String {
        let manifests = self.manifests.iter().map(ManifestSummary::to_json).collect();
        Json::obj(vec![
            ("ccsim_trends", Json::int(TRENDS_SCHEMA_VERSION)),
            ("rev", Json::str(&self.rev)),
            ("label", Json::str(&self.label)),
            ("timestamp", Json::str(&self.timestamp)),
            ("bench", self.bench.as_ref().map_or(Json::Null, BenchSummary::to_json)),
            ("diff", self.diff.as_ref().map_or(Json::Null, DiffSummary::to_json)),
            ("manifests", Json::Arr(manifests)),
            ("watch", self.watch.as_ref().map_or(Json::Null, WatchSummary::to_json)),
        ])
        .to_string()
    }

    /// Parses one ledger line.
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not JSON, not a
    /// `ccsim_trends` entry of a supported schema, or a nested summary
    /// is malformed.
    pub fn from_json_line(line: &str) -> Result<TrendEntry, String> {
        let doc = Json::parse(line).map_err(|e| format!("not JSON: {e}"))?;
        match doc.get("ccsim_trends").and_then(Json::as_u64) {
            Some(v) if v == TRENDS_SCHEMA_VERSION => {}
            Some(v) => return Err(format!("unsupported ccsim_trends schema {v}")),
            None => return Err("not a ccsim_trends entry".to_owned()),
        }
        let rev = doc.get("rev").and_then(Json::as_str).ok_or("entry lacks `rev`")?.to_owned();
        let opt_str = |k: &str| doc.get(k).and_then(Json::as_str).unwrap_or_default().to_owned();
        let bench = match doc.get("bench") {
            None | Some(Json::Null) => None,
            Some(b) => Some(BenchSummary::from_entry_json(b).map_err(|e| format!("bench: {e}"))?),
        };
        let diff = match doc.get("diff") {
            None | Some(Json::Null) => None,
            Some(d) => Some(DiffSummary::from_entry_json(d).map_err(|e| format!("diff: {e}"))?),
        };
        let watch = match doc.get("watch") {
            None | Some(Json::Null) => None,
            Some(w) => Some(WatchSummary::from_entry_json(w).map_err(|e| format!("watch: {e}"))?),
        };
        let mut manifests = Vec::new();
        for m in doc.get("manifests").and_then(Json::as_array).unwrap_or(&[]) {
            manifests
                .push(ManifestSummary::from_entry_json(m).map_err(|e| format!("manifest: {e}"))?);
        }
        Ok(TrendEntry {
            rev,
            label: opt_str("label"),
            timestamp: opt_str("timestamp"),
            bench,
            diff,
            manifests,
            watch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::BenchCellSummary;

    fn sample_entry() -> TrendEntry {
        let mut e = TrendEntry::new("0123456789abcdef", "main", "1754600000");
        e.bench = Some(BenchSummary {
            quick: true,
            overhead_pct: 1.5,
            decode_ns: 100,
            simulate_ns: 900,
            report_ns: 50,
            cells: vec![BenchCellSummary {
                pattern: "llc_thrash".into(),
                policy: "lru".into(),
                records: 10,
                best_rps: 100.5,
                median_rps: 90.25,
            }],
        });
        e.diff = Some(DiffSummary {
            campaign_a: "golden".into(),
            campaign_b: "golden".into(),
            same_grid: true,
            threshold: 0.0,
            max_abs_mpki_delta: 0.0,
            cells_over_threshold: 0,
            cells: 6,
        });
        e
    }

    #[test]
    fn entry_round_trips_through_a_ledger_line() {
        let e = sample_entry();
        let line = e.to_json_line();
        assert!(line.starts_with(r#"{"ccsim_trends":1,"rev":"0123456789abcdef""#), "{line}");
        assert!(!line.contains('\n'), "one line");
        assert_eq!(TrendEntry::from_json_line(&line).unwrap(), e);
        assert_eq!(e.short_rev(), "0123456789");
    }

    #[test]
    fn bad_lines_are_named_errors() {
        assert!(TrendEntry::from_json_line("not json").unwrap_err().contains("not JSON"));
        assert!(TrendEntry::from_json_line("{}").unwrap_err().contains("not a ccsim_trends"));
        let future = r#"{"ccsim_trends": 99, "rev": "x"}"#;
        assert!(TrendEntry::from_json_line(future).unwrap_err().contains("unsupported"));
        let no_rev = r#"{"ccsim_trends": 1}"#;
        assert!(TrendEntry::from_json_line(no_rev).unwrap_err().contains("rev"));
    }

    #[test]
    fn fleet_rollups_prefer_watch_over_manifests() {
        let mut e = TrendEntry::new("r", "", "");
        assert_eq!(e.fleet_records_per_sec(), None);
        assert_eq!(e.fleet_cell_sim_p99_ns(), None);
        e.manifests.push(ManifestSummary {
            worker: "w1".into(),
            cells_done: 1,
            records_simulated: 500,
            sim_wall_ns: 1_000_000_000,
            cell_sim: Some(ccsim_obs::QuantileSummary { p99: 77, ..Default::default() }),
        });
        assert_eq!(e.fleet_records_per_sec(), Some(500));
        assert_eq!(e.fleet_cell_sim_p99_ns(), Some(77));
        e.watch = Some(WatchSummary {
            campaign: "c".into(),
            done: true,
            records_simulated: 4000,
            sim_wall_ns: 1_000_000_000,
            mean_cell_sim_ns: 9,
            cell_sim: Some(ccsim_obs::QuantileSummary { p99: 31, ..Default::default() }),
        });
        assert_eq!(e.fleet_records_per_sec(), Some(4000), "watch aggregate wins");
        assert_eq!(e.fleet_cell_sim_p99_ns(), Some(31));
    }
}
