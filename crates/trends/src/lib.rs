//! # ccsim-trends
//!
//! Cross-revision performance ledger and regression gates
//! (`ccsim trends record|table|check|gc`).
//!
//! The paper's contribution is *longitudinal* characterization — policy
//! behavior tracked across workloads and LLC scales — and this crate
//! applies the same discipline to the simulator itself: every measured
//! revision appends one entry to an append-only, schema-versioned
//! JSONL ledger (`trends.jsonl`), and tables/gates are pure functions
//! of that ledger.
//!
//! One [`TrendEntry`] per revision ingests up to four machine-readable
//! documents the workspace already emits:
//!
//! * `ccsim bench --json` (`ccsim_bench` schema, [`ingest::BenchSummary`]) —
//!   per-(pattern × policy) records/sec, wall-clock split, telemetry
//!   overhead gate;
//! * `ccsim report-diff --json` (`ccsim_report_diff` schema,
//!   [`ingest::DiffSummary`]) — golden-campaign MPKI drift;
//! * per-worker obs manifests (`ccsim_obs` schema,
//!   [`ingest::ManifestSummary`]) — fleet throughput and per-cell
//!   sim-time quantiles (derived from raw buckets when a v1 manifest
//!   predates the pre-computed quantile block);
//! * `ccsim campaign watch --once --json` (`ccsim_obs` schema,
//!   [`ingest::WatchSummary`]) — the aggregate fleet view.
//!
//! [`table::render_table`] turns the last N entries into a
//! byte-deterministic per-suite rollup table with unicode sparklines;
//! [`check::run_check`] is the regression gate: each tracked series is
//! compared against the rolling median of the previous K entries and
//! the verdict serializes to a pinned schema
//! ([`CHECK_SCHEMA_VERSION`]) with a non-zero CLI exit on failure.
//!
//! Ledger durability contract ([`ledger`]): appends are single
//! `write`s of one line; readers tolerate a torn final line (a crashed
//! writer) but fail loudly on corruption anywhere else; `gc` compacts
//! through a temp file + atomic rename, preserving surviving lines
//! byte-for-byte.

#![warn(missing_docs)]

pub mod check;
pub mod entry;
pub mod ingest;
pub mod ledger;
pub mod table;

pub use check::{run_check, CheckOptions, CheckVerdict, SeriesKind, SeriesVerdict};
pub use entry::TrendEntry;
pub use ingest::{BenchCellSummary, BenchSummary, DiffSummary, ManifestSummary, WatchSummary};
pub use ledger::Ledger;
pub use table::render_table;

/// Version of the `trends.jsonl` ledger entry schema (the
/// `ccsim_trends` field every line leads with).
pub const TRENDS_SCHEMA_VERSION: u64 = 1;

/// Version of the `trends check --json` verdict schema (the
/// `ccsim_trends_check` field).
pub const CHECK_SCHEMA_VERSION: u64 = 1;

/// The default ledger file name under a trends directory.
pub const LEDGER_FILE: &str = "trends.jsonl";
