//! The append-only ledger file: load, append, compact.
//!
//! Durability contract: `record` appends exactly one `line + "\n"` in
//! a single write to an append-mode handle, so concurrent recorders on
//! a POSIX filesystem interleave at line granularity. A reader
//! therefore treats an unparsable **final** line as a torn in-flight
//! append — tolerated and reported via [`Ledger::torn_tail`] — while a
//! bad line anywhere earlier means real corruption and fails loudly
//! with its line number. `gc` never rewrites surviving entries: it
//! copies their original bytes into a temp file and renames it over
//! the ledger, so a gc'd ledger stays byte-comparable to its source.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;

use crate::entry::TrendEntry;

/// An in-memory view of one `trends.jsonl` file.
#[derive(Debug, Default)]
pub struct Ledger {
    /// Parsed entries, oldest first.
    pub entries: Vec<TrendEntry>,
    /// The verbatim source line of each entry (no newline).
    raw: Vec<String>,
    /// Whether the file ended in an unparsable line (a torn append
    /// from a crashed writer), which `load` skipped.
    torn_tail: bool,
}

impl Ledger {
    /// Loads a ledger file; a missing file is an empty ledger.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first corrupt non-final line, or
    /// the I/O failure.
    pub fn load(path: &Path) -> Result<Ledger, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Ledger::default()),
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut ledger = Ledger::default();
        for (i, line) in lines.iter().enumerate() {
            match TrendEntry::from_json_line(line) {
                Ok(entry) => {
                    ledger.entries.push(entry);
                    ledger.raw.push((*line).to_owned());
                }
                Err(e) if i + 1 == lines.len() => {
                    // A torn final line is a crashed writer, not
                    // corruption: everything before it is intact.
                    let _ = e;
                    ledger.torn_tail = true;
                }
                Err(e) => {
                    return Err(format!("{} line {}: {e}", path.display(), i + 1));
                }
            }
        }
        Ok(ledger)
    }

    /// Whether `load` skipped a torn final line.
    pub fn torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// The last `n` entries, oldest first.
    pub fn last_n(&self, n: usize) -> &[TrendEntry] {
        &self.entries[self.entries.len().saturating_sub(n)..]
    }

    /// Appends one entry to the ledger file (creating it if needed)
    /// as a single write.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn append(path: &Path, entry: &TrendEntry) -> Result<(), String> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
        let mut line = entry.to_json_line();
        line.push('\n');
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        file.write_all(line.as_bytes()).map_err(|e| format!("appending to {}: {e}", path.display()))
    }

    /// Compacts the ledger file to its most recent `keep` entries
    /// (dropping any torn tail), through a temp file and an atomic
    /// rename. Surviving lines keep their original bytes. Returns the
    /// number of entries dropped.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Ledger::load`], plus I/O failures of
    /// the rewrite.
    pub fn gc(path: &Path, keep: usize) -> Result<usize, String> {
        let ledger = Ledger::load(path)?;
        let dropped = ledger.entries.len().saturating_sub(keep) + usize::from(ledger.torn_tail);
        let survivors = &ledger.raw[ledger.raw.len().saturating_sub(keep)..];
        let mut text = String::new();
        for line in survivors {
            text.push_str(line);
            text.push('\n');
        }
        let tmp = path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("renaming over {}: {e}", path.display()))?;
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_ledger(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccsim_trends_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("trends.jsonl")
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = temp_ledger("roundtrip");
        assert!(Ledger::load(&path).unwrap().entries.is_empty(), "missing file = empty");
        for rev in ["aaa", "bbb", "ccc"] {
            Ledger::append(&path, &TrendEntry::new(rev, "main", "0")).unwrap();
        }
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.entries.len(), 3);
        assert!(!ledger.torn_tail());
        assert_eq!(ledger.entries[0].rev, "aaa");
        assert_eq!(ledger.last_n(2)[0].rev, "bbb");
        assert_eq!(ledger.last_n(99).len(), 3);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_mid_file_corruption_is_not() {
        let path = temp_ledger("torn");
        Ledger::append(&path, &TrendEntry::new("aaa", "", "")).unwrap();
        Ledger::append(&path, &TrendEntry::new("bbb", "", "")).unwrap();
        // Simulate a writer that died mid-line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"ccsim_trends\":1,\"rev\":\"ccc\",\"la");
        std::fs::write(&path, &text).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.entries.len(), 2, "intact prefix survives");
        assert!(ledger.torn_tail());

        // The same garbage mid-file is corruption and fails with its
        // line number.
        let corrupt = text.replace(
            "{\"ccsim_trends\":1,\"rev\":\"bbb\"",
            "{\"ccsim_trends\":oops,\"rev\":\"bbb\"",
        );
        std::fs::write(&path, corrupt).unwrap();
        let err = Ledger::load(&path).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn gc_keeps_recent_entries_byte_for_byte_and_drops_torn_tails() {
        let path = temp_ledger("gc");
        for rev in ["aaa", "bbb", "ccc", "ddd"] {
            Ledger::append(&path, &TrendEntry::new(rev, "main", "7")).unwrap();
        }
        let before = std::fs::read_to_string(&path).unwrap();
        let expected_tail: String = before.lines().skip(2).map(|l| format!("{l}\n")).collect();
        // Add a torn tail; gc must drop it too.
        std::fs::write(&path, format!("{before}{{\"ccsim_trends\":1,\"re")).unwrap();

        let dropped = Ledger::gc(&path, 2).unwrap();
        assert_eq!(dropped, 3, "two old entries + the torn tail");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), expected_tail);
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.entries.len(), 2);
        assert_eq!(ledger.entries[0].rev, "ccc");
        assert!(!path.with_extension("jsonl.tmp").exists());

        // gc with a generous keep is a no-op on entries.
        let dropped = Ledger::gc(&path, 10).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), expected_tail);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
