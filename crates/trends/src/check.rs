//! The regression gate: the newest ledger entry judged against the
//! rolling median of the entries before it.
//!
//! Every tracked series has a direction ([`SeriesKind`]): throughput
//! must not drop, latencies and overhead must not rise, golden-campaign
//! MPKI drift must stay inside an absolute budget. Medians — not means
//! — anchor the comparison so one noisy historical entry cannot move
//! the gate, and a series the history cannot yet support reports
//! `insufficient_history` instead of guessing.

use ccsim_campaign::Json;

use crate::entry::TrendEntry;
use crate::CHECK_SCHEMA_VERSION;

/// What kind of quantity a tracked series is, which fixes the
/// direction and form of its regression test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Higher is better; fails when the value drops more than
    /// `max_drop_pct` below the rolling median.
    Throughput,
    /// Lower is better; fails when the value rises more than
    /// `max_rise_pct` above the rolling median.
    LatencyNs,
    /// Lower is better; fails when the value exceeds the rolling
    /// median by more than `max_overhead_rise_pp` percentage points.
    OverheadPct,
    /// An absolute budget, not a relative drift: fails when the value
    /// exceeds `max_mpki_delta` outright (no history required).
    MpkiDelta,
}

impl SeriesKind {
    /// Stable label used in the verdict document.
    pub fn label(&self) -> &'static str {
        match self {
            SeriesKind::Throughput => "throughput",
            SeriesKind::LatencyNs => "latency_ns",
            SeriesKind::OverheadPct => "overhead_pct",
            SeriesKind::MpkiDelta => "mpki_delta",
        }
    }
}

/// One tracked series over a window of ledger entries, one value slot
/// per entry (in entry order; `None` where an entry lacks the source).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Stable series name (`bench/llc_thrash/median_rps`, …).
    pub name: String,
    /// Direction of its regression test.
    pub kind: SeriesKind,
    /// One slot per entry, oldest first.
    pub values: Vec<Option<f64>>,
}

/// Extracts every tracked series from `entries` (oldest first): one
/// per-suite bench throughput rollup per pattern (mean of per-policy
/// median records/sec), the telemetry overhead gate, fleet throughput
/// and per-cell p99 from manifests/watch, and golden-campaign MPKI
/// drift. Series order is deterministic: bench suites in first-seen
/// order, then the fixed singletons.
pub fn extract_series(entries: &[TrendEntry]) -> Vec<Series> {
    let mut patterns: Vec<String> = Vec::new();
    for e in entries {
        if let Some(b) = &e.bench {
            for c in &b.cells {
                if !patterns.contains(&c.pattern) {
                    patterns.push(c.pattern.clone());
                }
            }
        }
    }
    let mut out = Vec::new();
    for pattern in &patterns {
        let values = entries
            .iter()
            .map(|e| {
                let b = e.bench.as_ref()?;
                let rps: Vec<f64> = b
                    .cells
                    .iter()
                    .filter(|c| &c.pattern == pattern)
                    .map(|c| c.median_rps)
                    .collect();
                if rps.is_empty() {
                    None
                } else {
                    Some(rps.iter().sum::<f64>() / rps.len() as f64)
                }
            })
            .collect();
        out.push(Series {
            name: format!("bench/{pattern}/median_rps"),
            kind: SeriesKind::Throughput,
            values,
        });
    }
    let singleton =
        |name: &str, kind, values: Vec<Option<f64>>| Series { name: name.to_owned(), kind, values };
    out.push(singleton(
        "bench/obs_overhead_pct",
        SeriesKind::OverheadPct,
        entries.iter().map(|e| e.bench.as_ref().map(|b| b.overhead_pct)).collect(),
    ));
    out.push(singleton(
        "fleet/records_per_sec",
        SeriesKind::Throughput,
        entries.iter().map(|e| e.fleet_records_per_sec().map(|v| v as f64)).collect(),
    ));
    out.push(singleton(
        "fleet/cell_sim_p99_ns",
        SeriesKind::LatencyNs,
        entries.iter().map(|e| e.fleet_cell_sim_p99_ns().map(|v| v as f64)).collect(),
    ));
    out.push(singleton(
        "diff/max_abs_mpki_delta",
        SeriesKind::MpkiDelta,
        entries.iter().map(|e| e.diff.as_ref().map(|d| d.max_abs_mpki_delta)).collect(),
    ));
    // A series nothing ever recorded is noise in tables and verdicts.
    out.retain(|s| s.values.iter().any(Option::is_some));
    out
}

/// Gate thresholds and history requirements.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOptions {
    /// Rolling-median window: how many previous entries anchor the
    /// baseline.
    pub window: usize,
    /// Minimum prior values a relative series needs before the gate
    /// judges it (below this: `insufficient_history`).
    pub min_history: usize,
    /// Tolerated throughput drop below the median, percent.
    pub max_drop_pct: f64,
    /// Tolerated latency rise above the median, percent.
    pub max_rise_pct: f64,
    /// Tolerated overhead rise above the median, percentage points.
    pub max_overhead_rise_pp: f64,
    /// Absolute budget for golden-campaign MPKI drift.
    pub max_mpki_delta: f64,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            window: 5,
            min_history: 2,
            max_drop_pct: 10.0,
            max_rise_pct: 25.0,
            max_overhead_rise_pp: 1.0,
            max_mpki_delta: 0.0,
        }
    }
}

/// Gate outcome for one series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesVerdict {
    /// Series name.
    pub name: String,
    /// Series direction.
    pub kind: SeriesKind,
    /// The newest entry's value (`None`: the entry lacks the source).
    pub value: Option<f64>,
    /// Rolling median of the previous window (relative kinds only).
    pub median: Option<f64>,
    /// The computed pass/fail bound the value was compared against.
    pub bound: Option<f64>,
    /// `pass`, `fail`, `insufficient_history`, or `no_data`.
    pub status: &'static str,
}

/// The whole gate outcome for the newest ledger entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckVerdict {
    /// Revision judged.
    pub rev: String,
    /// Window / thresholds the gate ran with.
    pub options: CheckOptions,
    /// Per-series outcomes, in [`extract_series`] order.
    pub series: Vec<SeriesVerdict>,
}

impl CheckVerdict {
    /// Whether every judged series passed (`insufficient_history` and
    /// `no_data` do not fail the gate — they are reported, not
    /// punished, so a fresh ledger can bootstrap).
    pub fn pass(&self) -> bool {
        self.series.iter().all(|s| s.status != "fail")
    }

    /// The pinned verdict document ([`CHECK_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::num);
        let series = self
            .series
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(&s.name)),
                    ("kind", Json::str(s.kind.label())),
                    ("value", opt_num(s.value)),
                    ("median", opt_num(s.median)),
                    ("bound", opt_num(s.bound)),
                    ("status", Json::str(s.status)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("ccsim_trends_check", Json::int(CHECK_SCHEMA_VERSION)),
            ("rev", Json::str(&self.rev)),
            ("window", Json::int(self.options.window as u64)),
            ("min_history", Json::int(self.options.min_history as u64)),
            ("status", Json::str(if self.pass() { "pass" } else { "fail" })),
            ("series", Json::Arr(series)),
        ])
    }
}

/// Median of an unsorted sample (mean of the middle two for even
/// sizes); `None` when empty.
fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 { sorted[mid] } else { (sorted[mid - 1] + sorted[mid]) / 2.0 })
}

/// Runs the gate: the last of `entries` judged against the rolling
/// median of up to `window` entries before it.
///
/// # Errors
///
/// Returns a message when `entries` is empty.
pub fn run_check(entries: &[TrendEntry], options: &CheckOptions) -> Result<CheckVerdict, String> {
    let Some(newest) = entries.last() else {
        return Err("empty ledger: record an entry before checking".to_owned());
    };
    let series = extract_series(entries);
    let mut verdicts = Vec::new();
    for s in series {
        let (history, value_slot) = s.values.split_at(s.values.len() - 1);
        let value = value_slot[0];
        let prior: Vec<f64> =
            history.iter().rev().filter_map(|v| *v).take(options.window).collect();
        let verdict = match (s.kind, value) {
            (_, None) => SeriesVerdict {
                name: s.name,
                kind: s.kind,
                value: None,
                median: None,
                bound: None,
                status: "no_data",
            },
            (SeriesKind::MpkiDelta, Some(v)) => SeriesVerdict {
                name: s.name,
                kind: s.kind,
                value: Some(v),
                median: None,
                bound: Some(options.max_mpki_delta),
                status: if v > options.max_mpki_delta { "fail" } else { "pass" },
            },
            (kind, Some(v)) if prior.len() < options.min_history => SeriesVerdict {
                name: s.name,
                kind,
                value: Some(v),
                median: median(&prior),
                bound: None,
                status: "insufficient_history",
            },
            (kind, Some(v)) => {
                let m = median(&prior).expect("min_history >= 1 checked above");
                let (bound, failed) = match kind {
                    SeriesKind::Throughput => {
                        let b = m * (1.0 - options.max_drop_pct / 100.0);
                        (b, v < b)
                    }
                    SeriesKind::LatencyNs => {
                        let b = m * (1.0 + options.max_rise_pct / 100.0);
                        (b, v > b)
                    }
                    SeriesKind::OverheadPct => {
                        let b = m + options.max_overhead_rise_pp;
                        (b, v > b)
                    }
                    SeriesKind::MpkiDelta => unreachable!("handled above"),
                };
                SeriesVerdict {
                    name: s.name,
                    kind,
                    value: Some(v),
                    median: Some(m),
                    bound: Some(bound),
                    status: if failed { "fail" } else { "pass" },
                }
            }
        };
        verdicts.push(verdict);
    }
    Ok(CheckVerdict { rev: newest.rev.clone(), options: options.clone(), series: verdicts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{BenchCellSummary, BenchSummary, DiffSummary};

    fn bench_entry(rev: &str, rps: f64, overhead: f64) -> TrendEntry {
        let mut e = TrendEntry::new(rev, "", "");
        e.bench = Some(BenchSummary {
            quick: true,
            overhead_pct: overhead,
            decode_ns: 1,
            simulate_ns: 2,
            report_ns: 3,
            cells: vec![
                BenchCellSummary {
                    pattern: "llc_thrash".into(),
                    policy: "lru".into(),
                    records: 10,
                    best_rps: rps * 1.1,
                    median_rps: rps,
                },
                BenchCellSummary {
                    pattern: "llc_thrash".into(),
                    policy: "srrip".into(),
                    records: 10,
                    best_rps: rps * 1.1,
                    median_rps: rps,
                },
            ],
        });
        e
    }

    #[test]
    fn median_is_robust_to_order_and_parity() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[3.0, 1.0]), Some(2.0));
        assert_eq!(median(&[9.0, 1.0, 5.0]), Some(5.0));
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond_it() {
        let entries: Vec<TrendEntry> = [100.0, 102.0, 98.0, 101.0, 95.0]
            .iter()
            .enumerate()
            .map(|(i, &rps)| bench_entry(&format!("r{i}"), rps, 1.0))
            .collect();
        // Median of the previous four is 100.5; 95 is a 5.5% drop —
        // inside the default 10% budget.
        let verdict = run_check(&entries, &CheckOptions::default()).unwrap();
        assert!(verdict.pass());
        let rps = &verdict.series[0];
        assert_eq!(rps.name, "bench/llc_thrash/median_rps");
        assert_eq!(rps.status, "pass");
        assert_eq!(rps.median, Some(100.5));

        // An 80-rps entry is a 20% drop: fail, and the verdict
        // document says so.
        let mut bad = entries.clone();
        bad.push(bench_entry("r5", 80.0, 1.0));
        let verdict = run_check(&bad, &CheckOptions::default()).unwrap();
        assert!(!verdict.pass());
        let json = verdict.to_json().to_string();
        assert!(json.starts_with(r#"{"ccsim_trends_check":1,"rev":"r5""#), "{json}");
        assert!(json.contains(r#""status":"fail""#));
    }

    #[test]
    fn overhead_creep_fails_in_percentage_points() {
        let mut entries: Vec<TrendEntry> =
            (0..4).map(|i| bench_entry(&format!("r{i}"), 100.0, 1.0)).collect();
        entries.push(bench_entry("r4", 100.0, 1.9));
        let verdict = run_check(&entries, &CheckOptions::default()).unwrap();
        assert!(verdict.pass(), "0.9pp rise is inside the 1pp budget");
        entries.push(bench_entry("r5", 100.0, 2.5));
        let verdict = run_check(&entries, &CheckOptions::default()).unwrap();
        let overhead = verdict.series.iter().find(|s| s.name == "bench/obs_overhead_pct").unwrap();
        assert_eq!(overhead.status, "fail", "1.5pp over a ~1.0 median");
    }

    #[test]
    fn short_history_reports_insufficient_not_fail() {
        let entries = vec![bench_entry("r0", 100.0, 1.0), bench_entry("r1", 10.0, 1.0)];
        let verdict = run_check(&entries, &CheckOptions::default()).unwrap();
        assert!(verdict.pass(), "one prior entry < min_history 2");
        assert_eq!(verdict.series[0].status, "insufficient_history");
        assert!(run_check(&[], &CheckOptions::default()).is_err());
    }

    #[test]
    fn mpki_budget_is_absolute_and_needs_no_history() {
        let mut e = TrendEntry::new("r0", "", "");
        e.diff = Some(DiffSummary {
            campaign_a: "g".into(),
            campaign_b: "g".into(),
            same_grid: true,
            threshold: 0.0,
            max_abs_mpki_delta: 0.0,
            cells_over_threshold: 0,
            cells: 6,
        });
        let verdict = run_check(std::slice::from_ref(&e), &CheckOptions::default()).unwrap();
        assert!(verdict.pass());
        e.diff.as_mut().unwrap().max_abs_mpki_delta = 0.001;
        let verdict = run_check(std::slice::from_ref(&e), &CheckOptions::default()).unwrap();
        assert!(!verdict.pass(), "any drift over the 0.0 budget fails");
        let opts = CheckOptions { max_mpki_delta: 0.01, ..CheckOptions::default() };
        assert!(run_check(std::slice::from_ref(&e), &opts).unwrap().pass());
    }

    #[test]
    fn missing_sources_report_no_data() {
        let mut entries: Vec<TrendEntry> =
            (0..3).map(|i| bench_entry(&format!("r{i}"), 100.0, 1.0)).collect();
        entries.push(TrendEntry::new("r3", "", ""));
        let verdict = run_check(&entries, &CheckOptions::default()).unwrap();
        assert!(verdict.pass());
        assert!(verdict.series.iter().all(|s| s.status == "no_data"));
    }

    #[test]
    fn window_bounds_the_baseline() {
        // Nine ancient fast entries, then four slow ones, then a slow
        // candidate: with window 4 the median is the recent regime and
        // the candidate passes.
        let mut entries: Vec<TrendEntry> =
            (0..9).map(|i| bench_entry(&format!("old{i}"), 1000.0, 1.0)).collect();
        entries.extend((0..4).map(|i| bench_entry(&format!("new{i}"), 100.0, 1.0)));
        entries.push(bench_entry("cand", 98.0, 1.0));
        let opts = CheckOptions { window: 4, ..CheckOptions::default() };
        assert!(run_check(&entries, &opts).unwrap().pass());
        // A window spanning the old regime fails the same candidate.
        let opts = CheckOptions { window: 12, ..CheckOptions::default() };
        assert!(!run_check(&entries, &opts).unwrap().pass());
    }
}
