//! A minimal deterministic JSON **emitter** — just enough for the obs
//! sinks (string/u64/bool fields, pre-rendered nesting), mirroring the
//! campaign JSON layer's discipline: insertion-ordered keys and exact
//! integer formatting, so identical inputs always render identical
//! bytes. (Parsing lives in `ccsim-campaign`; this crate sits below it
//! and only writes.)

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An insertion-ordered JSON object builder.
#[derive(Default)]
pub struct JsonObj {
    buf: String,
    any: bool,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> JsonObj {
        JsonObj { buf: String::from("{"), any: false }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push_str(", ");
        }
        self.any = true;
        push_json_str(&mut self.buf, k);
        self.buf.push_str(": ");
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut JsonObj {
        self.key(k);
        push_json_str(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field (exact digits, no float drift).
    pub fn u64(&mut self, k: &str, v: u64) -> &mut JsonObj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut JsonObj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON (nested
    /// objects and arrays).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut JsonObj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_ordered_escaped_objects() {
        let mut o = JsonObj::new();
        o.str("name", "a\"b\\c\nd").u64("n", u64::MAX).bool("ok", true);
        o.raw("nested", "[1, 2]");
        assert_eq!(
            o.finish(),
            r#"{"name": "a\"b\\c\nd", "n": 18446744073709551615, "ok": true, "nested": [1, 2]}"#
        );
        assert_eq!(JsonObj::new().finish(), "{}");
        let mut ctl = String::new();
        push_json_str(&mut ctl, "\u{1}");
        assert_eq!(ctl, "\"\\u0001\"");
    }
}
