//! The metric primitives and the process-wide catalog.
//!
//! Everything here is constructed in `const` context: the catalog is a
//! plain `static`, handles are pre-registered fields, and the record
//! path takes no locks and performs no allocation — a thread's counter
//! shard is picked once through a `const`-initialized thread-local
//! `Cell`, and histogram buckets are fixed arrays indexed by bit
//! length. `tests/alloc_free.rs` pins the zero-allocation contract with
//! telemetry enabled.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Shards per [`Counter`]. A power of two so the thread → shard map is a
/// mask; 16 cache lines bound worst-case contention without bloating
/// the catalog.
pub const COUNTER_SHARDS: usize = 16;

/// Buckets per [`Histogram`]: one per value bit length (0..=64), so
/// bucket `i` holds samples in `[2^(i-1), 2^i - 1]` (bucket 0 holds 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables metric updates. Disabled metrics freeze
/// at their current values; handles stay valid. Used by the bench
/// harness to measure the instrumentation overhead against a
/// telemetry-off baseline.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric updates are currently applied.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One cache line per shard so two threads bumping the same counter
/// never bounce a line between cores.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> PaddedU64 {
        PaddedU64(AtomicU64::new(0))
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard slot, assigned round-robin on first use.
    /// `const`-initialized: touching it never allocates.
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|slot| {
        let v = slot.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (COUNTER_SHARDS - 1);
            slot.set(v);
            v
        }
    })
}

/// A monotonically increasing, sharded atomic counter.
///
/// `add` touches one relaxed atomic in the caller's own shard — no
/// locks, no allocation, no cross-thread cache-line sharing.
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter, constructible in `const` context.
    pub const fn new() -> Counter {
        Counter { shards: [const { PaddedU64::new() }; COUNTER_SHARDS] }
    }

    /// Adds `n`. No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one. No-op while telemetry is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A last-write-wins gauge (e.g. currently held leases).
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge, constructible in `const` context.
    pub const fn new() -> Gauge {
        Gauge { value: AtomicU64::new(0) }
    }

    /// Sets the gauge. No-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Increments the gauge.
    #[inline]
    pub fn inc(&self) {
        if enabled() {
            self.value.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Decrements the gauge, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        if enabled() {
            let _ = self
                .value
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// A log₂-bucketed histogram: bucket = bit length of the sample, so 65
/// fixed buckets cover the full `u64` range with ~2× resolution —
/// plenty for latency/throughput distributions, and recording is one
/// `leading_zeros` plus three relaxed atomics.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram, constructible in `const` context.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample: its bit length.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`2^i - 1`).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample. No-op while telemetry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Starts a span timer that records elapsed nanoseconds into this
    /// histogram when stopped or dropped.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span { hist: self, start: Instant::now() }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Raw count of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A drop-guard span timer over a [`Histogram`]; allocation-free.
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Span<'_> {
    /// Stops the span, records the elapsed nanoseconds, and returns
    /// them (also recorded on drop if never stopped explicitly).
    pub fn stop(self) -> u64 {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.hist.record(ns);
        std::mem::forget(self);
        ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

macro_rules! catalog {
    (
        counters { $($(#[doc = $cdoc:literal])* $cfield:ident => $cname:literal,)* }
        gauges { $($(#[doc = $gdoc:literal])* $gfield:ident => $gname:literal,)* }
        histograms { $($(#[doc = $hdoc:literal])* $hfield:ident => $hname:literal,)* }
    ) => {
        /// The process-wide metric catalog: every instrumented layer
        /// holds a pre-registered handle into this one `static` — no
        /// registration step, no lazy initialization, no lookup on the
        /// hot path.
        pub struct Metrics {
            $($(#[doc = $cdoc])* pub $cfield: Counter,)*
            $($(#[doc = $gdoc])* pub $gfield: Gauge,)*
            $($(#[doc = $hdoc])* pub $hfield: Histogram,)*
        }

        impl Metrics {
            const fn new() -> Metrics {
                Metrics {
                    $($cfield: Counter::new(),)*
                    $($gfield: Gauge::new(),)*
                    $($hfield: Histogram::new(),)*
                }
            }

            /// Visits every counter in catalog (declaration) order.
            pub fn visit_counters(&self, f: &mut dyn FnMut(&'static str, &Counter)) {
                $(f($cname, &self.$cfield);)*
            }

            /// Visits every gauge in catalog order.
            pub fn visit_gauges(&self, f: &mut dyn FnMut(&'static str, &Gauge)) {
                $(f($gname, &self.$gfield);)*
            }

            /// Visits every histogram in catalog order.
            pub fn visit_histograms(&self, f: &mut dyn FnMut(&'static str, &Histogram)) {
                $(f($hname, &self.$hfield);)*
            }
        }
    };
}

catalog! {
    counters {
        /// Ingestion runs completed (one per source file or stream).
        ingest_runs => "ingest_runs",
        /// Trace records emitted by ingestion.
        ingest_records => "ingest_records",
        /// Source lines skipped by lossy ingestion.
        ingest_skipped => "ingest_skipped",
        /// Trace-cache hits (entry already converted).
        cache_hits => "cache_hits",
        /// Trace-cache misses (conversion or generation ran).
        cache_misses => "cache_misses",
        /// `simulate`/`simulate_stream` runs completed.
        sim_runs => "sim_runs",
        /// Records replayed by single-cell simulation runs.
        sim_records => "sim_records",
        /// Lockstep chunks advanced by `GridReplay`.
        grid_chunks => "grid_chunks",
        /// Engine-records advanced by `GridReplay` (records × cells).
        grid_records => "grid_records",
        /// Grid cells finished into results.
        grid_cells => "grid_cells",
        /// Campaign runs completed.
        campaign_runs => "campaign_runs",
        /// Workload bands simulated by campaigns and workers.
        campaign_bands => "campaign_bands",
        /// Campaign cells simulated (excludes journal-resumed cells).
        campaign_cells => "campaign_cells",
        /// Engine-records simulated by campaign bands (records × cells).
        campaign_records => "campaign_records",
        /// Journal segments parsed (fully or incrementally) by merges.
        journal_segments_scanned => "journal_segments_scanned",
        /// Journal segments served from a merge cursor with zero reads.
        journal_segments_reused => "journal_segments_reused",
        /// Leases acquired by dist workers.
        dist_lease_claims => "dist_lease_claims",
        /// Claim attempts that lost to another live worker.
        dist_lease_contention => "dist_lease_contention",
        /// Stale leases reclaimed (epoch bumped) by dist workers.
        dist_stale_reclaims => "dist_stale_reclaims",
        /// Contention backoff sleeps taken by dist workers.
        dist_backoffs => "dist_backoffs",
        /// Lease heartbeat renewals.
        dist_heartbeats => "dist_heartbeats",
    }
    gauges {
        /// Leases currently held by this process.
        dist_held_leases => "dist_held_leases",
    }
    histograms {
        /// Wall-clock nanoseconds per ingestion run.
        ingest_wall_ns => "ingest_wall_ns",
        /// Nanoseconds to ensure a cached trace exists (hit or convert).
        cache_ensure_ns => "cache_ensure_ns",
        /// Wall-clock nanoseconds per single-cell simulation run.
        sim_wall_ns => "sim_wall_ns",
        /// Wall-clock nanoseconds per campaign band (all pending cells).
        campaign_band_sim_ns => "campaign_band_sim_ns",
        /// Per-cell simulation wall-clock nanoseconds (band ÷ cells in
        /// grid mode, measured directly in per-cell mode).
        campaign_cell_sim_ns => "campaign_cell_sim_ns",
        /// Nanoseconds per journal-segment directory merge.
        journal_merge_ns => "journal_merge_ns",
        /// Nanoseconds spent decoding/synthesizing bench traces.
        bench_decode_ns => "bench_decode_ns",
        /// Nanoseconds spent in timed bench simulation reps.
        bench_simulate_ns => "bench_simulate_ns",
        /// Nanoseconds spent assembling bench reports.
        bench_report_ns => "bench_report_ns",
    }
}

static METRICS: Metrics = Metrics::new();

/// The process-wide catalog.
#[inline]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::enabled_lock;

    #[test]
    fn counter_sums_across_shards_and_threads() {
        let _guard = enabled_lock();
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let _guard = enabled_lock();
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(10), 1023);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
        let h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1027);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(11), 1);
    }

    #[test]
    fn disabled_metrics_freeze() {
        let _guard = enabled_lock();
        let c = Counter::new();
        let h = Histogram::new();
        c.inc();
        h.record(7);
        set_enabled(false);
        c.add(100);
        h.record(7);
        set_enabled(true);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_records_elapsed_ns() {
        let _guard = enabled_lock();
        let h = Histogram::new();
        let ns = h.span().stop();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), ns);
        {
            let _span = h.span();
        }
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn catalog_visit_order_is_stable() {
        let mut names = Vec::new();
        metrics().visit_counters(&mut |n, _| names.push(n));
        assert_eq!(names.first(), Some(&"ingest_runs"));
        assert_eq!(names.last(), Some(&"dist_heartbeats"));
        let mut hists = Vec::new();
        metrics().visit_histograms(&mut |n, _| hists.push(n));
        assert!(hists.contains(&"sim_wall_ns"));
    }
}
