//! Run-scoped sinks: the per-run JSONL event log and the end-of-run
//! manifest (stamped with [`OBS_SCHEMA_VERSION`]).
//!
//! A [`RunObs`] captures a catalog [`Snapshot`] when the run begins and
//! manifests the **delta**, so process-wide totals stay correctly
//! scoped even when several runs share one process. Event writes are
//! best-effort (telemetry must never fail a run) and line-buffered;
//! manifests go through a temp file and an atomic rename so `campaign
//! watch` can poll them while a worker is mid-run.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::json::JsonObj;
use crate::snapshot::Snapshot;
use crate::OBS_SCHEMA_VERSION;

/// Identity of one run, stamped into the event-log header and the
/// manifest.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// Campaign name from the spec.
    pub campaign: String,
    /// Campaign spec digest (grid identity).
    pub spec_digest: String,
    /// Worker id, or `"(solo)"` for single-process runs.
    pub worker: String,
}

/// One event field value.
#[derive(Clone, Copy, Debug)]
pub enum Field<'a> {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(&'a str),
    /// A boolean.
    Bool(bool),
}

/// A live run: event log plus manifest accounting.
pub struct RunObs {
    dir: PathBuf,
    manifest_file: String,
    meta: RunMeta,
    events: Option<BufWriter<File>>,
    started: Instant,
    baseline: Snapshot,
    cells_done: u64,
    bands_done: u64,
    records_simulated: u64,
    sim_wall_ns: u64,
}

impl RunObs {
    /// Starts a run: creates `dir` if needed, truncates and headers the
    /// event log, and snapshots the catalog as the manifest baseline.
    pub fn begin(
        dir: &Path,
        meta: RunMeta,
        event_file: &str,
        manifest_file: &str,
    ) -> io::Result<RunObs> {
        fs::create_dir_all(dir)?;
        let mut events = BufWriter::new(File::create(dir.join(event_file))?);
        let mut header = JsonObj::new();
        header
            .u64("ccsim_obs", OBS_SCHEMA_VERSION)
            .str("kind", "events")
            .str("campaign", &meta.campaign)
            .str("spec", &meta.spec_digest)
            .str("worker", &meta.worker);
        events.write_all(header.finish().as_bytes())?;
        events.write_all(b"\n")?;
        events.flush()?;
        Ok(RunObs {
            dir: dir.to_path_buf(),
            manifest_file: manifest_file.to_owned(),
            meta,
            events: Some(events),
            started: Instant::now(),
            baseline: Snapshot::take(),
            cells_done: 0,
            bands_done: 0,
            records_simulated: 0,
            sim_wall_ns: 0,
        })
    }

    /// Appends one event line (`ev`, nanoseconds since run start, then
    /// `fields` in order). Best-effort: write failures are swallowed —
    /// telemetry never fails the run it observes.
    pub fn event(&mut self, ev: &str, fields: &[(&str, Field<'_>)]) {
        let t_ns = self.started.elapsed().as_nanos() as u64;
        let mut line = JsonObj::new();
        line.str("ev", ev).u64("t_ns", t_ns);
        for &(k, v) in fields {
            match v {
                Field::U64(n) => line.u64(k, n),
                Field::Str(s) => line.str(k, s),
                Field::Bool(b) => line.bool(k, b),
            };
        }
        if let Some(events) = &mut self.events {
            let _ = events.write_all(line.finish().as_bytes());
            let _ = events.write_all(b"\n");
            let _ = events.flush();
        }
    }

    /// Accounts one finished band: `cells` simulated cells advancing
    /// `records_simulated` engine-records over `sim_wall_ns` of
    /// simulation wall-clock.
    pub fn add_band(&mut self, cells: u64, records_simulated: u64, sim_wall_ns: u64) {
        self.bands_done += 1;
        self.cells_done += cells;
        self.records_simulated += records_simulated;
        self.sim_wall_ns += sim_wall_ns;
    }

    /// Cells simulated so far this run.
    pub fn cells_done(&self) -> u64 {
        self.cells_done
    }

    /// Engine-records simulated so far this run.
    pub fn records_simulated(&self) -> u64 {
        self.records_simulated
    }

    /// Renders the manifest document for the run so far.
    pub fn manifest_json(&self) -> String {
        let delta = Snapshot::take().delta(&self.baseline);
        let mut counters = JsonObj::new();
        for &(name, v) in &delta.counters {
            counters.u64(name, v);
        }
        let mut gauges = JsonObj::new();
        for &(name, v) in &delta.gauges {
            gauges.u64(name, v);
        }
        let mut histograms = JsonObj::new();
        for (name, h) in &delta.histograms {
            let mut buckets = String::from("[");
            let mut any = false;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if any {
                        buckets.push_str(", ");
                    }
                    any = true;
                    buckets.push_str(&format!("[{i}, {c}]"));
                }
            }
            buckets.push(']');
            let q = h.quantiles();
            let mut quantiles = JsonObj::new();
            quantiles
                .u64("p50", q.p50)
                .u64("p90", q.p90)
                .u64("p99", q.p99)
                .u64("min", q.min)
                .u64("max", q.max);
            let mut hist = JsonObj::new();
            hist.u64("count", h.count)
                .u64("sum", h.sum)
                .raw("quantiles", &quantiles.finish())
                .raw("buckets", &buckets);
            histograms.raw(name, &hist.finish());
        }
        let mut doc = JsonObj::new();
        doc.u64("ccsim_obs", OBS_SCHEMA_VERSION)
            .str("kind", "manifest")
            .str("campaign", &self.meta.campaign)
            .str("spec", &self.meta.spec_digest)
            .str("worker", &self.meta.worker)
            .u64("cells_done", self.cells_done)
            .u64("bands_done", self.bands_done)
            .u64("records_simulated", self.records_simulated)
            .u64("sim_wall_ns", self.sim_wall_ns)
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &histograms.finish());
        let mut out = doc.finish();
        out.push('\n');
        out
    }

    /// Writes the manifest atomically (temp file + rename), so watchers
    /// polling the directory never observe a torn document.
    pub fn write_manifest(&self) -> io::Result<()> {
        let tmp = self.dir.join(format!("{}.tmp", self.manifest_file));
        fs::write(&tmp, self.manifest_json())?;
        fs::rename(&tmp, self.dir.join(&self.manifest_file))
    }

    /// Ends the run: logs `run_end` and writes the final manifest.
    pub fn finish(mut self) -> io::Result<()> {
        self.event(
            "run_end",
            &[
                ("cells_done", Field::U64(self.cells_done)),
                ("bands_done", Field::U64(self.bands_done)),
                ("records_simulated", Field::U64(self.records_simulated)),
                ("sim_wall_ns", Field::U64(self.sim_wall_ns)),
            ],
        );
        if let Some(events) = &mut self.events {
            events.flush()?;
        }
        self.write_manifest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccsim_obs_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn run_obs_writes_header_events_and_manifest() {
        let dir = temp_dir("sink");
        let meta = RunMeta {
            campaign: "demo".into(),
            spec_digest: "abc123".into(),
            worker: "(solo)".into(),
        };
        let mut obs = RunObs::begin(&dir, meta, "run.obs.jsonl", "manifest.json").unwrap();
        obs.event("band_start", &[("workload", Field::Str("w")), ("cells", Field::U64(2))]);
        obs.add_band(2, 1000, 5_000);
        obs.finish().unwrap();

        let log = fs::read_to_string(dir.join("run.obs.jsonl")).unwrap();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 events: {log}");
        assert!(lines[0].contains("\"ccsim_obs\": 2"));
        assert!(lines[0].contains("\"kind\": \"events\""));
        assert!(lines[1].contains("\"ev\": \"band_start\""));
        assert!(lines[2].contains("\"ev\": \"run_end\""));

        let manifest = fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"ccsim_obs\": 2"));
        assert!(manifest.contains("\"kind\": \"manifest\""));
        assert!(manifest.contains("\"cells_done\": 2"));
        assert!(manifest.contains("\"records_simulated\": 1000"));
        assert!(manifest.ends_with("}\n"));
        assert!(!dir.join("manifest.json.tmp").exists(), "temp file renamed away");
        fs::remove_dir_all(&dir).unwrap();
    }
}
