//! Point-in-time views of the catalog: snapshots, deltas between two
//! snapshots (run-scoped accounting), and Prometheus-style text
//! exposition.

use crate::metrics::{metrics, HISTOGRAM_BUCKETS};
use crate::metrics::{Gauge, Histogram};

/// A frozen view of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Per-bucket sample counts, indexed by sample bit length.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    fn take(h: &Histogram) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = h.bucket(i);
        }
        HistogramSnapshot { count: h.count(), sum: h.sum(), buckets }
    }

    fn delta(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(base.buckets[i]);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            buckets,
        }
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A frozen view of the whole catalog, in stable (declaration) order.
///
/// `Snapshot::take()` at run start plus [`Snapshot::delta`] at run end
/// scopes process-wide totals to one run — how manifests stay accurate
/// when several runs share a process (tests, long-lived workers).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` per counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, view)` per histogram.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl Snapshot {
    /// Captures the catalog now.
    pub fn take() -> Snapshot {
        let m = metrics();
        let mut counters = Vec::new();
        m.visit_counters(&mut |name, c| counters.push((name, c.get())));
        let mut gauges = Vec::new();
        m.visit_gauges(&mut |name, g: &Gauge| gauges.push((name, g.get())));
        let mut histograms = Vec::new();
        m.visit_histograms(&mut |name, h| histograms.push((name, HistogramSnapshot::take(h))));
        Snapshot { counters, gauges, histograms }
    }

    /// The change since `base`: counters and histograms subtract
    /// (saturating); gauges keep their current value.
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        debug_assert_eq!(self.counters.len(), base.counters.len());
        Snapshot {
            counters: self
                .counters
                .iter()
                .zip(&base.counters)
                .map(|(&(name, now), &(_, then))| (name, now.saturating_sub(then)))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .zip(&base.histograms)
                .map(|((name, now), (_, then))| (*name, now.delta(then)))
                .collect(),
        }
    }

    /// Value of the named counter (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }

    /// View of the named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Renders the snapshot as Prometheus text exposition. Counters get
    /// a `ccsim_` prefix and `_total` suffix; histogram buckets are
    /// cumulative with `le` = the bucket's inclusive upper bound, and
    /// empty trailing buckets are elided before the `+Inf` bucket.
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        for &(name, v) in &self.counters {
            out.push_str(&format!("# TYPE ccsim_{name}_total counter\nccsim_{name}_total {v}\n"));
        }
        for &(name, v) in &self.gauges {
            out.push_str(&format!("# TYPE ccsim_{name} gauge\nccsim_{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE ccsim_{name} histogram\n"));
            let last = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
                cumulative += c;
                let le = Histogram::bucket_bound(i);
                out.push_str(&format!("ccsim_{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "ccsim_{name}_bucket{{le=\"+Inf\"}} {count}\nccsim_{name}_sum {sum}\nccsim_{name}_count {count}\n",
                count = h.count,
                sum = h.sum,
            ));
        }
        out
    }
}

/// Writes the current catalog as Prometheus text exposition to `path`
/// (the `--metrics-out` sink).
pub fn write_exposition(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, Snapshot::take().exposition())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::enabled_lock;

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let _guard = enabled_lock();
        let base = Snapshot::take();
        metrics().sim_runs.add(3);
        metrics().sim_wall_ns.record(100);
        let now = Snapshot::take();
        let d = now.delta(&base);
        assert!(d.counter("sim_runs") >= 3);
        let h = d.histogram("sim_wall_ns").unwrap();
        assert!(h.count >= 1);
        assert!(h.sum >= 100);
        assert!(d.histogram("no_such_metric").is_none());
    }

    #[test]
    fn exposition_is_prometheus_shaped() {
        let _guard = enabled_lock();
        metrics().cache_hits.inc();
        metrics().cache_ensure_ns.record(1000);
        let text = Snapshot::take().exposition();
        assert!(text.contains("# TYPE ccsim_cache_hits_total counter\n"));
        assert!(text.contains("# TYPE ccsim_cache_ensure_ns histogram\n"));
        assert!(text.contains("ccsim_cache_ensure_ns_bucket{le=\"+Inf\"}"));
        assert!(text.contains("ccsim_cache_ensure_ns_sum"));
        // Cumulative buckets: the +Inf bucket equals the count line.
        let count_line =
            text.lines().find(|l| l.starts_with("ccsim_cache_ensure_ns_count ")).unwrap();
        let inf_line = text
            .lines()
            .find(|l| l.starts_with("ccsim_cache_ensure_ns_bucket{le=\"+Inf\"}"))
            .unwrap();
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        let inf: u64 = inf_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(count, inf);
    }
}
