//! Point-in-time views of the catalog: snapshots, deltas between two
//! snapshots (run-scoped accounting), and Prometheus-style text
//! exposition.

use crate::metrics::{metrics, HISTOGRAM_BUCKETS};
use crate::metrics::{Gauge, Histogram};

/// A frozen view of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Per-bucket sample counts, indexed by sample bit length.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

/// Quantile and extremum summary derived purely from a histogram's log₂
/// buckets: every value is a bucket bound, so the summary is an exact
/// deterministic function of the bucket counts (within the ~2×
/// resolution the buckets provide) — no sample retention, no
/// interpolation, byte-stable across re-renders.
///
/// `p50`/`p90`/`p99` and `max` report the *upper* bound of the bucket
/// holding that rank; `min` reports the *lower* bound of the first
/// non-empty bucket. All fields are 0 when no samples were recorded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuantileSummary {
    /// Number of samples the summary covers.
    pub count: u64,
    /// Lower bound of the first non-empty bucket.
    pub min: u64,
    /// Upper bound of the last non-empty bucket.
    pub max: u64,
    /// Upper bound of the bucket holding the 50th-percentile sample.
    pub p50: u64,
    /// Upper bound of the bucket holding the 90th-percentile sample.
    pub p90: u64,
    /// Upper bound of the bucket holding the 99th-percentile sample.
    pub p99: u64,
}

impl QuantileSummary {
    /// Derives the summary from raw log₂ bucket counts. Buckets beyond
    /// `buckets.len()` count as empty, so callers holding fewer than
    /// [`HISTOGRAM_BUCKETS`] trailing buckets (elided zeros) work too.
    pub fn from_buckets(buckets: &[u64]) -> QuantileSummary {
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return QuantileSummary::default();
        }
        let first = buckets.iter().position(|&c| c > 0).unwrap_or(0);
        let last = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let rank_bound = |q_num: u64, q_den: u64| {
            // The bucket holding the ceil(q * count)-th sample (1-based).
            let rank = (count * q_num).div_ceil(q_den).max(1);
            let mut cumulative = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                cumulative += c;
                if cumulative >= rank {
                    return Histogram::bucket_bound(i);
                }
            }
            Histogram::bucket_bound(last)
        };
        QuantileSummary {
            count,
            min: if first == 0 { 0 } else { 1u64 << (first - 1) },
            max: Histogram::bucket_bound(last),
            p50: rank_bound(1, 2),
            p90: rank_bound(9, 10),
            p99: rank_bound(99, 100),
        }
    }
}

impl HistogramSnapshot {
    fn take(h: &Histogram) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = h.bucket(i);
        }
        HistogramSnapshot { count: h.count(), sum: h.sum(), buckets }
    }

    fn delta(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(base.buckets[i]);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            buckets,
        }
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket-derived quantile summary of this view.
    pub fn quantiles(&self) -> QuantileSummary {
        QuantileSummary::from_buckets(&self.buckets)
    }
}

/// A frozen view of the whole catalog, in stable (declaration) order.
///
/// `Snapshot::take()` at run start plus [`Snapshot::delta`] at run end
/// scopes process-wide totals to one run — how manifests stay accurate
/// when several runs share a process (tests, long-lived workers).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` per counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, view)` per histogram.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl Snapshot {
    /// Captures the catalog now.
    pub fn take() -> Snapshot {
        let m = metrics();
        let mut counters = Vec::new();
        m.visit_counters(&mut |name, c| counters.push((name, c.get())));
        let mut gauges = Vec::new();
        m.visit_gauges(&mut |name, g: &Gauge| gauges.push((name, g.get())));
        let mut histograms = Vec::new();
        m.visit_histograms(&mut |name, h| histograms.push((name, HistogramSnapshot::take(h))));
        Snapshot { counters, gauges, histograms }
    }

    /// The change since `base`: counters and histograms subtract
    /// (saturating); gauges keep their current value.
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        debug_assert_eq!(self.counters.len(), base.counters.len());
        Snapshot {
            counters: self
                .counters
                .iter()
                .zip(&base.counters)
                .map(|(&(name, now), &(_, then))| (name, now.saturating_sub(then)))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .zip(&base.histograms)
                .map(|((name, now), (_, then))| (*name, now.delta(then)))
                .collect(),
        }
    }

    /// Value of the named counter (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }

    /// View of the named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Renders the snapshot as Prometheus text exposition. Counters get
    /// a `ccsim_` prefix and `_total` suffix; histogram buckets are
    /// cumulative with `le` = the bucket's inclusive upper bound, and
    /// empty trailing buckets are elided before the `+Inf` bucket.
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        for &(name, v) in &self.counters {
            out.push_str(&format!("# TYPE ccsim_{name}_total counter\nccsim_{name}_total {v}\n"));
        }
        for &(name, v) in &self.gauges {
            out.push_str(&format!("# TYPE ccsim_{name} gauge\nccsim_{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE ccsim_{name} histogram\n"));
            let last = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
                cumulative += c;
                let le = Histogram::bucket_bound(i);
                out.push_str(&format!("ccsim_{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "ccsim_{name}_bucket{{le=\"+Inf\"}} {count}\nccsim_{name}_sum {sum}\nccsim_{name}_count {count}\n",
                count = h.count,
                sum = h.sum,
            ));
            // Pre-computed quantile gauges (bucket-bound estimates) so
            // scrape-side tooling gets p50/p90/p99 without re-deriving
            // them from the bucket series.
            let q = h.quantiles();
            out.push_str(&format!("# TYPE ccsim_{name}_quantile gauge\n"));
            for (label, v) in [("0.5", q.p50), ("0.9", q.p90), ("0.99", q.p99)] {
                out.push_str(&format!("ccsim_{name}_quantile{{q=\"{label}\"}} {v}\n"));
            }
        }
        out
    }
}

/// Writes the current catalog as Prometheus text exposition to `path`
/// (the `--metrics-out` sink).
pub fn write_exposition(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, Snapshot::take().exposition())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::enabled_lock;

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let _guard = enabled_lock();
        let base = Snapshot::take();
        metrics().sim_runs.add(3);
        metrics().sim_wall_ns.record(100);
        let now = Snapshot::take();
        let d = now.delta(&base);
        assert!(d.counter("sim_runs") >= 3);
        let h = d.histogram("sim_wall_ns").unwrap();
        assert!(h.count >= 1);
        assert!(h.sum >= 100);
        assert!(d.histogram("no_such_metric").is_none());
    }

    #[test]
    fn exposition_is_prometheus_shaped() {
        let _guard = enabled_lock();
        metrics().cache_hits.inc();
        metrics().cache_ensure_ns.record(1000);
        let text = Snapshot::take().exposition();
        assert!(text.contains("# TYPE ccsim_cache_hits_total counter\n"));
        assert!(text.contains("# TYPE ccsim_cache_ensure_ns histogram\n"));
        assert!(text.contains("ccsim_cache_ensure_ns_bucket{le=\"+Inf\"}"));
        assert!(text.contains("ccsim_cache_ensure_ns_sum"));
        // Cumulative buckets: the +Inf bucket equals the count line.
        let count_line =
            text.lines().find(|l| l.starts_with("ccsim_cache_ensure_ns_count ")).unwrap();
        let inf_line = text
            .lines()
            .find(|l| l.starts_with("ccsim_cache_ensure_ns_bucket{le=\"+Inf\"}"))
            .unwrap();
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        let inf: u64 = inf_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(count, inf);
        // Quantile gauges ride along, one per tracked percentile.
        assert!(text.contains("# TYPE ccsim_cache_ensure_ns_quantile gauge\n"));
        for q in ["0.5", "0.9", "0.99"] {
            assert!(
                text.contains(&format!("ccsim_cache_ensure_ns_quantile{{q=\"{q}\"}} ")),
                "missing quantile {q}: {text}"
            );
        }
    }

    #[test]
    fn quantiles_are_bucket_bound_estimates() {
        // Empty histogram: all zeros.
        assert_eq!(QuantileSummary::from_buckets(&[0u64; 4]), QuantileSummary::default());
        // 100 samples in bucket 3 ([4, 7]), 1 outlier in bucket 10
        // ([512, 1023]): p50/p90 land in bucket 3, p99 still in bucket 3
        // (rank 100 of 101), max reports the outlier's bucket bound.
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[3] = 100;
        buckets[10] = 1;
        let q = QuantileSummary::from_buckets(&buckets);
        assert_eq!(q.count, 101);
        assert_eq!(q.min, 4, "lower bound of bucket 3");
        assert_eq!(q.max, 1023, "upper bound of bucket 10");
        assert_eq!(q.p50, 7);
        assert_eq!(q.p90, 7);
        assert_eq!(q.p99, 7, "rank ceil(0.99*101)=100 is the last bucket-3 sample");
        // Bucket 0 (zero samples) keeps min at 0.
        let mut zeros = [0u64; HISTOGRAM_BUCKETS];
        zeros[0] = 10;
        let q = QuantileSummary::from_buckets(&zeros);
        assert_eq!((q.min, q.max, q.p50, q.p99), (0, 0, 0, 0));
        // A single sample pins every percentile to its bucket.
        let q = QuantileSummary::from_buckets(&[0, 0, 1]);
        assert_eq!((q.count, q.min, q.max, q.p50, q.p90, q.p99), (1, 2, 3, 3, 3, 3));
        // Snapshot wiring: record through a live histogram.
        let _guard = enabled_lock();
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(1000);
        }
        let q = HistogramSnapshot::take(&h).quantiles();
        assert_eq!(q.count, 10);
        assert_eq!(q.p50, 1023);
        assert_eq!(q.min, 512);
    }
}
