//! # ccsim-obs
//!
//! Zero-allocation telemetry for the whole workspace: a process-wide
//! catalog of sharded atomic [`Counter`]s, [`Gauge`]s, and log₂-bucketed
//! [`Histogram`]s with drop-guard [`Span`] timers, plus two pinned-schema
//! sinks — a per-run JSONL event log + end-of-run manifest
//! ([`RunObs`], [`OBS_SCHEMA_VERSION`]) and Prometheus-style text
//! exposition ([`Snapshot::exposition`], `--metrics-out`).
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero steady-state allocations on instrumented hot paths.** The
//!    catalog is a `const`-constructed `static` (no lazy init, no
//!    registration), counter shards are picked through a
//!    `const`-initialized thread-local, and recording is a handful of
//!    relaxed atomics. `tests/alloc_free.rs` pins replay at 0
//!    allocations per record *with telemetry enabled*.
//! 2. **No dependencies.** This crate sits below every other workspace
//!    crate (core, ingest, campaign, dist, bench, cli all instrument
//!    through it), so it depends on nothing but `std` and carries its
//!    own minimal deterministic JSON emitter ([`json`]).
//! 3. **Run-scoped accuracy.** Process totals are global; a [`RunObs`]
//!    snapshots the catalog at run start and manifests the delta, so
//!    concurrent or consecutive runs in one process stay separable.
//!
//! # Example
//!
//! ```
//! use ccsim_obs::{metrics, Snapshot};
//!
//! let before = Snapshot::take();
//! metrics().sim_runs.inc();
//! metrics().sim_wall_ns.record(1_250);
//! let delta = Snapshot::take().delta(&before);
//! assert_eq!(delta.counter("sim_runs"), 1);
//! assert!(delta.exposition().contains("ccsim_sim_runs_total"));
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod sink;
pub mod snapshot;

pub use metrics::{
    enabled, metrics, set_enabled, Counter, Gauge, Histogram, Metrics, Span, COUNTER_SHARDS,
    HISTOGRAM_BUCKETS,
};
pub use sink::{Field, RunMeta, RunObs};
pub use snapshot::{write_exposition, HistogramSnapshot, QuantileSummary, Snapshot};

/// Schema version stamped into every obs document: the event-log
/// header, the run manifest, and the `campaign watch --json` view.
///
/// v2 added bucket-derived quantile summaries ([`QuantileSummary`]) to
/// every manifest histogram, `_quantile` gauges to the Prometheus
/// exposition, and the aggregate `cell_sim_ns` quantile block to the
/// watch document. Readers ([`ccsim trends`], `campaign watch`) accept
/// the whole [`OBS_MIN_SCHEMA_VERSION`]..=[`OBS_SCHEMA_VERSION`] range.
pub const OBS_SCHEMA_VERSION: u64 = 2;

/// Oldest obs document schema readers still accept: v1 manifests carry
/// the same scalar accounting and raw histogram buckets, just no
/// pre-computed quantile block (consumers derive one from the buckets).
pub const OBS_MIN_SCHEMA_VERSION: u64 = 1;

/// Worker id used by single-process (non-dist) runs in obs documents.
pub const SOLO_WORKER: &str = "(solo)";

/// Integer records-per-second over a nanosecond wall clock (0 when no
/// time has accrued). The **one** rate rule every consumer shares —
/// worker manifests, `DistStatus`/`campaign watch` rows and aggregates,
/// and the `ccsim trends` ledger all derive throughput through here, so
/// two views of the same accounting can never round differently.
pub fn records_per_sec(records: u64, wall_ns: u64) -> u64 {
    if wall_ns == 0 {
        0
    } else {
        ((records as u128 * 1_000_000_000) / wall_ns as u128) as u64
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes unit tests that read or toggle the global enabled
    /// flag — they would otherwise race `disabled_metrics_freeze`.
    static ENABLED_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn enabled_lock() -> MutexGuard<'static, ()> {
        ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
