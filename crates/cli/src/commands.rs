//! Subcommand implementations for the `ccsim` binary.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use ccsim_core::experiment::report::fmt_f;
use ccsim_core::experiment::Table;
use ccsim_core::{simulate, SimConfig};
use ccsim_policies::PolicyKind;
use ccsim_trace::stats::{ReuseProfile, TraceStats};
use ccsim_trace::{read_trace, write_trace, Trace};
use ccsim_workloads::{
    paper_workloads, qualcomm_suite, spec_suite, xsbench_suite, GapScale, GapWorkload, SuiteScale,
};

/// Top-level usage text.
pub const USAGE: &str = "\
ccsim — trace-driven LLC replacement-policy characterization

USAGE:
    ccsim trace-gen <workload> <out.cctr> [--quick]
    ccsim trace-stats <in.cctr>
    ccsim sim <in.cctr> [--policy <name>]... [--llc-scale <power-of-two>]
    ccsim workloads
    ccsim policies
";

/// Builds the named workload's trace.
fn build_workload(name: &str, quick: bool) -> Result<Trace, String> {
    if let Ok(gap) = name.parse::<GapWorkload>() {
        let scale = if quick { GapScale::Quick } else { GapScale::Full };
        return Ok(gap.trace(scale));
    }
    let scale = if quick { SuiteScale::Quick } else { SuiteScale::Full };
    let pool: Vec<Trace> = match name.split('.').next() {
        Some("spec") => spec_suite(scale),
        Some("xsbench") => xsbench_suite(scale),
        Some("qcom") => qualcomm_suite(scale),
        _ => return Err(format!("unknown workload {name:?}; try `ccsim workloads`")),
    };
    pool.into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| format!("unknown workload {name:?}; try `ccsim workloads`"))
}

/// `ccsim trace-gen <workload> <out> [--quick]`
pub fn trace_gen(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [workload, out] = positional[..] else {
        return Err(format!("expected <workload> <out.cctr>\n\n{USAGE}"));
    };
    let quick = args.iter().any(|a| a == "--quick");
    let trace = build_workload(workload, quick)?;
    let file = File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    write_trace(&trace, BufWriter::new(file)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {}: {} records, {} instructions", out, trace.len(), trace.instructions());
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    read_trace(BufReader::new(file)).map_err(|e| format!("decoding {path}: {e}"))
}

/// `ccsim trace-stats <in>`
pub fn trace_stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(format!("expected <in.cctr>\n\n{USAGE}"));
    };
    let trace = load_trace(path)?;
    let s = TraceStats::compute(&trace);
    println!("workload            : {}", trace.name());
    println!("memory records      : {}", trace.len());
    println!("instructions        : {}", s.instructions);
    println!("loads / stores      : {} / {}", s.loads, s.stores);
    println!("mem per kinstr      : {:.1}", s.mem_per_kilo_instruction());
    println!(
        "footprint           : {} blocks ({:.2} MB)",
        s.footprint_blocks,
        s.footprint_bytes as f64 / (1 << 20) as f64
    );
    println!("distinct PCs        : {}", s.distinct_pcs);
    println!("blocks per PC       : mean {:.1}, max {}", s.mean_blocks_per_pc, s.max_blocks_per_pc);
    let p = ReuseProfile::compute(&trace);
    println!("cold accesses       : {:.1}%", 100.0 * p.cold() as f64 / p.total().max(1) as f64);
    for (cap, label) in [(512u64, "L1D-sized"), (16_384, "L2-sized"), (22_528, "LLC-sized")] {
        println!(
            "reuse within {:>6} blocks ({label:>9}): {:.1}%",
            cap,
            100.0 * p.hit_fraction_within(cap)
        );
    }
    Ok(())
}

/// `ccsim sim <in> [--policy P]... [--llc-scale N]`
pub fn sim(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let path = positional.first().ok_or_else(|| format!("expected <in.cctr>\n\n{USAGE}"))?;
    let mut policies: Vec<PolicyKind> = Vec::new();
    let mut llc_scale = 1u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policies.push(v.parse().map_err(|e| format!("{e}"))?);
            }
            "--llc-scale" => {
                let v = it.next().ok_or("--llc-scale needs a value")?;
                llc_scale = v.parse().map_err(|_| format!("bad llc scale {v:?}"))?;
                if !llc_scale.is_power_of_two() {
                    return Err("llc scale must be a power of two".into());
                }
            }
            _ => {}
        }
    }
    if policies.is_empty() {
        policies.push(PolicyKind::Lru);
    }
    let trace = load_trace(path)?;
    let config = SimConfig::cascade_lake().with_llc_scale(llc_scale);
    println!("platform: {config}");
    let mut table = Table::new(vec![
        "policy".into(),
        "ipc".into(),
        "l1d_mpki".into(),
        "l2_mpki".into(),
        "llc_mpki".into(),
        "llc_hit_%".into(),
        "dram_reach_%".into(),
    ]);
    for policy in policies {
        let r = simulate(&trace, &config, policy);
        table.row(vec![
            r.policy.clone(),
            fmt_f(r.ipc(), 3),
            fmt_f(r.mpki_l1d(), 1),
            fmt_f(r.mpki_l2(), 1),
            fmt_f(r.mpki_llc(), 1),
            fmt_f(100.0 * r.llc.hit_rate(), 1),
            fmt_f(100.0 * r.dram_reach_fraction(), 1),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// `ccsim workloads`
pub fn list_workloads() -> Result<(), String> {
    println!("GAP (kernel.graph):");
    for w in paper_workloads() {
        println!("  {w}");
    }
    println!("SPEC-like:");
    for t in spec_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    println!("XSBench-like:");
    for t in xsbench_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    println!("Qualcomm-like:");
    for t in qualcomm_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    Ok(())
}

/// `ccsim policies`
pub fn list_policies() -> Result<(), String> {
    for k in PolicyKind::ALL {
        println!("{}", k.name());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_workload_accepts_gap_and_suite_names() {
        assert!(build_workload("bfs.kron", true).is_ok());
        assert!(build_workload("spec.stream", true).is_ok());
        assert!(build_workload("xsbench.small", true).is_ok());
        assert!(build_workload("qcom.srv0", true).is_ok());
        assert!(build_workload("nope.nothing", true).is_err());
        assert!(build_workload("spec.nothing", true).is_err());
    }

    #[test]
    fn trace_gen_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("ccsim_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.cctr");
        let path_s = path.to_str().unwrap().to_owned();
        trace_gen(&["xsbench.small".into(), path_s.clone(), "--quick".into()]).unwrap();
        trace_stats(std::slice::from_ref(&path_s)).unwrap();
        sim(&[path_s.clone(), "--policy".into(), "srrip".into()]).unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn sim_rejects_bad_policy_and_scale() {
        assert!(sim(&["x.cctr".into(), "--policy".into(), "bogus".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--llc-scale".into(), "3".into()]).is_err());
    }

    #[test]
    fn listings_do_not_fail() {
        list_workloads().unwrap();
        list_policies().unwrap();
    }
}
