//! Subcommand implementations for the `ccsim` binary.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

use ccsim_campaign::journal::sim_result_to_json;
use ccsim_campaign::{Campaign, CampaignSpec, Json, ReportDiff, TraceCache};
use ccsim_core::experiment::report::fmt_f;
use ccsim_core::experiment::{run_matrix, Table};
use ccsim_core::{SimConfig, SimResult};
use ccsim_ingest::{ingest_file, ingest_file_to_trace, IngestOptions, IngestReport, SourceFormat};
use ccsim_policies::PolicyKind;
use ccsim_trace::stats::{ReuseProfile, TraceStats};
use ccsim_trace::{read_trace, write_trace, Trace};
use ccsim_workloads::{paper_workloads, qualcomm_suite, spec_suite, xsbench_suite, SuiteScale};

/// Top-level usage text.
pub const USAGE: &str = "\
ccsim — trace-driven LLC replacement-policy characterization

USAGE:
    ccsim trace-gen <workload> <out.cctr> [--quick]
    ccsim trace-stats <in>
    ccsim ingest <in> <out.cctr> [--format <cctr|champsim|cvp>]
              [--name <name>] [--lossy] [--stats]
    ccsim sim <in.cctr> [--policy <name>]... [--llc-scale <power-of-two>]
              [--threads <n>] [--json]
    ccsim campaign <spec.json> [--threads <n>] [--out <dir>]
              [--cache-dir <dir>] [--no-cache] [--fresh] [--json] [--quiet]
              [--dry-run] [--shared-dir <dir>] [--per-cell]
              [--chunk-records <n>] [--metrics-out <file>]
    ccsim campaign worker <spec.json> --shared-dir <dir>
              [--worker-id <id>] [--ttl-secs <n>] [--threads <n>]
              [--backoff-ms <n>] [--max-cells <n>] [--quiet]
              [--metrics-out <file>]
    ccsim campaign assemble <spec.json> --shared-dir <dir> [--out <dir>]
              [--json] [--quiet]
    ccsim campaign status <spec.json> --shared-dir <dir>
    ccsim campaign watch <spec.json> --shared-dir <dir>
              [--interval-ms <n>] [--max-idle-ms <n>] [--once] [--json]
    ccsim report-diff <a/report.json> <b/report.json> [--threshold <mpki>]
              [--json]
    ccsim bench [--quick] [--json] [--out <file>] [--policy <name>]...
              [--grid [--chunk-records <n>]]
    ccsim trends record [--rev <rev>] [--ledger <file>] [--label <s>]
              [--timestamp <s>] [--from-bench <file>] [--from-diff <file>]
              [--from-manifest <file>]... [--from-watch <file>]
    ccsim trends table [--ledger <file>] [--last <n>]
    ccsim trends check [--ledger <file>] [--window <n>] [--min-history <n>]
              [--max-drop-pct <f>] [--max-rise-pct <f>]
              [--max-overhead-rise-pp <f>] [--max-mpki-delta <f>] [--json]
    ccsim trends gc [--ledger <file>] --keep <n>
    ccsim workloads
    ccsim policies

`ingest` converts an external simulator trace (ChampSim 64-byte
instruction records or a CVP-style load/store stream; auto-detected
unless --format is given) into the native CCTR format, streaming —
multi-GB inputs never materialize in memory. `--stats` additionally
prints the `trace-stats` summary block, computed in the same single
pass (the source is never read twice and the output is never read
back; note the reuse profile itself needs memory proportional to the
record count, unlike the plain conversion). `trace-stats` accepts the
same foreign formats directly.
Campaign specs accept external traces as `trace:<path>` workload
selectors, converted once into the trace cache.

Multi-policy `sim` runs sweep the policies in parallel (`--threads`,
default: available cores, max 8); `--json` emits machine-readable
results instead of the table.

`campaign` runs a declarative spec (see campaigns/*.json): traces are
generated once into a content-addressed cache, every completed cell is
checkpointed to <out>/journal.jsonl so an interrupted campaign resumes
where it stopped (`--fresh` discards the journal), and the report is
written to <out>/report.json and <out>/report.csv. Each workload's
pending cells replay in one lockstep pass over its trace by default
(one decode feeds every cell); `--per-cell` restores one independent
pass per cell — the reports are byte-identical either way. `--dry-run` prints
the resolved grid and each cell's predicted fate (journaled /
cached-trace / needs-trace) without simulating anything; with
`--shared-dir` it reads that distributed directory instead — merged
worker journals count as journaled, and claimed cells report as
leased(<worker>) or stale-lease(<worker>).

Distributed campaigns: N `campaign worker` processes — same host or
many hosts over a shared filesystem — drain one grid cooperatively
through <shared-dir>. Claims are lease files (atomic create, TTL'd,
heartbeat-renewed; a crashed worker's leases expire and its cells are
reclaimed), each worker journals to its own journal.<id>.jsonl
segment, and traces convert once into the shared trace-cache/.
`campaign assemble` merges any worker set's segments into a report
byte-identical to a single-process run (failing loudly on incomplete
grids or conflicting results); `campaign status` shows per-worker
progress, live claims and stale leases. See the Distributed-campaigns
runbook in PAPER.md.

Observability: every campaign run and worker writes a JSONL telemetry
event log plus an atomically-rewritten manifest (run.obs.jsonl /
manifest.json in the output dir, obs.<id>.jsonl / manifest.<id>.json
in the shared dir) with a pinned schema (\"ccsim_obs\": 2; manifest
histograms carry p50/p90/p99/min/max quantile summaries);
`--metrics-out <file>` additionally dumps the process-wide metric
catalog as Prometheus-style text exposition on exit (histograms
include `_quantile` gauges). `campaign watch` renders a live dashboard
— completed / leased / stale cells per worker, records/sec, cell-time
quantiles and ETA from the manifests' completed-cell timings; `--once`
prints one frame and exits, `--json` emits a machine document
(byte-identical across polls of an unchanged directory). By default
the loop long-polls a cheap stat-level fingerprint of the shared dir
with jittered exponential backoff (up to --max-idle-ms, default 2000),
so an idle fleet costs near-zero I/O and activity re-renders within
tens of ms; `--interval-ms <n>` forces the legacy fixed-interval
re-scan. Watch polling is incremental: completed journal segments are
never re-read. See the Observability runbook in PAPER.md.

`trends` maintains an append-only cross-revision performance ledger
(trends.jsonl, one entry per revision): `record` tags --rev/--label
(--rev defaults to `git rev-parse HEAD`, or \"unknown\" outside a
repository) and distills any of `bench --json` output (--from-bench), `report-diff
--json` (--from-diff), obs manifests (--from-manifest, repeatable) and
`watch --once --json` (--from-watch) into one line; `table` renders
tracked series across the last N revisions with sparklines (byte-
deterministic for a fixed ledger); `check` is the regression gate —
the newest entry is judged against the rolling median of the previous
--window entries (throughput drop, latency/overhead creep, absolute
MPKI budget) and the command exits non-zero on any failing series,
with --json emitting the pinned verdict document; `gc` compacts the
ledger to its most recent --keep entries. See the Continuous
benchmarking runbook in PAPER.md.

`report-diff` compares two report.json files over the same grid and
prints per-cell LLC MPKI / miss-ratio / IPC deltas; it exits non-zero
when any |MPKI delta| exceeds --threshold (default 0, i.e. any change).
`--json` emits the same comparison in a pinned machine schema for CI
dashboards (summary fields mirror the exit-code conditions).

`bench` measures *simulator* throughput (trace records replayed per
second) per (pattern x policy) cell, including the eviction-heavy
`llc_thrash` sweep perf gates compare against BENCH_seed.json, times
the LLC tag-array scan in isolation (the `probe_scan` section: hit
and miss probe sweeps over a full cascade-lake LLC), and verifies the
zero-allocations-per-record hot-path contract with the binary's
counting allocator. `--json` emits the pinned machine schema
(tests/fixtures/bench_v1.json); `--out` also writes it to a file.
`bench --grid` instead measures the one-pass grid replay engine:
per-cell streamed replay vs one lockstep pass over the same on-disk
trace and policy x LLC-scale grid, reporting passes, records*cells/sec,
speedup and cross-mode bit-identity per workload (schema
tests/fixtures/bench_v2.json). One-pass chunks are autotuned from the
grid's combined tag-state footprint (CCSIM_HOST_LLC_BYTES overrides
the assumed host LLC budget); `--chunk-records <n>` — here and on
`ccsim campaign` — forces a specific chunk size instead.
";

/// Builds the named workload's trace.
fn build_workload(name: &str, quick: bool) -> Result<Trace, String> {
    let scale = if quick { SuiteScale::Quick } else { SuiteScale::Full };
    ccsim_workloads::build_workload(name, scale)
}

use ccsim_core::experiment::default_threads;

/// Parses an optional `--flag <n>` usize argument.
fn parse_flag_value<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a valid value")),
    }
}

/// Splits `args` into positional arguments, skipping the values consumed
/// by `value_flags` and rejecting any flag in neither list.
fn positionals<'a>(
    args: &'a [String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<Vec<&'a String>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if value_flags.contains(&a.as_str()) {
            it.next();
        } else if a.starts_with("--") {
            if !bool_flags.contains(&a.as_str()) {
                return Err(format!("unknown flag {a:?}\n\n{USAGE}"));
            }
        } else {
            out.push(a);
        }
    }
    Ok(out)
}

/// `ccsim trace-gen <workload> <out> [--quick]`
pub fn trace_gen(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [workload, out] = positional[..] else {
        return Err(format!("expected <workload> <out.cctr>\n\n{USAGE}"));
    };
    let quick = args.iter().any(|a| a == "--quick");
    let trace = build_workload(workload, quick)?;
    let file = File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    write_trace(&trace, BufWriter::new(file)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {}: {} records, {} instructions", out, trace.len(), trace.instructions());
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    read_trace(BufReader::new(file)).map_err(|e| format!("decoding {path}: {e}"))
}

/// Loads a trace of any supported format: native `CCTR` directly,
/// foreign formats (ChampSim/CVP) through the ingest pipeline. Returns
/// the trace plus the ingest report for foreign inputs.
fn load_any_trace(path: &str) -> Result<(Trace, Option<IngestReport>), String> {
    let p = std::path::Path::new(path);
    let format = ccsim_ingest::detect_file(p).map_err(|e| format!("{path}: {e}"))?;
    if format == SourceFormat::Cctr {
        return Ok((load_trace(path)?, None));
    }
    let opts = IngestOptions { format: Some(format), ..Default::default() };
    let (trace, report) =
        ingest_file_to_trace(p, &opts).map_err(|e| format!("ingesting {path}: {e}"))?;
    Ok((trace, Some(report)))
}

/// `ccsim ingest <in> <out.cctr> [--format F] [--name N] [--lossy]
/// [--stats]`
pub fn ingest(args: &[String]) -> Result<(), String> {
    let positional = positionals(args, &["--format", "--name"], &["--lossy", "--stats"])?;
    let [input, output] = positional[..] else {
        return Err(format!("expected <in> <out.cctr>\n\n{USAGE}"));
    };
    let opts = IngestOptions {
        format: parse_flag_value::<SourceFormat>(args, "--format")?,
        name: parse_flag_value::<String>(args, "--name")?,
        lossy: args.iter().any(|a| a == "--lossy"),
    };
    let stats = args.iter().any(|a| a == "--stats");
    if !stats {
        let report = ingest_file(std::path::Path::new(input), std::path::Path::new(output), &opts)
            .map_err(|e| format!("ingesting {input}: {e}"))?;
        println!("wrote {output} [{}]", report.name);
        println!("  {}", report.summary());
        return Ok(());
    }
    // One-pass convert + characterize: the streaming stats builders ride
    // the emit path, so the source is read once and the output is never
    // read back — the summary block below is identical to running
    // `trace-stats` on the converted file.
    let mut stats_b = TraceStats::builder();
    let mut reuse_b = ReuseProfile::builder();
    let (report, trailing) = ccsim_ingest::ingest_file_observed(
        std::path::Path::new(input),
        std::path::Path::new(output),
        &opts,
        |r| {
            stats_b.push(r);
            reuse_b.push_block(r.block());
        },
    )
    .map_err(|e| format!("ingesting {input}: {e}"))?;
    println!("wrote {output} [{}]", report.name);
    println!("  {}", report.summary());
    print_stats_block(&report.name, report.records, &stats_b.finish(trailing), &reuse_b.finish());
    Ok(())
}

/// The characterization block shared by `trace-stats` and
/// `ingest --stats` — identical rendering whether the statistics came
/// from a materialized trace or from the streaming builders.
fn print_stats_block(name: &str, records: u64, s: &TraceStats, p: &ReuseProfile) {
    println!("workload            : {name}");
    println!("memory records      : {records}");
    println!("instructions        : {}", s.instructions);
    println!("loads / stores      : {} / {}", s.loads, s.stores);
    println!("mem per kinstr      : {:.1}", s.mem_per_kilo_instruction());
    println!(
        "footprint           : {} blocks ({:.2} MB)",
        s.footprint_blocks,
        s.footprint_bytes as f64 / (1 << 20) as f64
    );
    println!("distinct PCs        : {}", s.distinct_pcs);
    println!("blocks per PC       : mean {:.1}, max {}", s.mean_blocks_per_pc, s.max_blocks_per_pc);
    println!("cold accesses       : {:.1}%", 100.0 * p.cold() as f64 / p.total().max(1) as f64);
    for (cap, label) in [(512u64, "L1D-sized"), (16_384, "L2-sized"), (22_528, "LLC-sized")] {
        println!(
            "reuse within {:>6} blocks ({label:>9}): {:.1}%",
            cap,
            100.0 * p.hit_fraction_within(cap)
        );
    }
}

/// `ccsim report-diff <a.json> <b.json> [--threshold <mpki>] [--json]`
pub fn report_diff(args: &[String]) -> Result<(), String> {
    let positional = positionals(args, &["--threshold"], &["--json"])?;
    let [a_path, b_path] = positional[..] else {
        return Err(format!("expected <a/report.json> <b/report.json>\n\n{USAGE}"));
    };
    let threshold: f64 = parse_flag_value(args, "--threshold")?.unwrap_or(0.0);
    if !threshold.is_finite() || threshold < 0.0 {
        return Err("--threshold must be a non-negative number".into());
    }
    let read = |p: &String| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let diff = ReportDiff::from_json_strs(&read(a_path)?, &read(b_path)?)?;
    if args.iter().any(|a| a == "--json") {
        // Machine output for CI dashboards; the summary fields mirror the
        // exit-code conditions below, which still apply.
        println!("{}", diff.to_json(threshold).to_pretty().trim_end());
        if !diff.same_grid() {
            return Err("grids differ — same-grid reports required".into());
        }
        let over = diff.cells_over(threshold);
        if over > 0 {
            return Err(format!("{over} cell(s) exceed the LLC-MPKI delta threshold {threshold}"));
        }
        return Ok(());
    }
    println!(
        "comparing {} (a) vs {} (b): {} common cells",
        diff.campaign_a,
        diff.campaign_b,
        diff.cells.len()
    );
    println!("{}", diff.table().render());
    if !diff.same_grid() {
        return Err(format!(
            "grids differ: {} cell(s) only in a, {} only in b — same-grid reports required",
            diff.only_in_a.len(),
            diff.only_in_b.len()
        ));
    }
    let over = diff.cells_over(threshold);
    println!(
        "max |llc_mpki delta| = {:.4} over {} cells (threshold {threshold})",
        diff.max_abs_mpki_delta(),
        diff.cells.len()
    );
    if over > 0 {
        return Err(format!("{over} cell(s) exceed the LLC-MPKI delta threshold {threshold}"));
    }
    Ok(())
}

/// `ccsim bench [--quick] [--json] [--out <file>] [--policy <name>]...
/// [--grid [--chunk-records <n>]]`
pub fn bench(args: &[String]) -> Result<(), String> {
    let positional = positionals(
        args,
        &["--policy", "--out", "--chunk-records"],
        &["--quick", "--json", "--grid"],
    )?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument {extra:?}\n\n{USAGE}"));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let out: Option<PathBuf> = parse_flag_value(args, "--out")?;
    let chunk_records: Option<usize> = parse_flag_value(args, "--chunk-records")?;
    if chunk_records.is_some() && !args.iter().any(|a| a == "--grid") {
        return Err("--chunk-records only applies to bench --grid".into());
    }
    let mut chosen: Vec<PolicyKind> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--policy" {
            let v = it.next().ok_or("--policy needs a value")?;
            chosen.push(v.parse().map_err(|e| format!("{e}"))?);
        }
    }
    if args.iter().any(|a| a == "--grid") {
        let mut options = ccsim_bench::gridbench::GridBenchOptions::new(quick);
        if !chosen.is_empty() {
            options.policies = chosen;
        }
        options.chunk_records = chunk_records.unwrap_or(0);
        let report = ccsim_bench::gridbench::run_grid_bench(&options)?;
        let doc = report.to_json().to_pretty();
        if let Some(path) = &out {
            std::fs::write(path, format!("{}\n", doc.trim_end()))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        if json {
            println!("{}", doc.trim_end());
            return Ok(());
        }
        println!("platform: {} [{}]", report.platform, report.hot_path);
        println!("{}", report.render());
        if let Some(path) = out {
            println!("wrote {}", path.display());
        }
        return Ok(());
    }
    let mut options = ccsim_bench::throughput::ThroughputOptions::new(quick);
    if !chosen.is_empty() {
        options.policies = chosen;
    }
    let report = ccsim_bench::throughput::run_throughput(&options);
    let doc = report.to_json().to_pretty();
    if let Some(path) = &out {
        std::fs::write(path, format!("{}\n", doc.trim_end()))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if json {
        println!("{}", doc.trim_end());
        return Ok(());
    }
    println!("platform: {} [{}]", report.platform, report.hot_path);
    println!(
        "alloc check: {} (steady-state heap allocations per record)",
        match report.alloc_check {
            ccsim_bench::throughput::AllocCheck::Pass => "0 — allocation-free".to_owned(),
            ccsim_bench::throughput::AllocCheck::Fail(n) => format!("{n} — NOT allocation-free"),
            ccsim_bench::throughput::AllocCheck::Unavailable =>
                "unavailable (no counting allocator)".to_owned(),
        }
    );
    println!(
        "probe scan ({} sets x {} ways, full LLC): hit {} Mprobe/s, miss {} Mprobe/s",
        report.probe_scan.sets,
        report.probe_scan.ways,
        fmt_f(report.probe_scan.hit_rps / 1e6, 1),
        fmt_f(report.probe_scan.miss_rps / 1e6, 1),
    );
    let mut table = Table::new(vec![
        "pattern".into(),
        "policy".into(),
        "records".into(),
        "best_Mrec/s".into(),
        "median_Mrec/s".into(),
        "ns/record".into(),
    ]);
    for c in &report.cells {
        table.row(vec![
            c.pattern.to_owned(),
            c.policy.name().to_owned(),
            c.records.to_string(),
            fmt_f(c.best_rps / 1e6, 3),
            fmt_f(c.median_rps / 1e6, 3),
            fmt_f(c.best_ns_per_record(), 1),
        ]);
    }
    println!("{}", table.render());
    if let Some(path) = out {
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// `ccsim trace-stats <in>`
pub fn trace_stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(format!("expected <in>\n\n{USAGE}"));
    };
    let (trace, ingested) = load_any_trace(path)?;
    if let Some(report) = &ingested {
        println!("ingested            : {}", report.summary());
    }
    let s = TraceStats::compute(&trace);
    let p = ReuseProfile::compute(&trace);
    print_stats_block(trace.name(), trace.len() as u64, &s, &p);
    Ok(())
}

/// `ccsim sim <in> [--policy P]... [--llc-scale N] [--threads N] [--json]`
pub fn sim(args: &[String]) -> Result<(), String> {
    let positional = positionals(args, &["--policy", "--llc-scale", "--threads"], &["--json"])?;
    let path = positional.first().ok_or_else(|| format!("expected <in.cctr>\n\n{USAGE}"))?;
    let mut policies: Vec<PolicyKind> = Vec::new();
    let mut llc_scale = 1u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policies.push(v.parse().map_err(|e| format!("{e}"))?);
            }
            "--llc-scale" => {
                let v = it.next().ok_or("--llc-scale needs a value")?;
                llc_scale = v.parse().map_err(|_| format!("bad llc scale {v:?}"))?;
                if !llc_scale.is_power_of_two() {
                    return Err("llc scale must be a power of two".into());
                }
            }
            _ => {}
        }
    }
    if policies.is_empty() {
        policies.push(PolicyKind::Lru);
    }
    let threads = parse_flag_value(args, "--threads")?.unwrap_or_else(default_threads);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let json = args.iter().any(|a| a == "--json");
    let trace = load_trace(path)?;
    let config = SimConfig::cascade_lake().with_llc_scale(llc_scale);
    // Multi-policy runs go through the parallel work-stealing executor;
    // results come back in policy order either way.
    let results: Vec<SimResult> =
        run_matrix(std::slice::from_ref(&trace), &policies, &config, threads)
            .into_iter()
            .map(|e| e.result)
            .collect();
    if json {
        let cells = results
            .iter()
            .map(|r| {
                let Json::Obj(mut pairs) = sim_result_to_json(r) else { unreachable!() };
                pairs.push(("ipc".into(), Json::num(r.ipc())));
                pairs.push(("llc_mpki".into(), Json::num(r.mpki_llc())));
                Json::Obj(pairs)
            })
            .collect();
        let doc = Json::obj(vec![
            ("workload", Json::str(trace.name())),
            ("platform", Json::str(config.to_string())),
            ("llc_scale", Json::int(llc_scale as u64)),
            ("results", Json::Arr(cells)),
        ]);
        println!("{}", doc.to_pretty().trim_end());
        return Ok(());
    }
    println!("platform: {config}");
    let mut table = Table::new(vec![
        "policy".into(),
        "ipc".into(),
        "l1d_mpki".into(),
        "l2_mpki".into(),
        "llc_mpki".into(),
        "llc_hit_%".into(),
        "dram_reach_%".into(),
    ]);
    for r in &results {
        table.row(vec![
            r.policy.clone(),
            fmt_f(r.ipc(), 3),
            fmt_f(r.mpki_l1d(), 1),
            fmt_f(r.mpki_l2(), 1),
            fmt_f(r.mpki_llc(), 1),
            fmt_f(100.0 * r.llc.hit_rate(), 1),
            fmt_f(100.0 * r.dram_reach_fraction(), 1),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// `ccsim campaign <spec.json> [--threads N] [--out DIR] [--cache-dir DIR]
/// [--no-cache] [--fresh] [--json] [--quiet] [--dry-run]
/// [--shared-dir DIR] [--per-cell] [--chunk-records N]` — plus the distributed subcommands
/// `campaign worker`, `campaign assemble` and `campaign status`.
pub fn campaign(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("worker") => return campaign_worker(&args[1..]),
        Some("assemble") => return campaign_assemble(&args[1..]),
        Some("status") => return campaign_status(&args[1..]),
        Some("watch") => return campaign_watch(&args[1..]),
        _ => {}
    }
    let positional = positionals(
        args,
        &["--threads", "--out", "--cache-dir", "--shared-dir", "--metrics-out", "--chunk-records"],
        &["--no-cache", "--fresh", "--json", "--quiet", "--dry-run", "--per-cell"],
    )?;
    let [spec_path] = positional[..] else {
        return Err(format!("expected <spec.json>\n\n{USAGE}"));
    };
    let spec = CampaignSpec::from_file(std::path::Path::new(spec_path))?;
    let threads = parse_flag_value(args, "--threads")?.unwrap_or_else(default_threads);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let out_dir: PathBuf = parse_flag_value::<PathBuf>(args, "--out")?
        .unwrap_or_else(|| PathBuf::from("campaign-out").join(&spec.name));
    let cache_dir: PathBuf = parse_flag_value::<PathBuf>(args, "--cache-dir")?
        .unwrap_or_else(|| PathBuf::from("campaign-out").join("trace-cache"));
    let shared_dir: Option<PathBuf> = parse_flag_value(args, "--shared-dir")?;
    let json = args.iter().any(|a| a == "--json");
    let quiet = args.iter().any(|a| a == "--quiet");
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let journal_path = out_dir.join("journal.jsonl");
    if shared_dir.is_some() && !dry_run {
        return Err("--shared-dir only applies to --dry-run here; to execute against a shared \
                    directory use `ccsim campaign worker`"
            .into());
    }

    if dry_run {
        // Inspect only: no output dir, no journal, no cache mutation
        // beyond creating the (possibly shared) cache directory. With
        // --fresh the real run would discard the journal first, so the
        // plan must not count its cells as journaled either.
        let name = spec.name.clone();
        let digest = spec.digest();
        let mut campaign = Campaign::new(spec);
        if let Some(shared) = &shared_dir {
            // Distributed view: completion comes from merging every
            // worker's journal segment; claims overlay as leased /
            // stale-lease. Strictly read-only — nothing under the shared
            // dir is created or touched.
            let merged = ccsim_campaign::journal::merge_dir(shared, &name, &digest)?;
            campaign = campaign.mark_completed(merged.completed.into_keys());
            let leases_root = ccsim_dist::leases_dir(shared);
            if leases_root.is_dir() {
                let leases = ccsim_dist::LeaseDir::open(leases_root)
                    .map_err(|e| format!("opening lease dir: {e}"))?;
                // Workers claim workload bands; the per-cell plan wants
                // per-cell fates, so expand each band lease over the
                // cells it covers.
                let grid = campaign.grid()?;
                campaign = campaign.leases(ccsim_dist::cell_lease_views(&grid, &leases.views()));
            }
            let shared_cache = ccsim_dist::trace_cache_dir(shared);
            if shared_cache.is_dir() && !args.iter().any(|a| a == "--no-cache") {
                let cache = TraceCache::new(&shared_cache)
                    .map_err(|e| format!("opening trace cache {}: {e}", shared_cache.display()))?;
                campaign = campaign.cache(cache);
            }
        } else {
            if !args.iter().any(|a| a == "--fresh") {
                campaign = campaign.journal(&journal_path);
            }
            if !args.iter().any(|a| a == "--no-cache") {
                let cache = TraceCache::new(&cache_dir)
                    .map_err(|e| format!("opening trace cache {}: {e}", cache_dir.display()))?;
                campaign = campaign.cache(cache);
            }
        }
        let plan = campaign.plan()?;
        if !quiet {
            println!("{}", plan.table().render());
        }
        let (journaled, cached, needs, missing, leased, stale) = plan.counts();
        let lease_part = if shared_dir.is_some() {
            format!(", {leased} leased, {stale} stale-leased")
        } else {
            String::new()
        };
        println!(
            "campaign {name} (dry run): {} cells — {journaled} journaled, \
             {cached} trace-cache hits, {needs} to generate/ingest, {missing} missing \
             sources{lease_part}",
            plan.cells.len()
        );
        if missing > 0 {
            return Err(format!("{missing} cell(s) reference missing trace: source files"));
        }
        return Ok(());
    }

    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    if args.iter().any(|a| a == "--fresh") && journal_path.exists() {
        std::fs::remove_file(&journal_path)
            .map_err(|e| format!("removing {}: {e}", journal_path.display()))?;
    }

    let mut campaign = Campaign::new(spec)
        .threads(threads)
        .journal(&journal_path)
        .verbose(!quiet)
        .obs_dir(&out_dir)
        .per_cell(args.iter().any(|a| a == "--per-cell"))
        .chunk_records(parse_flag_value(args, "--chunk-records")?.unwrap_or(0));
    if !args.iter().any(|a| a == "--no-cache") {
        let cache = TraceCache::new(&cache_dir)
            .map_err(|e| format!("opening trace cache {}: {e}", cache_dir.display()))?;
        campaign = campaign.cache(cache);
    }
    let name = campaign.spec().name.clone();
    let outcome = campaign.run()?;
    write_metrics_out(args)?;

    let report_json = out_dir.join("report.json");
    let report_csv = out_dir.join("report.csv");
    std::fs::write(&report_json, outcome.report.to_json_string())
        .map_err(|e| format!("writing {}: {e}", report_json.display()))?;
    std::fs::write(&report_csv, outcome.report.to_csv())
        .map_err(|e| format!("writing {}: {e}", report_csv.display()))?;

    if json {
        println!("{}", outcome.report.to_json_string().trim_end());
        return Ok(());
    }
    if !quiet && outcome.report.cells.len() <= 64 {
        println!("{}", outcome.report.cells_table().render());
    }
    println!(
        "campaign {name}: {} cells ({} resumed from journal), trace cache {} hit(s) / {} miss(es)",
        outcome.cells_total, outcome.cells_resumed, outcome.cache_hits, outcome.cache_misses
    );
    println!("report: {} and {}", report_json.display(), report_csv.display());
    Ok(())
}

/// Honors `--metrics-out <file>`: dumps the process-wide metric catalog
/// as Prometheus-style text exposition. Run *after* the instrumented
/// work so the dump reflects it.
fn write_metrics_out(args: &[String]) -> Result<(), String> {
    if let Some(path) = parse_flag_value::<PathBuf>(args, "--metrics-out")? {
        ccsim_obs::write_exposition(&path)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Shared front end of the distributed subcommands: the spec positional
/// plus the mandatory `--shared-dir`.
fn dist_spec_and_shared_dir(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
    subcommand: &str,
) -> Result<(CampaignSpec, PathBuf), String> {
    let positional = positionals(args, value_flags, bool_flags)?;
    let [spec_path] = positional[..] else {
        return Err(format!("expected <spec.json>\n\n{USAGE}"));
    };
    let spec = CampaignSpec::from_file(std::path::Path::new(spec_path))?;
    let shared: PathBuf = parse_flag_value(args, "--shared-dir")?
        .ok_or_else(|| format!("campaign {subcommand} needs --shared-dir <dir>\n\n{USAGE}"))?;
    Ok((spec, shared))
}

/// `ccsim campaign worker <spec.json> --shared-dir <dir> [--worker-id ID]
/// [--ttl-secs N] [--threads N] [--backoff-ms N] [--max-cells N]
/// [--quiet]`
fn campaign_worker(args: &[String]) -> Result<(), String> {
    let (spec, shared) = dist_spec_and_shared_dir(
        args,
        &[
            "--shared-dir",
            "--worker-id",
            "--ttl-secs",
            "--threads",
            "--backoff-ms",
            "--max-cells",
            "--metrics-out",
        ],
        &["--quiet"],
        "worker",
    )?;
    let mut opts = ccsim_dist::WorkerOptions::new(
        parse_flag_value::<String>(args, "--worker-id")?
            .unwrap_or_else(ccsim_dist::default_worker_id),
    );
    if let Some(ttl) = parse_flag_value::<u64>(args, "--ttl-secs")? {
        if ttl == 0 {
            return Err("--ttl-secs must be at least 1".into());
        }
        opts.ttl = std::time::Duration::from_secs(ttl);
    }
    opts.threads = parse_flag_value(args, "--threads")?.unwrap_or_else(default_threads);
    if opts.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if let Some(ms) = parse_flag_value::<u64>(args, "--backoff-ms")? {
        opts.backoff = std::time::Duration::from_millis(ms.max(1));
    }
    opts.max_cells = parse_flag_value(args, "--max-cells")?;
    opts.verbose = !args.iter().any(|a| a == "--quiet");
    let worker_id = ccsim_dist::sanitize_worker_id(&opts.worker_id);
    let outcome = ccsim_dist::run_worker(&spec, &shared, &opts)?;
    write_metrics_out(args)?;
    println!(
        "worker {worker_id}: {} cell(s) completed ({} reclaimed from stale leases), \
         {} backoff(s), campaign {}",
        outcome.completed,
        outcome.reclaimed,
        outcome.backoffs,
        if outcome.campaign_done { "complete" } else { "still pending (cell limit reached)" }
    );
    Ok(())
}

/// `ccsim campaign assemble <spec.json> --shared-dir <dir> [--out DIR]
/// [--json] [--quiet]`
fn campaign_assemble(args: &[String]) -> Result<(), String> {
    let (spec, shared) = dist_spec_and_shared_dir(
        args,
        &["--shared-dir", "--out"],
        &["--json", "--quiet"],
        "assemble",
    )?;
    let name = spec.name.clone();
    let outcome = ccsim_dist::assemble(&spec, &shared)?;
    let out_dir: PathBuf = parse_flag_value::<PathBuf>(args, "--out")?
        .unwrap_or_else(|| PathBuf::from("campaign-out").join(&name));
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let report_json = out_dir.join("report.json");
    let report_csv = out_dir.join("report.csv");
    std::fs::write(&report_json, outcome.report.to_json_string())
        .map_err(|e| format!("writing {}: {e}", report_json.display()))?;
    std::fs::write(&report_csv, outcome.report.to_csv())
        .map_err(|e| format!("writing {}: {e}", report_csv.display()))?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", outcome.report.to_json_string().trim_end());
        return Ok(());
    }
    let quiet = args.iter().any(|a| a == "--quiet");
    if !quiet && outcome.report.cells.len() <= 64 {
        println!("{}", outcome.report.cells_table().render());
    }
    println!(
        "assembled campaign {name}: {} cells from {} segment(s), {} journal entries, \
         {} duplicate(s)",
        outcome.report.cells.len(),
        outcome.segments.len(),
        outcome.entries,
        outcome.duplicates
    );
    println!("report: {} and {}", report_json.display(), report_csv.display());
    Ok(())
}

/// `ccsim campaign status <spec.json> --shared-dir <dir>`
fn campaign_status(args: &[String]) -> Result<(), String> {
    let (spec, shared) = dist_spec_and_shared_dir(args, &["--shared-dir"], &[], "status")?;
    let status = ccsim_dist::status(&spec, &shared)?;
    println!("{}", status.render());
    Ok(())
}

/// `ccsim campaign watch <spec.json> --shared-dir <dir>
/// [--interval-ms N] [--max-idle-ms N] [--once] [--json]`
///
/// Two pacing modes: by default the loop long-polls a stat-level
/// fingerprint of the shared directory ([`ccsim_dist::dir_fingerprint`])
/// and only re-collects a view when it moves, sleeping with jittered
/// exponential backoff up to `--max-idle-ms` in between — an idle fleet
/// costs a couple of `readdir`s per backoff cap instead of a full
/// journal merge per tick. `--interval-ms` opts into the legacy
/// fixed-interval re-scan (useful when mtime granularity on an exotic
/// filesystem makes fingerprints unreliable).
fn campaign_watch(args: &[String]) -> Result<(), String> {
    let (spec, shared) = dist_spec_and_shared_dir(
        args,
        &["--shared-dir", "--interval-ms", "--max-idle-ms"],
        &["--once", "--json"],
        "watch",
    )?;
    let interval_ms = parse_flag_value::<u64>(args, "--interval-ms")?;
    let max_idle_ms = parse_flag_value::<u64>(args, "--max-idle-ms")?.unwrap_or(2000);
    let once = args.iter().any(|a| a == "--once");
    let json = args.iter().any(|a| a == "--json");
    // One watcher for the whole loop: its merge cursor makes each poll
    // read only journal bytes appended since the previous poll.
    let mut watcher = ccsim_dist::Watcher::new();
    let show = |view: &ccsim_dist::WatchView| {
        if json {
            print!("{}", view.to_json());
        } else {
            println!("{}", view.render());
        }
    };
    if let Some(ms) = interval_ms {
        let interval = std::time::Duration::from_millis(ms.max(50));
        loop {
            let view = watcher.poll(&spec, &shared)?;
            show(&view);
            if once {
                return Ok(());
            }
            if view.done() {
                println!("campaign complete");
                return Ok(());
            }
            std::thread::sleep(interval);
        }
    }
    let mut pacing = ccsim_dist::WatchPacing::new(max_idle_ms, u64::from(std::process::id()));
    let mut last_fingerprint: Option<u64> = None;
    loop {
        let fingerprint = ccsim_dist::dir_fingerprint(&shared);
        if last_fingerprint != Some(fingerprint) {
            last_fingerprint = Some(fingerprint);
            let view = watcher.poll(&spec, &shared)?;
            show(&view);
            if once {
                return Ok(());
            }
            if view.done() {
                println!("campaign complete");
                return Ok(());
            }
            pacing.activity();
        }
        std::thread::sleep(pacing.idle_delay());
    }
}

/// `ccsim trends <record|table|check|gc> ...` — the cross-revision
/// performance ledger.
pub fn trends(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("record") => trends_record(&args[1..]),
        Some("table") => trends_table(&args[1..]),
        Some("check") => trends_check(&args[1..]),
        Some("gc") => trends_gc(&args[1..]),
        _ => Err(format!("expected trends record|table|check|gc\n\n{USAGE}")),
    }
}

/// The ledger path from `--ledger` (default `trends.jsonl`).
fn trends_ledger_path(args: &[String]) -> Result<PathBuf, String> {
    Ok(parse_flag_value::<PathBuf>(args, "--ledger")?
        .unwrap_or_else(|| PathBuf::from(ccsim_trends::LEDGER_FILE)))
}

/// Reads and parses one JSON source document for `trends record`.
fn trends_source_doc(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Resolves the revision `trends record` tags its entry with when
/// `--rev` is omitted: `git rev-parse HEAD` in the current directory,
/// falling back to `"unknown"` outside a git repository (or when git
/// itself is unavailable) so recording never fails on the tag.
fn default_trends_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_owned())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// `ccsim trends record [--rev <rev>] [--ledger <file>] [--label <s>]
/// [--timestamp <s>] [--from-bench <f>] [--from-diff <f>]
/// [--from-manifest <f>]... [--from-watch <f>]`
fn trends_record(args: &[String]) -> Result<(), String> {
    let positional = positionals(
        args,
        &[
            "--ledger",
            "--rev",
            "--label",
            "--timestamp",
            "--from-bench",
            "--from-diff",
            "--from-manifest",
            "--from-watch",
        ],
        &[],
    )?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument {extra:?}\n\n{USAGE}"));
    }
    let ledger = trends_ledger_path(args)?;
    let rev = parse_flag_value::<String>(args, "--rev")?.unwrap_or_else(default_trends_rev);
    let label = parse_flag_value::<String>(args, "--label")?.unwrap_or_default();
    let timestamp = match parse_flag_value::<String>(args, "--timestamp")? {
        Some(t) => t,
        None => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or_else(|_| "0".to_owned(), |d| d.as_secs().to_string()),
    };
    let mut entry = ccsim_trends::TrendEntry::new(&rev, &label, &timestamp);
    if let Some(path) = parse_flag_value::<String>(args, "--from-bench")? {
        entry.bench = Some(
            ccsim_trends::BenchSummary::from_doc(&trends_source_doc(&path)?)
                .map_err(|e| format!("{path}: {e}"))?,
        );
    }
    if let Some(path) = parse_flag_value::<String>(args, "--from-diff")? {
        entry.diff = Some(
            ccsim_trends::DiffSummary::from_doc(&trends_source_doc(&path)?)
                .map_err(|e| format!("{path}: {e}"))?,
        );
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--from-manifest" {
            let path = it.next().ok_or("--from-manifest needs a value")?;
            entry.manifests.push(
                ccsim_trends::ManifestSummary::from_doc(&trends_source_doc(path)?)
                    .map_err(|e| format!("{path}: {e}"))?,
            );
        }
    }
    if let Some(path) = parse_flag_value::<String>(args, "--from-watch")? {
        entry.watch = Some(
            ccsim_trends::WatchSummary::from_doc(&trends_source_doc(&path)?)
                .map_err(|e| format!("{path}: {e}"))?,
        );
    }
    ccsim_trends::Ledger::append(&ledger, &entry)?;
    println!(
        "recorded {} to {}: bench={}, diff={}, manifests={}, watch={}",
        entry.rev,
        ledger.display(),
        if entry.bench.is_some() { "yes" } else { "no" },
        if entry.diff.is_some() { "yes" } else { "no" },
        entry.manifests.len(),
        if entry.watch.is_some() { "yes" } else { "no" },
    );
    Ok(())
}

/// `ccsim trends table [--ledger <file>] [--last <n>]`
fn trends_table(args: &[String]) -> Result<(), String> {
    let positional = positionals(args, &["--ledger", "--last"], &[])?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument {extra:?}\n\n{USAGE}"));
    }
    let last = parse_flag_value::<usize>(args, "--last")?.unwrap_or(10).max(1);
    let ledger = ccsim_trends::Ledger::load(&trends_ledger_path(args)?)?;
    if ledger.torn_tail() {
        eprintln!("warning: ledger ended in a torn line (crashed writer?); it was skipped");
    }
    print!("{}", ccsim_trends::render_table(ledger.last_n(last)));
    Ok(())
}

/// `ccsim trends check [--ledger <file>] [--window <n>]
/// [--min-history <n>] [--max-drop-pct <f>] [--max-rise-pct <f>]
/// [--max-overhead-rise-pp <f>] [--max-mpki-delta <f>] [--json]` —
/// exits non-zero when any tracked series regresses.
fn trends_check(args: &[String]) -> Result<(), String> {
    let positional = positionals(
        args,
        &[
            "--ledger",
            "--window",
            "--min-history",
            "--max-drop-pct",
            "--max-rise-pct",
            "--max-overhead-rise-pp",
            "--max-mpki-delta",
        ],
        &["--json"],
    )?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument {extra:?}\n\n{USAGE}"));
    }
    let mut options = ccsim_trends::CheckOptions::default();
    if let Some(v) = parse_flag_value(args, "--window")? {
        options.window = v;
    }
    if let Some(v) = parse_flag_value(args, "--min-history")? {
        options.min_history = v;
    }
    if let Some(v) = parse_flag_value(args, "--max-drop-pct")? {
        options.max_drop_pct = v;
    }
    if let Some(v) = parse_flag_value(args, "--max-rise-pct")? {
        options.max_rise_pct = v;
    }
    if let Some(v) = parse_flag_value(args, "--max-overhead-rise-pp")? {
        options.max_overhead_rise_pp = v;
    }
    if let Some(v) = parse_flag_value(args, "--max-mpki-delta")? {
        options.max_mpki_delta = v;
    }
    if options.window == 0 || options.min_history == 0 {
        return Err("--window and --min-history must be at least 1".into());
    }
    let ledger = ccsim_trends::Ledger::load(&trends_ledger_path(args)?)?;
    let verdict = ccsim_trends::run_check(&ledger.entries, &options)?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", verdict.to_json().to_pretty().trim_end());
    } else {
        println!("trends check @ {} (window {}):", verdict.rev, options.window);
        for s in &verdict.series {
            let fmt = |v: Option<f64>| v.map_or("-".to_owned(), |v| format!("{v:.3}"));
            println!(
                "  {:<28} {:<20} value {} median {} bound {}",
                s.name,
                s.status,
                fmt(s.value),
                fmt(s.median),
                fmt(s.bound),
            );
        }
    }
    if verdict.pass() {
        Ok(())
    } else {
        let failing: Vec<&str> =
            verdict.series.iter().filter(|s| s.status == "fail").map(|s| s.name.as_str()).collect();
        Err(format!("trends check failed: {} regressed", failing.join(", ")))
    }
}

/// `ccsim trends gc [--ledger <file>] --keep <n>`
fn trends_gc(args: &[String]) -> Result<(), String> {
    let positional = positionals(args, &["--ledger", "--keep"], &[])?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument {extra:?}\n\n{USAGE}"));
    }
    let keep: usize = parse_flag_value(args, "--keep")?
        .ok_or_else(|| format!("trends gc needs --keep <n>\n\n{USAGE}"))?;
    if keep == 0 {
        return Err("--keep must be at least 1 (use `rm` to discard a ledger)".into());
    }
    let ledger = trends_ledger_path(args)?;
    let dropped = ccsim_trends::Ledger::gc(&ledger, keep)?;
    println!(
        "gc {}: dropped {dropped} entr{}",
        ledger.display(),
        if dropped == 1 { "y" } else { "ies" }
    );
    Ok(())
}

/// `ccsim workloads`
pub fn list_workloads() -> Result<(), String> {
    println!("GAP (kernel.graph):");
    for w in paper_workloads() {
        println!("  {w}");
    }
    println!("SPEC-like:");
    for t in spec_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    println!("XSBench-like:");
    for t in xsbench_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    println!("Qualcomm-like:");
    for t in qualcomm_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    Ok(())
}

/// `ccsim policies`
pub fn list_policies() -> Result<(), String> {
    for k in PolicyKind::ALL {
        println!("{}", k.name());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_workload_accepts_gap_and_suite_names() {
        assert!(build_workload("bfs.kron", true).is_ok());
        assert!(build_workload("spec.stream", true).is_ok());
        assert!(build_workload("xsbench.small", true).is_ok());
        assert!(build_workload("qcom.srv0", true).is_ok());
        assert!(build_workload("nope.nothing", true).is_err());
        assert!(build_workload("spec.nothing", true).is_err());
    }

    #[test]
    fn trace_gen_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("ccsim_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.cctr");
        let path_s = path.to_str().unwrap().to_owned();
        trace_gen(&["xsbench.small".into(), path_s.clone(), "--quick".into()]).unwrap();
        trace_stats(std::slice::from_ref(&path_s)).unwrap();
        sim(&[path_s.clone(), "--policy".into(), "srrip".into()]).unwrap();
        // Multi-policy parallel sweep and machine-readable output; flags
        // may precede the trace path (flag values are not positionals).
        sim(&[
            "--policy".into(),
            "lru".into(),
            "--policy".into(),
            "srrip".into(),
            "--threads".into(),
            "2".into(),
            "--json".into(),
            path_s.clone(),
        ])
        .unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn sim_rejects_bad_policy_and_scale() {
        assert!(sim(&["x.cctr".into(), "--policy".into(), "bogus".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--llc-scale".into(), "3".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--threads".into(), "zero".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--threads".into(), "0".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--frobnicate".into()]).is_err());
    }

    #[test]
    fn campaign_command_runs_spec_end_to_end() {
        let dir = std::env::temp_dir().join(format!("ccsim_cli_campaign_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        std::fs::write(
            &spec_path,
            r#"{"name": "cli_smoke", "base_config": "tiny",
                "workloads": ["xsbench.small"], "policies": ["lru", "srrip"]}"#,
        )
        .unwrap();
        let args: Vec<String> = vec![
            spec_path.to_str().unwrap().into(),
            "--threads".into(),
            "2".into(),
            "--out".into(),
            dir.join("out").to_str().unwrap().into(),
            "--cache-dir".into(),
            dir.join("cache").to_str().unwrap().into(),
            "--quiet".into(),
        ];
        campaign(&args).unwrap();
        assert!(dir.join("out/report.json").exists());
        assert!(dir.join("out/report.csv").exists());
        assert!(dir.join("out/journal.jsonl").exists());
        // Second invocation: everything resumes, nothing regenerates.
        campaign(&args).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_rejects_missing_spec() {
        assert!(campaign(&["/nonexistent/spec.json".into()]).is_err());
        assert!(campaign(&[]).is_err());
    }

    #[test]
    fn campaign_worker_assemble_status_drain_a_shared_dir() {
        let dir = std::env::temp_dir().join(format!("ccsim_cli_dist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        std::fs::write(
            &spec_path,
            r#"{"name": "cli_dist", "base_config": "tiny",
                "workloads": ["xsbench.small"], "policies": ["lru", "srrip"]}"#,
        )
        .unwrap();
        let spec_s: String = spec_path.to_str().unwrap().into();
        let shared: String = dir.join("shared").to_str().unwrap().into();

        // The distributed subcommands demand a shared dir.
        assert!(campaign(&["worker".into(), spec_s.clone()]).is_err());
        assert!(campaign(&["assemble".into(), spec_s.clone()]).is_err());
        assert!(campaign(&["status".into(), spec_s.clone()]).is_err());
        // --shared-dir on a *run* is rejected (that's what worker is for).
        assert!(campaign(&[spec_s.clone(), "--shared-dir".into(), shared.clone()]).is_err());
        // Assembling before any worker ran names the missing cells.
        let err =
            campaign(&["assemble".into(), spec_s.clone(), "--shared-dir".into(), shared.clone()])
                .unwrap_err();
        assert!(err.contains("2 of 2 cells"), "{err}");

        // Status and lease-aware dry-run work on the empty dir too.
        campaign(&["status".into(), spec_s.clone(), "--shared-dir".into(), shared.clone()])
            .unwrap();
        campaign(&[
            spec_s.clone(),
            "--dry-run".into(),
            "--shared-dir".into(),
            shared.clone(),
            "--quiet".into(),
        ])
        .unwrap();

        // One worker drains the whole grid; assemble matches a
        // single-process run byte for byte.
        campaign(&[
            "worker".into(),
            spec_s.clone(),
            "--shared-dir".into(),
            shared.clone(),
            "--worker-id".into(),
            "cli-w1".into(),
            "--threads".into(),
            "2".into(),
            "--quiet".into(),
        ])
        .unwrap();
        campaign(&[
            "assemble".into(),
            spec_s.clone(),
            "--shared-dir".into(),
            shared.clone(),
            "--out".into(),
            dir.join("assembled").to_str().unwrap().into(),
            "--quiet".into(),
        ])
        .unwrap();
        campaign(&[
            spec_s.clone(),
            "--out".into(),
            dir.join("solo").to_str().unwrap().into(),
            "--cache-dir".into(),
            dir.join("cache").to_str().unwrap().into(),
            "--quiet".into(),
        ])
        .unwrap();
        let assembled = std::fs::read(dir.join("assembled/report.json")).unwrap();
        let solo = std::fs::read(dir.join("solo/report.json")).unwrap();
        assert_eq!(assembled, solo, "assemble must be byte-identical to a solo run");
        campaign(&["status".into(), spec_s, "--shared-dir".into(), shared]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn write_champsim(path: &std::path::Path, loads: u64) {
        use ccsim_ingest::champsim::{ChampSimRecord, ChampSimWriter};
        let mut w = ChampSimWriter::new(File::create(path).unwrap());
        for i in 0..loads {
            w.write(&ChampSimRecord::nonmem(0x400 + 8 * i)).unwrap();
            w.write(&ChampSimRecord::load(0x404 + 8 * i, 0x10000 + 64 * (i % 16))).unwrap();
        }
    }

    #[test]
    fn ingest_command_converts_and_stats_reads_foreign_directly() {
        let dir = std::env::temp_dir().join(format!("ccsim_cli_ingest_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("mini.champsim");
        write_champsim(&input, 50);
        let out = dir.join("mini.cctr");
        let in_s: String = input.to_str().unwrap().into();
        let out_s: String = out.to_str().unwrap().into();

        ingest(&[in_s.clone(), out_s.clone()]).unwrap();
        let trace = load_trace(&out_s).unwrap();
        assert_eq!(trace.name(), "mini");
        assert_eq!(trace.len(), 50);
        assert_eq!(trace.instructions(), 100);

        // trace-stats accepts the foreign file and the converted one.
        trace_stats(std::slice::from_ref(&in_s)).unwrap();
        trace_stats(std::slice::from_ref(&out_s)).unwrap();
        // And the converted trace simulates.
        sim(&[out_s.clone(), "--policy".into(), "lru".into()]).unwrap();

        // --stats characterizes in the same pass; the converted file and
        // the report are unchanged.
        let out3 = dir.join("stats.cctr");
        ingest(&[in_s.clone(), out3.to_str().unwrap().into(), "--stats".into()]).unwrap();
        assert_eq!(
            std::fs::read(&out3).unwrap(),
            std::fs::read(&out).unwrap(),
            "--stats must not change the emitted bytes"
        );

        // Explicit name + format flags are honored.
        let out2 = dir.join("renamed.cctr");
        ingest(&[
            in_s.clone(),
            out2.to_str().unwrap().into(),
            "--format".into(),
            "champsim".into(),
            "--name".into(),
            "bespoke".into(),
        ])
        .unwrap();
        assert_eq!(load_trace(out2.to_str().unwrap()).unwrap().name(), "bespoke");

        assert!(ingest(std::slice::from_ref(&in_s)).is_err(), "missing output path");
        assert!(ingest(&[in_s, out_s, "--format".into(), "elf".into()]).is_err(), "unknown format");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_dry_run_predicts_without_running() {
        let dir = std::env::temp_dir().join(format!("ccsim_cli_dry_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        std::fs::write(
            &spec_path,
            r#"{"name": "dry", "base_config": "tiny",
                "workloads": ["xsbench.small"], "policies": ["lru", "srrip"]}"#,
        )
        .unwrap();
        let base: Vec<String> = vec![
            spec_path.to_str().unwrap().into(),
            "--out".into(),
            dir.join("out").to_str().unwrap().into(),
            "--cache-dir".into(),
            dir.join("cache").to_str().unwrap().into(),
            "--quiet".into(),
        ];
        let mut dry = base.clone();
        dry.push("--dry-run".into());
        campaign(&dry).unwrap();
        assert!(!dir.join("out").exists(), "dry run must not create outputs");
        campaign(&base).unwrap();
        campaign(&dry).unwrap(); // everything journaled now
                                 // --dry-run --fresh models the journal discard without doing it.
        let mut dry_fresh = dry.clone();
        dry_fresh.push("--fresh".into());
        campaign(&dry_fresh).unwrap();
        assert!(
            dir.join("out/journal.jsonl").exists(),
            "--dry-run --fresh must not delete the journal"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_diff_flags_regressions_above_threshold() {
        let dir = std::env::temp_dir().join(format!("ccsim_cli_diff_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        std::fs::write(
            &spec_path,
            r#"{"name": "d", "base_config": "tiny",
                "workloads": ["xsbench.small"], "policies": ["lru"]}"#,
        )
        .unwrap();
        for out in ["a", "b"] {
            campaign(&[
                spec_path.to_str().unwrap().into(),
                "--out".into(),
                dir.join(out).to_str().unwrap().into(),
                "--no-cache".into(),
                "--quiet".into(),
            ])
            .unwrap();
        }
        let a: String = dir.join("a/report.json").to_str().unwrap().into();
        let b: String = dir.join("b/report.json").to_str().unwrap().into();
        // Identical runs diff clean at threshold 0, in both renderings.
        report_diff(&[a.clone(), b.clone()]).unwrap();
        report_diff(&[a.clone(), b.clone(), "--json".into()]).unwrap();

        // Perturb b's llc mpki: the default threshold trips, a loose one
        // does not.
        let text = std::fs::read_to_string(&b).unwrap();
        let needle = "\"llc\": ";
        let pos = text.find("\"mpki\"").unwrap();
        let llc = pos + text[pos..].find(needle).unwrap() + needle.len();
        let end = llc + text[llc..].find([',', '}']).unwrap();
        let bumped: f64 = text[llc..end].trim().parse::<f64>().unwrap() + 3.0;
        let patched = format!("{}{}{}", &text[..llc], bumped, &text[end..]);
        std::fs::write(&b, patched).unwrap();
        let err = report_diff(&[a.clone(), b.clone()]).unwrap_err();
        assert!(err.contains("threshold"), "{err}");
        let err = report_diff(&[a.clone(), b.clone(), "--json".into()]).unwrap_err();
        assert!(err.contains("threshold"), "--json must keep the exit contract: {err}");
        report_diff(&[a.clone(), b.clone(), "--threshold".into(), "5".into()]).unwrap();
        assert!(report_diff(&[a, b, "--threshold".into(), "-1".into()]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listings_do_not_fail() {
        list_workloads().unwrap();
        list_policies().unwrap();
    }

    #[test]
    fn trends_record_table_check_gc_round_trip() {
        let dir = std::env::temp_dir().join(format!("ccsim_cli_trends_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ledger: String = dir.join("trends.jsonl").to_str().unwrap().into();
        let bench_doc = |rps: f64| {
            format!(
                r#"{{"ccsim_bench": 2, "quick": true,
                    "wall_clock_breakdown": {{"decode_ns": 10, "simulate_ns": 80, "report_ns": 10}},
                    "obs_overhead": {{"overhead_pct": 1.0}},
                    "cells": [{{"pattern": "llc_thrash", "policy": "lru", "records": 10,
                                "best_rps": {rps}, "median_rps": {rps}}}]}}"#
            )
        };
        let bench_path = dir.join("bench.json");
        for (i, rps) in [100.0, 101.0, 99.0].iter().enumerate() {
            std::fs::write(&bench_path, bench_doc(*rps)).unwrap();
            trends(&[
                "record".into(),
                "--ledger".into(),
                ledger.clone(),
                "--rev".into(),
                format!("rev{i}"),
                "--label".into(),
                "main".into(),
                "--timestamp".into(),
                format!("{i}"),
                "--from-bench".into(),
                bench_path.to_str().unwrap().into(),
            ])
            .unwrap();
        }
        trends(&["table".into(), "--ledger".into(), ledger.clone()]).unwrap();
        trends(&["check".into(), "--ledger".into(), ledger.clone(), "--json".into()]).unwrap();

        // A synthetic 50% regression must flip the gate to a hard error.
        std::fs::write(&bench_path, bench_doc(50.0)).unwrap();
        trends(&[
            "record".into(),
            "--ledger".into(),
            ledger.clone(),
            "--rev".into(),
            "bad".into(),
            "--timestamp".into(),
            "9".into(),
            "--from-bench".into(),
            bench_path.to_str().unwrap().into(),
        ])
        .unwrap();
        let err = trends(&["check".into(), "--ledger".into(), ledger.clone()]).unwrap_err();
        assert!(err.contains("bench/llc_thrash/median_rps"), "{err}");

        trends(&["gc".into(), "--ledger".into(), ledger.clone(), "--keep".into(), "2".into()])
            .unwrap();
        let text = std::fs::read_to_string(&ledger).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"rev\":\"bad\""));

        // `--rev` is now optional: omitting it tags the entry with the
        // repository HEAD (or "unknown" outside a repository) instead of
        // failing.
        let expected_rev = default_trends_rev();
        assert!(!expected_rev.is_empty());
        trends(&[
            "record".into(),
            "--ledger".into(),
            ledger.clone(),
            "--timestamp".into(),
            "10".into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&ledger).unwrap();
        let last = text.lines().last().unwrap();
        assert!(last.contains(&format!("\"rev\":\"{expected_rev}\"")), "{last}");

        // Flag hygiene: missing --keep and unknown subcommands fail.
        assert!(trends(&["gc".into(), "--ledger".into(), ledger.clone()]).is_err());
        assert!(trends(&["frobnicate".into()]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_trends_rev_resolves_head_or_unknown() {
        let rev = default_trends_rev();
        // Inside this repository the fallback resolves a full commit
        // hash; anywhere else it degrades to the sentinel. Either way it
        // is non-empty and single-line.
        assert!(
            rev == "unknown" || (rev.len() == 40 && rev.chars().all(|c| c.is_ascii_hexdigit())),
            "{rev}"
        );
    }

    #[test]
    fn bench_rejects_chunk_records_without_grid() {
        let err = bench(&["--chunk-records".into(), "512".into()]).unwrap_err();
        assert!(err.contains("--grid"), "{err}");
        assert!(bench(&["--grid".into(), "--chunk-records".into(), "none".into()]).is_err());
    }
}
