//! Subcommand implementations for the `ccsim` binary.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

use ccsim_campaign::journal::sim_result_to_json;
use ccsim_campaign::{Campaign, CampaignSpec, Json, TraceCache};
use ccsim_core::experiment::report::fmt_f;
use ccsim_core::experiment::{run_matrix, Table};
use ccsim_core::{SimConfig, SimResult};
use ccsim_policies::PolicyKind;
use ccsim_trace::stats::{ReuseProfile, TraceStats};
use ccsim_trace::{read_trace, write_trace, Trace};
use ccsim_workloads::{paper_workloads, qualcomm_suite, spec_suite, xsbench_suite, SuiteScale};

/// Top-level usage text.
pub const USAGE: &str = "\
ccsim — trace-driven LLC replacement-policy characterization

USAGE:
    ccsim trace-gen <workload> <out.cctr> [--quick]
    ccsim trace-stats <in.cctr>
    ccsim sim <in.cctr> [--policy <name>]... [--llc-scale <power-of-two>]
              [--threads <n>] [--json]
    ccsim campaign <spec.json> [--threads <n>] [--out <dir>]
              [--cache-dir <dir>] [--no-cache] [--fresh] [--json] [--quiet]
    ccsim workloads
    ccsim policies

Multi-policy `sim` runs sweep the policies in parallel (`--threads`,
default: available cores, max 8); `--json` emits machine-readable
results instead of the table.

`campaign` runs a declarative spec (see campaigns/*.json): traces are
generated once into a content-addressed cache, every completed cell is
checkpointed to <out>/journal.jsonl so an interrupted campaign resumes
where it stopped (`--fresh` discards the journal), and the report is
written to <out>/report.json and <out>/report.csv.
";

/// Builds the named workload's trace.
fn build_workload(name: &str, quick: bool) -> Result<Trace, String> {
    let scale = if quick { SuiteScale::Quick } else { SuiteScale::Full };
    ccsim_workloads::build_workload(name, scale)
}

use ccsim_core::experiment::default_threads;

/// Parses an optional `--flag <n>` usize argument.
fn parse_flag_value<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a valid value")),
    }
}

/// Splits `args` into positional arguments, skipping the values consumed
/// by `value_flags` and rejecting any flag in neither list.
fn positionals<'a>(
    args: &'a [String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<Vec<&'a String>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if value_flags.contains(&a.as_str()) {
            it.next();
        } else if a.starts_with("--") {
            if !bool_flags.contains(&a.as_str()) {
                return Err(format!("unknown flag {a:?}\n\n{USAGE}"));
            }
        } else {
            out.push(a);
        }
    }
    Ok(out)
}

/// `ccsim trace-gen <workload> <out> [--quick]`
pub fn trace_gen(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [workload, out] = positional[..] else {
        return Err(format!("expected <workload> <out.cctr>\n\n{USAGE}"));
    };
    let quick = args.iter().any(|a| a == "--quick");
    let trace = build_workload(workload, quick)?;
    let file = File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    write_trace(&trace, BufWriter::new(file)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {}: {} records, {} instructions", out, trace.len(), trace.instructions());
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    read_trace(BufReader::new(file)).map_err(|e| format!("decoding {path}: {e}"))
}

/// `ccsim trace-stats <in>`
pub fn trace_stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(format!("expected <in.cctr>\n\n{USAGE}"));
    };
    let trace = load_trace(path)?;
    let s = TraceStats::compute(&trace);
    println!("workload            : {}", trace.name());
    println!("memory records      : {}", trace.len());
    println!("instructions        : {}", s.instructions);
    println!("loads / stores      : {} / {}", s.loads, s.stores);
    println!("mem per kinstr      : {:.1}", s.mem_per_kilo_instruction());
    println!(
        "footprint           : {} blocks ({:.2} MB)",
        s.footprint_blocks,
        s.footprint_bytes as f64 / (1 << 20) as f64
    );
    println!("distinct PCs        : {}", s.distinct_pcs);
    println!("blocks per PC       : mean {:.1}, max {}", s.mean_blocks_per_pc, s.max_blocks_per_pc);
    let p = ReuseProfile::compute(&trace);
    println!("cold accesses       : {:.1}%", 100.0 * p.cold() as f64 / p.total().max(1) as f64);
    for (cap, label) in [(512u64, "L1D-sized"), (16_384, "L2-sized"), (22_528, "LLC-sized")] {
        println!(
            "reuse within {:>6} blocks ({label:>9}): {:.1}%",
            cap,
            100.0 * p.hit_fraction_within(cap)
        );
    }
    Ok(())
}

/// `ccsim sim <in> [--policy P]... [--llc-scale N] [--threads N] [--json]`
pub fn sim(args: &[String]) -> Result<(), String> {
    let positional = positionals(args, &["--policy", "--llc-scale", "--threads"], &["--json"])?;
    let path = positional.first().ok_or_else(|| format!("expected <in.cctr>\n\n{USAGE}"))?;
    let mut policies: Vec<PolicyKind> = Vec::new();
    let mut llc_scale = 1u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policies.push(v.parse().map_err(|e| format!("{e}"))?);
            }
            "--llc-scale" => {
                let v = it.next().ok_or("--llc-scale needs a value")?;
                llc_scale = v.parse().map_err(|_| format!("bad llc scale {v:?}"))?;
                if !llc_scale.is_power_of_two() {
                    return Err("llc scale must be a power of two".into());
                }
            }
            _ => {}
        }
    }
    if policies.is_empty() {
        policies.push(PolicyKind::Lru);
    }
    let threads = parse_flag_value(args, "--threads")?.unwrap_or_else(default_threads);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let json = args.iter().any(|a| a == "--json");
    let trace = load_trace(path)?;
    let config = SimConfig::cascade_lake().with_llc_scale(llc_scale);
    // Multi-policy runs go through the parallel work-stealing executor;
    // results come back in policy order either way.
    let results: Vec<SimResult> =
        run_matrix(std::slice::from_ref(&trace), &policies, &config, threads)
            .into_iter()
            .map(|e| e.result)
            .collect();
    if json {
        let cells = results
            .iter()
            .map(|r| {
                let Json::Obj(mut pairs) = sim_result_to_json(r) else { unreachable!() };
                pairs.push(("ipc".into(), Json::num(r.ipc())));
                pairs.push(("llc_mpki".into(), Json::num(r.mpki_llc())));
                Json::Obj(pairs)
            })
            .collect();
        let doc = Json::obj(vec![
            ("workload", Json::str(trace.name())),
            ("platform", Json::str(config.to_string())),
            ("llc_scale", Json::int(llc_scale as u64)),
            ("results", Json::Arr(cells)),
        ]);
        println!("{}", doc.to_pretty().trim_end());
        return Ok(());
    }
    println!("platform: {config}");
    let mut table = Table::new(vec![
        "policy".into(),
        "ipc".into(),
        "l1d_mpki".into(),
        "l2_mpki".into(),
        "llc_mpki".into(),
        "llc_hit_%".into(),
        "dram_reach_%".into(),
    ]);
    for r in &results {
        table.row(vec![
            r.policy.clone(),
            fmt_f(r.ipc(), 3),
            fmt_f(r.mpki_l1d(), 1),
            fmt_f(r.mpki_l2(), 1),
            fmt_f(r.mpki_llc(), 1),
            fmt_f(100.0 * r.llc.hit_rate(), 1),
            fmt_f(100.0 * r.dram_reach_fraction(), 1),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// `ccsim campaign <spec.json> [--threads N] [--out DIR] [--cache-dir DIR]
/// [--no-cache] [--fresh] [--json] [--quiet]`
pub fn campaign(args: &[String]) -> Result<(), String> {
    let positional = positionals(
        args,
        &["--threads", "--out", "--cache-dir"],
        &["--no-cache", "--fresh", "--json", "--quiet"],
    )?;
    let [spec_path] = positional[..] else {
        return Err(format!("expected <spec.json>\n\n{USAGE}"));
    };
    let spec = CampaignSpec::from_file(std::path::Path::new(spec_path))?;
    let threads = parse_flag_value(args, "--threads")?.unwrap_or_else(default_threads);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let out_dir: PathBuf = parse_flag_value::<PathBuf>(args, "--out")?
        .unwrap_or_else(|| PathBuf::from("campaign-out").join(&spec.name));
    let cache_dir: PathBuf = parse_flag_value::<PathBuf>(args, "--cache-dir")?
        .unwrap_or_else(|| PathBuf::from("campaign-out").join("trace-cache"));
    let json = args.iter().any(|a| a == "--json");
    let quiet = args.iter().any(|a| a == "--quiet");
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let journal_path = out_dir.join("journal.jsonl");
    if args.iter().any(|a| a == "--fresh") && journal_path.exists() {
        std::fs::remove_file(&journal_path)
            .map_err(|e| format!("removing {}: {e}", journal_path.display()))?;
    }

    let mut campaign = Campaign::new(spec).threads(threads).journal(&journal_path).verbose(!quiet);
    if !args.iter().any(|a| a == "--no-cache") {
        let cache = TraceCache::new(&cache_dir)
            .map_err(|e| format!("opening trace cache {}: {e}", cache_dir.display()))?;
        campaign = campaign.cache(cache);
    }
    let name = campaign.spec().name.clone();
    let outcome = campaign.run()?;

    let report_json = out_dir.join("report.json");
    let report_csv = out_dir.join("report.csv");
    std::fs::write(&report_json, outcome.report.to_json_string())
        .map_err(|e| format!("writing {}: {e}", report_json.display()))?;
    std::fs::write(&report_csv, outcome.report.to_csv())
        .map_err(|e| format!("writing {}: {e}", report_csv.display()))?;

    if json {
        println!("{}", outcome.report.to_json_string().trim_end());
        return Ok(());
    }
    if !quiet && outcome.report.cells.len() <= 64 {
        println!("{}", outcome.report.cells_table().render());
    }
    println!(
        "campaign {name}: {} cells ({} resumed from journal), trace cache {} hit(s) / {} miss(es)",
        outcome.cells_total, outcome.cells_resumed, outcome.cache_hits, outcome.cache_misses
    );
    println!("report: {} and {}", report_json.display(), report_csv.display());
    Ok(())
}

/// `ccsim workloads`
pub fn list_workloads() -> Result<(), String> {
    println!("GAP (kernel.graph):");
    for w in paper_workloads() {
        println!("  {w}");
    }
    println!("SPEC-like:");
    for t in spec_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    println!("XSBench-like:");
    for t in xsbench_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    println!("Qualcomm-like:");
    for t in qualcomm_suite(SuiteScale::Quick) {
        println!("  {}", t.name());
    }
    Ok(())
}

/// `ccsim policies`
pub fn list_policies() -> Result<(), String> {
    for k in PolicyKind::ALL {
        println!("{}", k.name());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_workload_accepts_gap_and_suite_names() {
        assert!(build_workload("bfs.kron", true).is_ok());
        assert!(build_workload("spec.stream", true).is_ok());
        assert!(build_workload("xsbench.small", true).is_ok());
        assert!(build_workload("qcom.srv0", true).is_ok());
        assert!(build_workload("nope.nothing", true).is_err());
        assert!(build_workload("spec.nothing", true).is_err());
    }

    #[test]
    fn trace_gen_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("ccsim_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.cctr");
        let path_s = path.to_str().unwrap().to_owned();
        trace_gen(&["xsbench.small".into(), path_s.clone(), "--quick".into()]).unwrap();
        trace_stats(std::slice::from_ref(&path_s)).unwrap();
        sim(&[path_s.clone(), "--policy".into(), "srrip".into()]).unwrap();
        // Multi-policy parallel sweep and machine-readable output; flags
        // may precede the trace path (flag values are not positionals).
        sim(&[
            "--policy".into(),
            "lru".into(),
            "--policy".into(),
            "srrip".into(),
            "--threads".into(),
            "2".into(),
            "--json".into(),
            path_s.clone(),
        ])
        .unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn sim_rejects_bad_policy_and_scale() {
        assert!(sim(&["x.cctr".into(), "--policy".into(), "bogus".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--llc-scale".into(), "3".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--threads".into(), "zero".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--threads".into(), "0".into()]).is_err());
        assert!(sim(&["x.cctr".into(), "--frobnicate".into()]).is_err());
    }

    #[test]
    fn campaign_command_runs_spec_end_to_end() {
        let dir = std::env::temp_dir().join(format!("ccsim_cli_campaign_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        std::fs::write(
            &spec_path,
            r#"{"name": "cli_smoke", "base_config": "tiny",
                "workloads": ["xsbench.small"], "policies": ["lru", "srrip"]}"#,
        )
        .unwrap();
        let args: Vec<String> = vec![
            spec_path.to_str().unwrap().into(),
            "--threads".into(),
            "2".into(),
            "--out".into(),
            dir.join("out").to_str().unwrap().into(),
            "--cache-dir".into(),
            dir.join("cache").to_str().unwrap().into(),
            "--quiet".into(),
        ];
        campaign(&args).unwrap();
        assert!(dir.join("out/report.json").exists());
        assert!(dir.join("out/report.csv").exists());
        assert!(dir.join("out/journal.jsonl").exists());
        // Second invocation: everything resumes, nothing regenerates.
        campaign(&args).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_rejects_missing_spec() {
        assert!(campaign(&["/nonexistent/spec.json".into()]).is_err());
        assert!(campaign(&[]).is_err());
    }

    #[test]
    fn listings_do_not_fail() {
        list_workloads().unwrap();
        list_policies().unwrap();
    }
}
