//! `ccsim` — command-line front end for the simulation suite.
//!
//! ```text
//! ccsim trace-gen <workload> <out.cctr>   capture a workload trace to disk
//! ccsim trace-stats <in>                  footprint / PC / reuse statistics
//! ccsim ingest <in> <out.cctr>            convert a ChampSim/CVP trace to CCTR
//! ccsim sim <in.cctr> [--policy P]...     simulate a trace file
//! ccsim campaign <spec.json>              run a declarative campaign
//! ccsim campaign worker <spec.json>       drain a shared dir cooperatively
//! ccsim campaign assemble <spec.json>     merge worker journals into a report
//! ccsim campaign status <spec.json>       distributed-campaign progress
//! ccsim report-diff <a.json> <b.json>     per-cell deltas of two reports
//! ccsim bench [--quick] [--json]          simulator throughput benchmark
//! ccsim trends record|table|check|gc      cross-revision performance ledger
//! ccsim workloads                         list available workload names
//! ccsim policies                          list available policy names
//! ```
//!
//! Workload names: any GAP pair (`bfs.kron`, `pr.twitter`, ...) or a
//! synthetic suite member (`spec.stream`, `xsbench.large`, `qcom.srv0`).
//! Add `--quick` to `trace-gen` for reduced-scale captures. `trace-stats`
//! and `ingest` auto-detect foreign formats; campaign specs accept
//! external trace files as `trace:<path>` workload selectors.

use std::process::ExitCode;

mod commands;

/// Counting allocator so `ccsim bench` can measure (and CI can gate on)
/// the zero-allocations-per-record hot-path contract from inside the real
/// binary. One relaxed atomic add per allocation; no measurable cost on
/// any other subcommand.
#[global_allocator]
static ALLOC: ccsim_bench::alloc_track::CountingAlloc = ccsim_bench::alloc_track::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("trace-gen") => commands::trace_gen(&args[1..]),
        Some("trace-stats") => commands::trace_stats(&args[1..]),
        Some("ingest") => commands::ingest(&args[1..]),
        Some("sim") => commands::sim(&args[1..]),
        Some("campaign") => commands::campaign(&args[1..]),
        Some("report-diff") => commands::report_diff(&args[1..]),
        Some("bench") => commands::bench(&args[1..]),
        Some("trends") => commands::trends(&args[1..]),
        Some("workloads") => commands::list_workloads(),
        Some("policies") => commands::list_policies(),
        Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", commands::USAGE)),
    };
    match code {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
