//! Campaign-wide progress view over a shared distributed directory.
//!
//! `ccsim campaign status` renders this: how much of the grid is done,
//! which workers contributed what, who currently claims which cells, and
//! which leases have gone stale (crashed holders awaiting reclaim).
//! Collection is entirely read-only — journals are merged with
//! [`merge_dir_cached`] and leases scanned without touching any file.

use std::collections::BTreeMap;
use std::path::Path;

use ccsim_campaign::journal::merge_dir_cached;
use ccsim_campaign::{Campaign, CampaignSpec, MergeCursor};
use ccsim_core::experiment::Table;

use crate::lease::{band_workload, Lease, LeaseDir};
use crate::leases_dir;

/// One worker's contribution, from its journal segment and live claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatus {
    /// Worker id (`(solo)` for the single-process `journal.jsonl`).
    pub worker: String,
    /// Cells journaled by this worker.
    pub completed: usize,
    /// Lease files this worker currently holds — band or per-cell,
    /// including stale ones.
    pub claims: usize,
}

/// A read-only snapshot of a distributed campaign's progress.
#[derive(Debug)]
pub struct DistStatus {
    /// Campaign name.
    pub campaign: String,
    /// Total grid cells.
    pub cells_total: usize,
    /// Cells with a journaled result.
    pub completed: usize,
    /// Pending cells under a live lease — a band lease counts every
    /// pending cell of its workload.
    pub leased: usize,
    /// Pending cells under a stale lease (holder presumed crashed).
    pub stale: usize,
    /// Cells with neither a result nor a lease.
    pub unclaimed: usize,
    /// Duplicate (identical) journal entries across segments.
    pub duplicates: usize,
    /// Per-worker contributions, sorted by worker id.
    pub workers: Vec<WorkerStatus>,
    /// Every stale lease still covering at least one pending cell, for
    /// operator attention (stale leases covering only completed cells
    /// block nothing and are omitted).
    pub stale_leases: Vec<Lease>,
}

/// Collects the status of `spec` under `shared_dir`.
///
/// # Errors
///
/// Returns a message on invalid specs or conflicting journal segments.
pub fn status(spec: &CampaignSpec, shared_dir: &Path) -> Result<DistStatus, String> {
    status_with_cursor(spec, shared_dir, &mut MergeCursor::new())
}

/// [`status`], reusing a journal [`MergeCursor`] across calls so a
/// poller (`ccsim campaign watch`) re-reads only journal bytes appended
/// since its previous poll instead of rescanning every segment.
///
/// # Errors
///
/// Same failure modes as [`status`].
pub fn status_with_cursor(
    spec: &CampaignSpec,
    shared_dir: &Path,
    cursor: &mut MergeCursor,
) -> Result<DistStatus, String> {
    let grid = Campaign::new(spec.clone()).grid()?;
    let merged = merge_dir_cached(shared_dir, &spec.name, &spec.digest(), cursor)?;
    let leases_root = leases_dir(shared_dir);
    let leases: Vec<Lease> = if leases_root.is_dir() {
        LeaseDir::open(leases_root)
            .map_err(|e| format!("opening lease dir: {e}"))?
            .scan()
            .into_iter()
            // Only leases naming cells or workload bands of *this* grid;
            // an aborted older spec under the same dir must not pollute
            // the counts.
            .filter(|l| match band_workload(&l.cell) {
                Some(workload) => grid.workloads.iter().any(|w| w == workload),
                None => grid.cells.iter().any(|c| c.id == l.cell),
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut workers: BTreeMap<String, WorkerStatus> = BTreeMap::new();
    for (segment, cells) in &merged.segments {
        let worker = segment
            .strip_prefix("journal.")
            .and_then(|s| s.strip_suffix(".jsonl"))
            .filter(|s| !s.is_empty())
            .map_or_else(|| "(solo)".to_owned(), str::to_owned);
        let entry = workers.entry(worker.clone()).or_insert(WorkerStatus {
            worker,
            completed: 0,
            claims: 0,
        });
        entry.completed += cells;
    }
    for lease in &leases {
        let entry = workers.entry(lease.worker.clone()).or_insert(WorkerStatus {
            worker: lease.worker.clone(),
            completed: 0,
            claims: 0,
        });
        entry.claims += 1;
    }

    let completed = grid.cells.iter().filter(|c| merged.completed.contains_key(&c.id)).count();
    // Expand leases to the *pending cells* they cover: a band lease
    // covers every pending cell of its workload, a cell-specific lease
    // (older tooling) wins its own cell. Leases covering only completed
    // cells (a worker crashed between journaling and releasing) block
    // nothing: they drop out of the counters *and* the stale listing so
    // the two can't contradict.
    let mut covered: BTreeMap<&str, &Lease> = BTreeMap::new();
    for lease in &leases {
        if let Some(workload) = band_workload(&lease.cell) {
            for cell in grid.cells_of(workload) {
                if !merged.completed.contains_key(&cell.id) {
                    covered.insert(cell.id.as_str(), lease);
                }
            }
        }
    }
    for lease in &leases {
        if band_workload(&lease.cell).is_none() && !merged.completed.contains_key(&lease.cell) {
            covered.insert(lease.cell.as_str(), lease);
        }
    }
    let leased = covered.values().filter(|l| !l.stale).count();
    let stale = covered.values().filter(|l| l.stale).count();
    let stale_ids: std::collections::BTreeSet<&str> =
        covered.values().filter(|l| l.stale).map(|l| l.cell.as_str()).collect();
    let stale_leases = leases.iter().filter(|l| stale_ids.contains(l.cell.as_str())).cloned();
    Ok(DistStatus {
        campaign: spec.name.clone(),
        cells_total: grid.cells.len(),
        completed,
        leased,
        stale,
        unclaimed: grid.cells.len() - completed - leased - stale,
        duplicates: merged.duplicates,
        workers: workers.into_values().collect(),
        stale_leases: stale_leases.collect(),
    })
}

impl DistStatus {
    /// Per-worker table: completed cells and live claims.
    pub fn workers_table(&self) -> Table {
        let mut t =
            Table::new(["worker", "completed", "claims"].iter().map(|s| (*s).to_owned()).collect());
        for w in &self.workers {
            t.row(vec![w.worker.clone(), w.completed.to_string(), w.claims.to_string()]);
        }
        t
    }

    /// The human-readable rendering `ccsim campaign status` prints.
    pub fn render(&self) -> String {
        let mut out = format!(
            "campaign {}: {} cells — {} completed, {} leased, {} stale-leased, {} unclaimed",
            self.campaign,
            self.cells_total,
            self.completed,
            self.leased,
            self.stale,
            self.unclaimed
        );
        if self.duplicates > 0 {
            out.push_str(&format!(
                "\n{} duplicate journal entr{} (lease-expiry re-runs; results identical)",
                self.duplicates,
                if self.duplicates == 1 { "y" } else { "ies" }
            ));
        }
        if !self.workers.is_empty() {
            out.push('\n');
            out.push_str(&self.workers_table().render());
        }
        for l in &self.stale_leases {
            out.push_str(&format!(
                "\nstale lease: {} held by {} (epoch {}, age {}s, ttl {}s)",
                l.cell, l.worker, l.epoch, l.age_secs, l.ttl_secs
            ));
        }
        out
    }
}
