//! Report assembly from any worker set's partial journals.
//!
//! Merging every journal segment in the shared directory and rebuilding
//! the report through the same spec-ordered construction a single
//! process uses ([`Campaign::report_from_completed`]) makes the output
//! **byte-identical** to an uninterrupted `ccsim campaign` run — however
//! many workers contributed, in whatever order, with however many crash
//! recoveries along the way. Incomplete grids and conflicting duplicate
//! results fail loudly instead of producing a silently-wrong report.

use std::path::Path;

use ccsim_campaign::journal::merge_dir;
use ccsim_campaign::{Campaign, CampaignReport, CampaignSpec};

/// A successfully assembled distributed campaign.
#[derive(Debug)]
pub struct AssembleOutcome {
    /// The deterministic report, byte-identical to a single-process run.
    pub report: CampaignReport,
    /// Valid journal entries read across all segments.
    pub entries: usize,
    /// Cells simulated more than once (identical results; lease-expiry
    /// re-runs). Zero in a healthy campaign.
    pub duplicates: usize,
    /// `(segment file name, cells contributed)`, sorted by name.
    pub segments: Vec<(String, usize)>,
}

/// Assembles the report of `spec` from the journal segments under
/// `shared_dir`.
///
/// # Errors
///
/// Returns a message when segments hold conflicting results for a cell
/// (mixed binaries / corruption — see
/// [`ccsim_campaign::journal::merge_dir`]) or when the grid is not yet
/// fully journaled (the campaign is still running; the message names
/// missing cells).
pub fn assemble(spec: &CampaignSpec, shared_dir: &Path) -> Result<AssembleOutcome, String> {
    let merged = merge_dir(shared_dir, &spec.name, &spec.digest())?;
    let report = Campaign::new(spec.clone()).report_from_completed(&merged.completed)?;
    Ok(AssembleOutcome {
        report,
        entries: merged.entries,
        duplicates: merged.duplicates,
        segments: merged.segments,
    })
}
