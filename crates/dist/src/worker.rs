//! The distributed campaign worker: claim a band → simulate it in one
//! pass → journal each cell → release.
//!
//! N workers (processes on one host, or many hosts over a shared
//! filesystem) each run this loop against one shared campaign directory.
//! There is no coordinator: the pending set is re-derived every round by
//! merging every worker's journal segment, claims are arbitrated by the
//! lease files alone, and a worker that finds nothing claimable backs
//! off and polls until the grid is drained (leases held by live peers
//! either complete or expire).
//!
//! Claims are **workload bands** ([`crate::lease::band_lease_id`]): one
//! lease covers every pending cell sharing a trace, and the holder
//! replays that trace once for all of them
//! ([`ccsim_campaign::AcquiredTrace::simulate_cells`]) instead of once
//! per cell. Each cell is still journaled individually, so a worker that
//! dies mid-band loses only its unjournaled cells — the reclaiming peer
//! re-derives the band's pending remainder from the merged journals and
//! resumes there. Sharding granularity is therefore the workload: peers
//! parallelize across workloads (and across shards *within* a band via
//! [`WorkerOptions::threads`]), not across cells of one workload.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ccsim_campaign::journal::merge_dir_cached;
use ccsim_campaign::spec::fnv1a64;
use ccsim_campaign::{
    record_band_metrics, Campaign, CampaignSpec, GridCell, Journal, MergeCursor, TraceCache,
};
use ccsim_core::SimConfig;
use ccsim_obs::{Field, RunMeta, RunObs};
use ccsim_policies::PolicyKind;

use crate::lease::{band_lease_id, Claim, LeaseDir};
use crate::{leases_dir, trace_cache_dir};

/// How a worker executes: identity, lease TTL, parallelism and patience.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Worker identity — names the journal segment and every lease this
    /// worker takes. Must be unique per live worker
    /// ([`default_worker_id`] derives host + pid).
    pub worker_id: String,
    /// Lease TTL. A heartbeat renews the held band lease at `ttl / 3`
    /// while the band simulates, so the TTL only needs to exceed
    /// worst-case *stall* (swap, NFS hiccup, clock skew), not band
    /// runtime.
    pub ttl: Duration,
    /// Worker threads: the cells of one claimed band shard into this
    /// many lockstep one-pass replays.
    pub threads: usize,
    /// Sleep between polls when every pending band is leased by a live
    /// peer.
    pub backoff: Duration,
    /// Stop after completing this many cells (testing and drain-limits);
    /// `None` runs until the campaign is done. A limit smaller than a
    /// band truncates the band — the rest stays pending for any worker.
    pub max_cells: Option<usize>,
    /// Per-band progress lines on stderr.
    pub verbose: bool,
}

impl WorkerOptions {
    /// Defaults: the given identity, 300 s TTL, 1 thread, 500 ms backoff,
    /// no cell limit, quiet.
    pub fn new(worker_id: impl Into<String>) -> WorkerOptions {
        WorkerOptions {
            worker_id: worker_id.into(),
            ttl: Duration::from_secs(300),
            threads: 1,
            backoff: Duration::from_millis(500),
            max_cells: None,
            verbose: false,
        }
    }
}

/// A filename- and lease-safe worker identity derived from host + pid:
/// `<hostname>-<pid>`, sanitized to `[A-Za-z0-9_-]`.
///
/// The hostname comes from the kernel (`/proc/sys/kernel/hostname`)
/// rather than the `HOSTNAME` shell variable, which is rarely exported
/// to systemd/cron/ssh-spawned workers — two hosts silently sharing a
/// fallback id (plus a pid collision) would share a journal segment.
pub fn default_worker_id() -> String {
    let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|h| h.trim().to_owned())
        .filter(|h| !h.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok().filter(|h| !h.is_empty()))
        .unwrap_or_else(|| "host".to_owned());
    sanitize_worker_id(&format!("{host}-{}", std::process::id()))
}

/// Maps `id` to the filename- and lease-safe alphabet `[A-Za-z0-9_-]`
/// (everything else becomes `-`); empty input becomes `"worker"`.
pub fn sanitize_worker_id(id: &str) -> String {
    let s: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || "_-".contains(c) { c } else { '-' })
        .collect();
    if s.is_empty() {
        "worker".to_owned()
    } else {
        s
    }
}

/// What one worker run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Cells this worker simulated and journaled.
    pub completed: usize,
    /// Workload bands claimed by reclaiming a stale (crashed-holder)
    /// lease; the band resumes from whatever cells the dead worker had
    /// journaled.
    pub reclaimed: usize,
    /// Backoff sleeps while every pending band was held by live peers.
    pub backoffs: usize,
    /// The whole grid was completed (by any worker set) when this worker
    /// exited; `false` only when `max_cells` stopped it early.
    pub campaign_done: bool,
}

/// Runs one worker against the shared campaign directory until the
/// campaign's grid is fully journaled (or `max_cells` is reached).
///
/// Layout used under `shared_dir`: `leases/` for claims,
/// `journal.<worker>.jsonl` for this worker's results, `trace-cache/`
/// for the shared content-addressed trace cache (digest-keyed, so
/// rsync/NFS-safe; concurrent converters race benignly via tmp-file +
/// atomic rename).
///
/// # Errors
///
/// Returns a message on spec/selector errors, trace acquisition
/// failures, and journal or lease I/O errors. Held leases are released
/// on error exit (guards drop); journaled cells are never lost.
pub fn run_worker(
    spec: &CampaignSpec,
    shared_dir: &Path,
    opts: &WorkerOptions,
) -> Result<WorkerOutcome, String> {
    let worker = sanitize_worker_id(&opts.worker_id);
    let digest = spec.digest();
    std::fs::create_dir_all(shared_dir)
        .map_err(|e| format!("creating {}: {e}", shared_dir.display()))?;
    let campaign = Campaign::new(spec.clone()).cache(
        TraceCache::new(trace_cache_dir(shared_dir))
            .map_err(|e| format!("opening shared trace cache: {e}"))?,
    );
    let grid = campaign.grid()?;
    let leases =
        LeaseDir::open(leases_dir(shared_dir)).map_err(|e| format!("opening lease dir: {e}"))?;
    let mut journal = Journal::open_segment(shared_dir, &worker, &spec.name, &digest)
        .map_err(|e| format!("opening journal segment: {e}"))?;
    // Per-worker telemetry: `obs.<worker>.jsonl` events plus a
    // `manifest.<worker>.json` rewritten after every band, which is what
    // `ccsim campaign watch` merges across workers. Best-effort — a
    // read-only or full shared dir must not stop the worker.
    let mut obs = RunObs::begin(
        shared_dir,
        RunMeta {
            campaign: spec.name.clone(),
            spec_digest: digest.clone(),
            worker: worker.clone(),
        },
        &format!("obs.{worker}.jsonl"),
        &format!("manifest.{worker}.json"),
    )
    .ok();

    let mut outcome =
        WorkerOutcome { completed: 0, reclaimed: 0, backoffs: 0, campaign_done: false };
    if let Some(o) = &mut obs {
        o.event(
            "run_start",
            &[
                ("cells_total", Field::U64(grid.cells.len() as u64)),
                ("workloads", Field::U64(grid.workloads.len() as u64)),
            ],
        );
    }
    // One merge cursor for the whole worker loop: each of the frequent
    // pending-set merges below re-reads only journal bytes appended since
    // the previous merge instead of rescanning every segment.
    let mut cursor = MergeCursor::new();
    // Start each worker at a different workload so N workers spread over
    // the grid instead of stampeding the same cells (claims stay correct
    // regardless; this only reduces contention).
    let offset = (fnv1a64(worker.as_bytes()) as usize) % grid.workloads.len().max(1);

    loop {
        // The authoritative pending set: everything any worker has
        // journaled so far, merged read-only across segments.
        let done = merge_dir_cached(shared_dir, &spec.name, &digest, &mut cursor)?.completed;
        if grid.cells.iter().all(|c| done.contains_key(&c.id)) {
            outcome.campaign_done = true;
            if let Some(o) = obs.take() {
                let _ = o.finish();
            }
            return Ok(outcome);
        }

        let mut progressed = false;
        for wi in 0..grid.workloads.len() {
            let workload = &grid.workloads[(wi + offset) % grid.workloads.len()];
            let budget = opts.max_cells.map(|m| m.saturating_sub(outcome.completed));
            if budget == Some(0) {
                // The cell limit is reached; the campaign may nonetheless
                // be complete (this worker's last batch can have drained
                // the grid), so report accurately.
                let done =
                    merge_dir_cached(shared_dir, &spec.name, &digest, &mut cursor)?.completed;
                outcome.campaign_done = grid.cells.iter().all(|c| done.contains_key(&c.id));
                if let Some(o) = obs.take() {
                    let _ = o.finish();
                }
                return Ok(outcome);
            }
            // Derive the band — every still-pending cell of the workload
            // — from a *fresh* merge: the round-start snapshot goes
            // stale while earlier bands simulate.
            let done = merge_dir_cached(shared_dir, &spec.name, &digest, &mut cursor)?.completed;
            let mut pending: Vec<&GridCell> =
                grid.cells_of(workload).filter(|c| !done.contains_key(&c.id)).collect();
            if pending.is_empty() {
                continue;
            }
            // One lease claims the whole band: all pending cells sharing
            // this workload's trace, to be replayed in one pass.
            let guard = match leases.claim(&band_lease_id(workload), &worker, opts.ttl)? {
                Claim::Acquired(guard) => guard,
                Claim::Held(_) => {
                    ccsim_obs::metrics().dist_lease_contention.inc();
                    continue;
                }
            };
            let m = ccsim_obs::metrics();
            m.dist_lease_claims.inc();
            m.dist_held_leases.inc();
            // Close the merge→claim race: a peer may have journaled band
            // cells and released its lease between our merge and our
            // claim. Peers journal (flushed) *before* releasing, so a
            // re-merge after claiming sees every such cell — dropping
            // them makes duplicate simulation impossible on a coherent
            // filesystem. This is also how a reclaimed band resumes
            // mid-band: the dead holder's journaled cells drop out here.
            let done = merge_dir_cached(shared_dir, &spec.name, &digest, &mut cursor)?.completed;
            let band_size = pending.len();
            pending.retain(|c| !done.contains_key(&c.id));
            if pending.len() < band_size {
                progressed = true; // the campaign advanced under us
            }
            if pending.is_empty() {
                m.dist_held_leases.dec();
                guard.release();
                continue;
            }
            if guard.epoch() > 1 {
                outcome.reclaimed += 1;
                m.dist_stale_reclaims.inc();
            }
            if let Some(budget) = budget {
                pending.truncate(budget);
            }
            if let Some(o) = &mut obs {
                o.event(
                    "claim",
                    &[
                        ("workload", Field::Str(workload)),
                        ("cells", Field::U64(pending.len() as u64)),
                        ("epoch", Field::U64(guard.epoch())),
                    ],
                );
            }

            // Acquire and simulate under a heartbeat renewing the band
            // lease at ttl/3. Acquisition is covered too: a first-time
            // conversion of a multi-GB `trace:` source can easily outlive
            // the TTL, and losing the lease there would hand the same
            // conversion to a peer.
            let stop = std::sync::atomic::AtomicBool::new(false);
            let band = std::thread::scope(|scope| {
                let (guard, stop) = (&guard, &stop);
                scope.spawn(move || {
                    let tick = Duration::from_millis(50);
                    let mut since_renew = Duration::ZERO;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        since_renew += tick;
                        if since_renew >= opts.ttl / 3 {
                            since_renew = Duration::ZERO;
                            ccsim_obs::metrics().dist_heartbeats.inc();
                            let _ = guard.renew();
                        }
                    }
                });
                let out = campaign.acquire(workload).and_then(|trace| {
                    let cells: Vec<(SimConfig, PolicyKind)> = pending
                        .iter()
                        .map(|cell| (grid.configs[cell.config_index].1, cell.policy))
                        .collect();
                    if opts.verbose {
                        // Band attribution: which worker runs it, at
                        // which lease epoch (>1 = reclaimed from a
                        // crash, resuming mid-band).
                        eprintln!(
                            "[{} e{}] {workload}: {} cell(s) in one pass ({} records{})",
                            worker,
                            guard.epoch(),
                            cells.len(),
                            trace.records(),
                            if trace.is_streamed() { ", streamed" } else { "" },
                        );
                    }
                    let sim_started = Instant::now();
                    trace.simulate_cells(&cells, opts.threads, 0).map(|results| {
                        (results, trace.records(), sim_started.elapsed().as_nanos() as u64)
                    })
                });
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                out
            });
            m.dist_held_leases.dec();
            // On acquisition/simulation failure the guard drops below and
            // releases the band; everything already journaled stays
            // journaled.
            let (results, trace_records, band_ns) = band?;
            for (cell, result) in pending.iter().zip(results) {
                journal
                    .record(&cell.id, &result)
                    .map_err(|e| format!("writing journal segment: {e}"))?;
                outcome.completed += 1;
            }
            guard.release();
            let records_simulated = trace_records * pending.len() as u64;
            record_band_metrics(pending.len() as u64, records_simulated, band_ns);
            if let Some(o) = &mut obs {
                o.add_band(pending.len() as u64, records_simulated, band_ns);
                o.event(
                    "band_done",
                    &[
                        ("workload", Field::Str(workload)),
                        ("cells", Field::U64(pending.len() as u64)),
                        ("trace_records", Field::U64(trace_records)),
                        ("sim_ns", Field::U64(band_ns)),
                    ],
                );
                let _ = o.write_manifest();
            }
            progressed = true;
        }

        if !progressed {
            // Every pending band is leased by someone else (or a claim
            // race was lost this round): wait for peers to finish,
            // crash-expire, or release.
            outcome.backoffs += 1;
            ccsim_obs::metrics().dist_backoffs.inc();
            if let Some(o) = &mut obs {
                o.event("backoff", &[("round", Field::U64(outcome.backoffs as u64))]);
            }
            std::thread::sleep(opts.backoff);
        }
    }
}

/// The shared-directory path a worker journals to, for status/logs.
pub fn segment_path_for(shared_dir: &Path, worker_id: &str) -> PathBuf {
    Journal::segment_path(shared_dir, &sanitize_worker_id(worker_id))
}
