//! Live campaign dashboard: merge [`DistStatus`] with every worker's
//! telemetry manifest.
//!
//! `ccsim campaign watch` polls this. Each poll is read-only and cheap:
//! journals are merged through a persistent [`MergeCursor`] (completed
//! segments are never re-read), lease files are `stat`ed, and the
//! per-worker `manifest.<worker>.json` documents written by
//! [`crate::run_worker`] (or `manifest.json` for a single-process run)
//! are parsed for throughput and timing.
//!
//! Determinism contract: a [`WatchView`] — including its
//! [`WatchView::to_json`] document — is a pure function of the shared
//! directory's contents. No wall-clock reading enters the view;
//! throughput and ETA derive solely from the manifests'
//! `records_simulated` / `sim_wall_ns` accounting. Polling an unchanged
//! directory therefore yields byte-identical JSON, which is what
//! `tests/obs.rs` pins and what makes `watch --once --json` usable in
//! scripts.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use ccsim_campaign::{CampaignSpec, Json, MergeCursor};
use ccsim_core::experiment::Table;
use ccsim_obs::json::JsonObj;
use ccsim_obs::{
    records_per_sec, QuantileSummary, HISTOGRAM_BUCKETS, OBS_MIN_SCHEMA_VERSION, OBS_SCHEMA_VERSION,
};

use crate::status::{status_with_cursor, DistStatus};

/// Throughput and timing a worker reported in its telemetry manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerManifest {
    /// Cells the worker simulated this run.
    pub cells_done: u64,
    /// Workload bands the worker completed this run.
    pub bands_done: u64,
    /// Engine-records advanced (trace records × cells per band).
    pub records_simulated: u64,
    /// Simulation wall-clock the worker spent, in nanoseconds.
    pub sim_wall_ns: u64,
    /// Per-cell simulation-time log₂ histogram buckets
    /// (`campaign_cell_sim_ns`), for fleet-wide quantiles. Empty for a
    /// v1 manifest that recorded no histogram, or one from a run with
    /// telemetry disabled.
    pub cell_sim_buckets: Vec<u64>,
}

/// One worker row of the dashboard: journal + lease facts from
/// [`DistStatus`] joined with the worker's own manifest (when present).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchWorker {
    /// Worker id (`(solo)` for a single-process run).
    pub worker: String,
    /// Cells journaled by this worker (authoritative, from the merge).
    pub completed: usize,
    /// Lease files this worker currently holds.
    pub claims: usize,
    /// The worker's telemetry manifest; `None` when it has not written
    /// one (pre-telemetry runs, or a crash before the first band).
    pub manifest: Option<WorkerManifest>,
}

impl WatchWorker {
    /// Records per second over this worker's own simulation wall-clock
    /// (0 when no manifest or no time accrued yet).
    pub fn records_per_sec(&self) -> u64 {
        self.manifest.as_ref().map_or(0, |m| records_per_sec(m.records_simulated, m.sim_wall_ns))
    }
}

/// One poll of the dashboard: campaign progress plus per-worker and
/// aggregate throughput.
#[derive(Debug)]
pub struct WatchView {
    /// Grid progress and lease occupancy.
    pub status: DistStatus,
    /// Per-worker rows, sorted by worker id.
    pub workers: Vec<WatchWorker>,
}

/// Polls a shared campaign directory, carrying a journal merge cursor
/// between polls so each [`Watcher::poll`] reads only what changed.
#[derive(Debug, Default)]
pub struct Watcher {
    cursor: MergeCursor,
}

/// A cheap stat-level fingerprint of a shared campaign directory: an
/// FNV-1a hash over the (name, len, mtime) of every top-level entry and
/// every lease file. Workers touch the directory on every journal
/// append, manifest rewrite, and lease claim/heartbeat/release, so the
/// fingerprint changes whenever a full re-poll could show anything new —
/// the push-mode watch loop sleeps until it moves instead of re-merging
/// journals on a fixed interval.
pub fn dir_fingerprint(shared_dir: &Path) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut stat_dir = |dir: &Path| {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        // read_dir order is platform-arbitrary; sort so an unchanged
        // directory always hashes identically.
        let mut names: Vec<std::ffi::OsString> = entries.flatten().map(|e| e.file_name()).collect();
        names.sort();
        for name in names {
            mix(name.as_encoded_bytes());
            let Ok(meta) = std::fs::metadata(dir.join(&name)) else { continue };
            mix(&meta.len().to_le_bytes());
            if let Ok(mtime) = meta.modified() {
                if let Ok(age) = mtime.duration_since(std::time::UNIX_EPOCH) {
                    mix(&age.as_nanos().to_le_bytes());
                }
            }
        }
    };
    stat_dir(shared_dir);
    stat_dir(&crate::leases_dir(shared_dir));
    hash
}

/// Sleep pacing for the push-mode watch loop: exponential backoff from
/// [`WatchPacing::MIN_MS`] up to a cap while the directory fingerprint
/// is unchanged, reset to the floor the moment it moves, plus a small
/// deterministic jitter so a fleet of watchers never stats the shared
/// (often NFS) directory in lockstep.
#[derive(Debug, Clone)]
pub struct WatchPacing {
    cap_ms: u64,
    cur_ms: u64,
    tick: u64,
    seed: u64,
}

impl WatchPacing {
    /// Backoff floor: the delay right after observed activity.
    pub const MIN_MS: u64 = 25;

    /// A fresh pacer that backs off up to `cap_ms` between directory
    /// stats (floored at [`WatchPacing::MIN_MS`]). `seed` decorrelates
    /// jitter across watcher processes (pass the pid).
    pub fn new(cap_ms: u64, seed: u64) -> WatchPacing {
        WatchPacing { cap_ms: cap_ms.max(Self::MIN_MS), cur_ms: Self::MIN_MS, tick: 0, seed }
    }

    /// The next idle delay: current backoff plus up to 25% jitter.
    /// Advances the backoff (doubling toward the cap), so call once per
    /// unchanged poll.
    pub fn idle_delay(&mut self) -> Duration {
        let base = self.cur_ms;
        self.cur_ms = (self.cur_ms * 2).min(self.cap_ms);
        self.tick = self.tick.wrapping_add(1);
        // splitmix64-style scramble of (seed, tick): deterministic per
        // watcher, uncorrelated across watchers.
        let mut z = self.seed.wrapping_add(self.tick.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter = z % (base / 4).max(1);
        Duration::from_millis(base + jitter)
    }

    /// Resets the backoff to the floor — call when the fingerprint
    /// moved and the view was re-collected.
    pub fn activity(&mut self) {
        self.cur_ms = Self::MIN_MS;
    }
}

impl Watcher {
    /// A fresh watcher with a cold merge cursor.
    pub fn new() -> Watcher {
        Watcher::default()
    }

    /// Collects one view of `spec` under `shared_dir`.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid specs or conflicting journal
    /// segments. Unparsable or foreign manifest files are skipped, not
    /// errors — a watcher must tolerate mid-write and mixed-version
    /// directories.
    pub fn poll(&mut self, spec: &CampaignSpec, shared_dir: &Path) -> Result<WatchView, String> {
        let status = status_with_cursor(spec, shared_dir, &mut self.cursor)?;
        let manifests = read_manifests(shared_dir, &spec.name, &spec.digest());

        // Join on worker id: status rows first (journal + leases are the
        // authority on progress), then any manifest-only workers (e.g. a
        // worker that died before journaling its first cell).
        let mut workers: BTreeMap<String, WatchWorker> = BTreeMap::new();
        for w in &status.workers {
            workers.insert(
                w.worker.clone(),
                WatchWorker {
                    worker: w.worker.clone(),
                    completed: w.completed,
                    claims: w.claims,
                    manifest: manifests.get(&w.worker).cloned(),
                },
            );
        }
        for (worker, manifest) in &manifests {
            workers.entry(worker.clone()).or_insert(WatchWorker {
                worker: worker.clone(),
                completed: 0,
                claims: 0,
                manifest: Some(manifest.clone()),
            });
        }
        Ok(WatchView { status, workers: workers.into_values().collect() })
    }
}

/// Parses every `manifest.json` / `manifest.<worker>.json` under `dir`
/// that matches this campaign and spec digest, keyed by worker id.
fn read_manifests(
    dir: &Path,
    campaign: &str,
    spec_digest: &str,
) -> BTreeMap<String, WorkerManifest> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !(name == "manifest.json" || (name.starts_with("manifest.") && name.ends_with(".json")))
        {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else { continue };
        let Ok(doc) = Json::parse(&text) else { continue };
        let schema_ok = doc
            .get("ccsim_obs")
            .and_then(Json::as_u64)
            .is_some_and(|v| (OBS_MIN_SCHEMA_VERSION..=OBS_SCHEMA_VERSION).contains(&v));
        let matches = schema_ok
            && doc.get("kind").and_then(Json::as_str) == Some("manifest")
            && doc.get("campaign").and_then(Json::as_str) == Some(campaign)
            && doc.get("spec").and_then(Json::as_str) == Some(spec_digest);
        if !matches {
            continue;
        }
        let Some(worker) = doc.get("worker").and_then(Json::as_str) else { continue };
        let field = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
        out.insert(
            worker.to_owned(),
            WorkerManifest {
                cells_done: field("cells_done"),
                bands_done: field("bands_done"),
                records_simulated: field("records_simulated"),
                sim_wall_ns: field("sim_wall_ns"),
                cell_sim_buckets: cell_sim_buckets(&doc),
            },
        );
    }
    out
}

/// Extracts the `campaign_cell_sim_ns` histogram's sparse `[index,
/// count]` bucket pairs from a manifest into a dense bucket vector.
/// Both v1 and v2 manifests carry raw buckets, so fleet quantiles work
/// across a mixed-version fleet. Empty when the histogram is absent.
fn cell_sim_buckets(doc: &Json) -> Vec<u64> {
    let Some(pairs) = doc
        .get("histograms")
        .and_then(|h| h.get("campaign_cell_sim_ns"))
        .and_then(|h| h.get("buckets"))
        .and_then(Json::as_array)
    else {
        return Vec::new();
    };
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    for pair in pairs {
        let Some(pair) = pair.as_array() else { continue };
        let (Some(i), Some(c)) =
            (pair.first().and_then(Json::as_u64), pair.get(1).and_then(Json::as_u64))
        else {
            continue;
        };
        if let Some(slot) = buckets.get_mut(i as usize) {
            *slot = c;
        }
    }
    buckets
}

impl WatchView {
    /// Whether the whole grid is journaled — the watch loop's exit
    /// condition.
    pub fn done(&self) -> bool {
        self.status.completed >= self.status.cells_total
    }

    /// Engine-records simulated across all worker manifests.
    pub fn records_simulated(&self) -> u64 {
        self.workers.iter().filter_map(|w| w.manifest.as_ref()).map(|m| m.records_simulated).sum()
    }

    /// Simulation wall-clock summed across all worker manifests, in
    /// nanoseconds.
    pub fn sim_wall_ns(&self) -> u64 {
        self.workers.iter().filter_map(|w| w.manifest.as_ref()).map(|m| m.sim_wall_ns).sum()
    }

    /// Aggregate records per second over the summed simulation
    /// wall-clock of all workers.
    pub fn records_per_sec(&self) -> u64 {
        records_per_sec(self.records_simulated(), self.sim_wall_ns())
    }

    /// Mean simulation wall-clock per completed cell, in nanoseconds
    /// (from the manifests' completed-cell timings; 0 until a band
    /// lands).
    pub fn mean_cell_sim_ns(&self) -> u64 {
        let cells: u64 =
            self.workers.iter().filter_map(|w| w.manifest.as_ref()).map(|m| m.cells_done).sum();
        self.sim_wall_ns().checked_div(cells).unwrap_or(0)
    }

    /// Fleet-wide per-cell simulation-time quantiles: the
    /// `campaign_cell_sim_ns` buckets of every worker manifest summed,
    /// then summarized. All-zero when no manifest carried the histogram
    /// (telemetry disabled, or nothing simulated yet).
    pub fn cell_sim_quantiles(&self) -> QuantileSummary {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for m in self.workers.iter().filter_map(|w| w.manifest.as_ref()) {
            for (slot, &c) in buckets.iter_mut().zip(&m.cell_sim_buckets) {
                *slot += c;
            }
        }
        QuantileSummary::from_buckets(&buckets)
    }

    /// Estimated seconds of simulation left: pending cells × mean cell
    /// time, assuming one simulation stream (divide by your worker count
    /// for fleet ETA). Rounded **up**, so a nonzero backlog with a known
    /// cell timing never reads as "0 s"; 0 until a completed cell
    /// provides a timing (and once the grid is drained).
    pub fn eta_seconds(&self) -> u64 {
        let remaining = (self.status.cells_total - self.status.completed) as u64;
        (remaining as u128 * self.mean_cell_sim_ns() as u128).div_ceil(1_000_000_000) as u64
    }

    /// The machine-readable dashboard document (`watch --once --json`):
    /// byte-identical across polls of an unchanged directory.
    pub fn to_json(&self) -> String {
        let s = &self.status;
        let mut cells = JsonObj::new();
        cells
            .u64("total", s.cells_total as u64)
            .u64("completed", s.completed as u64)
            .u64("leased", s.leased as u64)
            .u64("stale", s.stale as u64)
            .u64("unclaimed", s.unclaimed as u64)
            .u64("duplicates", s.duplicates as u64);
        let mut workers = String::from("[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                workers.push_str(", ");
            }
            let m = w.manifest.clone().unwrap_or_default();
            let mut row = JsonObj::new();
            row.str("worker", &w.worker)
                .u64("completed", w.completed as u64)
                .u64("claims", w.claims as u64)
                .bool("manifest", w.manifest.is_some())
                .u64("cells_done", m.cells_done)
                .u64("bands_done", m.bands_done)
                .u64("records_simulated", m.records_simulated)
                .u64("sim_wall_ns", m.sim_wall_ns)
                .u64("records_per_sec", w.records_per_sec());
            workers.push_str(&row.finish());
        }
        workers.push(']');
        let q = self.cell_sim_quantiles();
        let mut cell_sim = JsonObj::new();
        cell_sim
            .u64("p50", q.p50)
            .u64("p90", q.p90)
            .u64("p99", q.p99)
            .u64("min", q.min)
            .u64("max", q.max)
            .u64("count", q.count);
        let mut aggregate = JsonObj::new();
        aggregate
            .u64("records_simulated", self.records_simulated())
            .u64("sim_wall_ns", self.sim_wall_ns())
            .u64("records_per_sec", self.records_per_sec())
            .u64("mean_cell_sim_ns", self.mean_cell_sim_ns())
            .raw("cell_sim_ns", &cell_sim.finish())
            .u64("eta_seconds", self.eta_seconds());
        let mut doc = JsonObj::new();
        doc.u64("ccsim_obs", OBS_SCHEMA_VERSION)
            .str("kind", "watch")
            .str("campaign", &s.campaign)
            .bool("done", self.done())
            .raw("cells", &cells.finish())
            .raw("workers", &workers)
            .raw("aggregate", &aggregate.finish());
        let mut out = doc.finish();
        out.push('\n');
        out
    }

    /// The human-readable dashboard frame the polling loop prints.
    pub fn render(&self) -> String {
        let s = &self.status;
        let mut out = format!(
            "campaign {}: {}/{} cells — {} leased, {} stale, {} unclaimed",
            s.campaign, s.completed, s.cells_total, s.leased, s.stale, s.unclaimed
        );
        if s.duplicates > 0 {
            out.push_str(&format!(" ({} duplicates)", s.duplicates));
        }
        let mut t = Table::new(
            ["worker", "completed", "claims", "cells_done", "records", "rec/s"]
                .iter()
                .map(|h| (*h).to_owned())
                .collect(),
        );
        for w in &self.workers {
            let m = w.manifest.clone().unwrap_or_default();
            t.row(vec![
                w.worker.clone(),
                w.completed.to_string(),
                w.claims.to_string(),
                m.cells_done.to_string(),
                m.records_simulated.to_string(),
                w.records_per_sec().to_string(),
            ]);
        }
        if !self.workers.is_empty() {
            out.push('\n');
            out.push_str(&t.render());
        }
        let q = self.cell_sim_quantiles();
        out.push_str(&format!(
            "\naggregate: {} records/s, mean cell {} ms (p50 {} / p99 {} ms), eta {} s",
            self.records_per_sec(),
            self.mean_cell_sim_ns() / 1_000_000,
            q.p50 / 1_000_000,
            q.p99 / 1_000_000,
            self.eta_seconds()
        ));
        for l in &s.stale_leases {
            out.push_str(&format!(
                "\nstale lease: {} held by {} (epoch {}, age {}s)",
                l.cell, l.worker, l.epoch, l.age_secs
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_backs_off_and_resets() {
        let mut p = WatchPacing::new(400, 7);
        let d1 = p.idle_delay();
        assert!(d1 >= Duration::from_millis(WatchPacing::MIN_MS));
        assert!(d1 < Duration::from_millis(WatchPacing::MIN_MS + WatchPacing::MIN_MS / 4 + 1));
        // Unchanged polls double toward the cap (jitter ≤ 25%).
        let mut last = d1;
        for _ in 0..6 {
            last = p.idle_delay();
        }
        assert!(last >= Duration::from_millis(400), "reached cap: {last:?}");
        assert!(last <= Duration::from_millis(500), "cap + 25% jitter: {last:?}");
        p.activity();
        assert!(p.idle_delay() < Duration::from_millis(2 * WatchPacing::MIN_MS));
    }

    #[test]
    fn pacing_cap_is_floored() {
        let mut p = WatchPacing::new(1, 0);
        let d = p.idle_delay();
        assert!(d >= Duration::from_millis(WatchPacing::MIN_MS));
    }

    #[test]
    fn fingerprint_tracks_shared_dir_writes() {
        let dir = std::env::temp_dir().join(format!("ccsim_watch_fp_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(crate::leases_dir(&dir)).unwrap();
        let empty = dir_fingerprint(&dir);
        assert_eq!(empty, dir_fingerprint(&dir), "stat-stable dir hashes identically");

        std::fs::write(dir.join("journal.w1.jsonl"), "line\n").unwrap();
        let with_journal = dir_fingerprint(&dir);
        assert_ne!(empty, with_journal, "new top-level file moves the fingerprint");

        std::fs::write(crate::leases_dir(&dir).join("cell-abc.lease"), "w1 1").unwrap();
        assert_ne!(with_journal, dir_fingerprint(&dir), "lease churn moves the fingerprint");

        std::fs::write(dir.join("journal.w1.jsonl"), "line\nline2\n").unwrap();
        assert_ne!(with_journal, dir_fingerprint(&dir), "append moves the fingerprint");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cell_sim_buckets_parses_sparse_pairs() {
        let doc = Json::parse(
            r#"{"histograms": {"campaign_cell_sim_ns": {"count": 3, "sum": 30,
                "buckets": [[4, 2], [10, 1]]}}}"#,
        )
        .unwrap();
        let buckets = cell_sim_buckets(&doc);
        assert_eq!(buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(buckets[4], 2);
        assert_eq!(buckets[10], 1);
        assert_eq!(buckets.iter().sum::<u64>(), 3);
        assert!(cell_sim_buckets(&Json::parse("{}").unwrap()).is_empty());
    }
}
