//! Live campaign dashboard: merge [`DistStatus`] with every worker's
//! telemetry manifest.
//!
//! `ccsim campaign watch` polls this. Each poll is read-only and cheap:
//! journals are merged through a persistent [`MergeCursor`] (completed
//! segments are never re-read), lease files are `stat`ed, and the
//! per-worker `manifest.<worker>.json` documents written by
//! [`crate::run_worker`] (or `manifest.json` for a single-process run)
//! are parsed for throughput and timing.
//!
//! Determinism contract: a [`WatchView`] — including its
//! [`WatchView::to_json`] document — is a pure function of the shared
//! directory's contents. No wall-clock reading enters the view;
//! throughput and ETA derive solely from the manifests'
//! `records_simulated` / `sim_wall_ns` accounting. Polling an unchanged
//! directory therefore yields byte-identical JSON, which is what
//! `tests/obs.rs` pins and what makes `watch --once --json` usable in
//! scripts.

use std::collections::BTreeMap;
use std::path::Path;

use ccsim_campaign::{CampaignSpec, Json, MergeCursor};
use ccsim_core::experiment::Table;
use ccsim_obs::json::JsonObj;
use ccsim_obs::OBS_SCHEMA_VERSION;

use crate::status::{status_with_cursor, DistStatus};

/// Throughput and timing a worker reported in its telemetry manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerManifest {
    /// Cells the worker simulated this run.
    pub cells_done: u64,
    /// Workload bands the worker completed this run.
    pub bands_done: u64,
    /// Engine-records advanced (trace records × cells per band).
    pub records_simulated: u64,
    /// Simulation wall-clock the worker spent, in nanoseconds.
    pub sim_wall_ns: u64,
}

/// One worker row of the dashboard: journal + lease facts from
/// [`DistStatus`] joined with the worker's own manifest (when present).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchWorker {
    /// Worker id (`(solo)` for a single-process run).
    pub worker: String,
    /// Cells journaled by this worker (authoritative, from the merge).
    pub completed: usize,
    /// Lease files this worker currently holds.
    pub claims: usize,
    /// The worker's telemetry manifest; `None` when it has not written
    /// one (pre-telemetry runs, or a crash before the first band).
    pub manifest: Option<WorkerManifest>,
}

impl WatchWorker {
    /// Records per second over this worker's own simulation wall-clock
    /// (0 when no manifest or no time accrued yet).
    pub fn records_per_sec(&self) -> u64 {
        let m = self.manifest.unwrap_or_default();
        per_sec(m.records_simulated, m.sim_wall_ns)
    }
}

/// One poll of the dashboard: campaign progress plus per-worker and
/// aggregate throughput.
#[derive(Debug)]
pub struct WatchView {
    /// Grid progress and lease occupancy.
    pub status: DistStatus,
    /// Per-worker rows, sorted by worker id.
    pub workers: Vec<WatchWorker>,
}

/// Polls a shared campaign directory, carrying a journal merge cursor
/// between polls so each [`Watcher::poll`] reads only what changed.
#[derive(Debug, Default)]
pub struct Watcher {
    cursor: MergeCursor,
}

fn per_sec(records: u64, ns: u64) -> u64 {
    if ns == 0 {
        0
    } else {
        ((records as u128 * 1_000_000_000) / ns as u128) as u64
    }
}

impl Watcher {
    /// A fresh watcher with a cold merge cursor.
    pub fn new() -> Watcher {
        Watcher::default()
    }

    /// Collects one view of `spec` under `shared_dir`.
    ///
    /// # Errors
    ///
    /// Returns a message on invalid specs or conflicting journal
    /// segments. Unparsable or foreign manifest files are skipped, not
    /// errors — a watcher must tolerate mid-write and mixed-version
    /// directories.
    pub fn poll(&mut self, spec: &CampaignSpec, shared_dir: &Path) -> Result<WatchView, String> {
        let status = status_with_cursor(spec, shared_dir, &mut self.cursor)?;
        let manifests = read_manifests(shared_dir, &spec.name, &spec.digest());

        // Join on worker id: status rows first (journal + leases are the
        // authority on progress), then any manifest-only workers (e.g. a
        // worker that died before journaling its first cell).
        let mut workers: BTreeMap<String, WatchWorker> = BTreeMap::new();
        for w in &status.workers {
            workers.insert(
                w.worker.clone(),
                WatchWorker {
                    worker: w.worker.clone(),
                    completed: w.completed,
                    claims: w.claims,
                    manifest: manifests.get(&w.worker).copied(),
                },
            );
        }
        for (worker, manifest) in &manifests {
            workers.entry(worker.clone()).or_insert(WatchWorker {
                worker: worker.clone(),
                completed: 0,
                claims: 0,
                manifest: Some(*manifest),
            });
        }
        Ok(WatchView { status, workers: workers.into_values().collect() })
    }
}

/// Parses every `manifest.json` / `manifest.<worker>.json` under `dir`
/// that matches this campaign and spec digest, keyed by worker id.
fn read_manifests(
    dir: &Path,
    campaign: &str,
    spec_digest: &str,
) -> BTreeMap<String, WorkerManifest> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !(name == "manifest.json" || (name.starts_with("manifest.") && name.ends_with(".json")))
        {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else { continue };
        let Ok(doc) = Json::parse(&text) else { continue };
        let matches = doc.get("ccsim_obs").and_then(Json::as_u64) == Some(OBS_SCHEMA_VERSION)
            && doc.get("kind").and_then(Json::as_str) == Some("manifest")
            && doc.get("campaign").and_then(Json::as_str) == Some(campaign)
            && doc.get("spec").and_then(Json::as_str) == Some(spec_digest);
        if !matches {
            continue;
        }
        let Some(worker) = doc.get("worker").and_then(Json::as_str) else { continue };
        let field = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
        out.insert(
            worker.to_owned(),
            WorkerManifest {
                cells_done: field("cells_done"),
                bands_done: field("bands_done"),
                records_simulated: field("records_simulated"),
                sim_wall_ns: field("sim_wall_ns"),
            },
        );
    }
    out
}

impl WatchView {
    /// Whether the whole grid is journaled — the watch loop's exit
    /// condition.
    pub fn done(&self) -> bool {
        self.status.completed >= self.status.cells_total
    }

    /// Engine-records simulated across all worker manifests.
    pub fn records_simulated(&self) -> u64 {
        self.workers.iter().map(|w| w.manifest.unwrap_or_default().records_simulated).sum()
    }

    /// Simulation wall-clock summed across all worker manifests, in
    /// nanoseconds.
    pub fn sim_wall_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.manifest.unwrap_or_default().sim_wall_ns).sum()
    }

    /// Aggregate records per second over the summed simulation
    /// wall-clock of all workers.
    pub fn records_per_sec(&self) -> u64 {
        per_sec(self.records_simulated(), self.sim_wall_ns())
    }

    /// Mean simulation wall-clock per completed cell, in nanoseconds
    /// (from the manifests' completed-cell timings; 0 until a band
    /// lands).
    pub fn mean_cell_sim_ns(&self) -> u64 {
        let cells: u64 =
            self.workers.iter().map(|w| w.manifest.unwrap_or_default().cells_done).sum();
        self.sim_wall_ns().checked_div(cells).unwrap_or(0)
    }

    /// Estimated seconds of simulation left: pending cells × mean cell
    /// time, assuming one simulation stream (divide by your worker count
    /// for fleet ETA). Rounded **up**, so a nonzero backlog with a known
    /// cell timing never reads as "0 s"; 0 until a completed cell
    /// provides a timing (and once the grid is drained).
    pub fn eta_seconds(&self) -> u64 {
        let remaining = (self.status.cells_total - self.status.completed) as u64;
        (remaining as u128 * self.mean_cell_sim_ns() as u128).div_ceil(1_000_000_000) as u64
    }

    /// The machine-readable dashboard document (`watch --once --json`):
    /// byte-identical across polls of an unchanged directory.
    pub fn to_json(&self) -> String {
        let s = &self.status;
        let mut cells = JsonObj::new();
        cells
            .u64("total", s.cells_total as u64)
            .u64("completed", s.completed as u64)
            .u64("leased", s.leased as u64)
            .u64("stale", s.stale as u64)
            .u64("unclaimed", s.unclaimed as u64)
            .u64("duplicates", s.duplicates as u64);
        let mut workers = String::from("[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                workers.push_str(", ");
            }
            let m = w.manifest.unwrap_or_default();
            let mut row = JsonObj::new();
            row.str("worker", &w.worker)
                .u64("completed", w.completed as u64)
                .u64("claims", w.claims as u64)
                .bool("manifest", w.manifest.is_some())
                .u64("cells_done", m.cells_done)
                .u64("bands_done", m.bands_done)
                .u64("records_simulated", m.records_simulated)
                .u64("sim_wall_ns", m.sim_wall_ns)
                .u64("records_per_sec", w.records_per_sec());
            workers.push_str(&row.finish());
        }
        workers.push(']');
        let mut aggregate = JsonObj::new();
        aggregate
            .u64("records_simulated", self.records_simulated())
            .u64("sim_wall_ns", self.sim_wall_ns())
            .u64("records_per_sec", self.records_per_sec())
            .u64("mean_cell_sim_ns", self.mean_cell_sim_ns())
            .u64("eta_seconds", self.eta_seconds());
        let mut doc = JsonObj::new();
        doc.u64("ccsim_obs", OBS_SCHEMA_VERSION)
            .str("kind", "watch")
            .str("campaign", &s.campaign)
            .bool("done", self.done())
            .raw("cells", &cells.finish())
            .raw("workers", &workers)
            .raw("aggregate", &aggregate.finish());
        let mut out = doc.finish();
        out.push('\n');
        out
    }

    /// The human-readable dashboard frame the polling loop prints.
    pub fn render(&self) -> String {
        let s = &self.status;
        let mut out = format!(
            "campaign {}: {}/{} cells — {} leased, {} stale, {} unclaimed",
            s.campaign, s.completed, s.cells_total, s.leased, s.stale, s.unclaimed
        );
        if s.duplicates > 0 {
            out.push_str(&format!(" ({} duplicates)", s.duplicates));
        }
        let mut t = Table::new(
            ["worker", "completed", "claims", "cells_done", "records", "rec/s"]
                .iter()
                .map(|h| (*h).to_owned())
                .collect(),
        );
        for w in &self.workers {
            let m = w.manifest.unwrap_or_default();
            t.row(vec![
                w.worker.clone(),
                w.completed.to_string(),
                w.claims.to_string(),
                m.cells_done.to_string(),
                m.records_simulated.to_string(),
                w.records_per_sec().to_string(),
            ]);
        }
        if !self.workers.is_empty() {
            out.push('\n');
            out.push_str(&t.render());
        }
        out.push_str(&format!(
            "\naggregate: {} records/s, mean cell {} ms, eta {} s",
            self.records_per_sec(),
            self.mean_cell_sim_ns() / 1_000_000,
            self.eta_seconds()
        ));
        for l in &s.stale_leases {
            out.push_str(&format!(
                "\nstale lease: {} held by {} (epoch {}, age {}s)",
                l.cell, l.worker, l.epoch, l.age_secs
            ));
        }
        out
    }
}
