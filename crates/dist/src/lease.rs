//! Lease files: coordinator-free, crash-healing claims.
//!
//! Every claimable unit of work — a **workload band**
//! ([`band_lease_id`], the worker default: all pending cells sharing a
//! trace, replayed in one pass) or a single grid cell — can be claimed
//! by at most one worker at a time. A claim is a **lease file** —
//! `leases/<id>.lease` under the shared campaign directory — created
//! atomically, carrying the claiming worker's identity, an epoch, and a
//! TTL:
//!
//! ```text
//! {"ccsim_lease":1,"cell":"band:bfs.kron","worker":"host-42",
//!  "epoch":1,"ttl_secs":300}
//! ```
//!
//! # Atomicity
//!
//! Claims never write the lease path directly. The worker writes a
//! uniquely-named temporary file and **hard-links** it to the lease path:
//! `link(2)` fails with `EEXIST` when the path already exists, on local
//! filesystems and on NFS alike (it is the classic NFS-safe lock
//! primitive — unlike `O_EXCL`-create, which older NFS implementations
//! did not make atomic). Exactly one of N racing workers wins; the rest
//! observe the winner's lease.
//!
//! Renewals ([`LeaseGuard::renew`]) replace the file content via
//! write-temp + `rename(2)` — also atomic — refreshing the file mtime
//! that staleness is judged by.
//!
//! # Crash healing
//!
//! A worker that dies stops renewing. Once a lease's mtime is older than
//! its recorded TTL it is **stale**: any worker may remove it and race a
//! fresh claim (remove is idempotent; the subsequent hard-link race again
//! has exactly one winner). The new lease carries `epoch + 1`, making
//! reclaims visible in status output and logs. Staleness compares the
//! *fileserver* mtime against the local clock, so workers on hosts with
//! skewed clocks disagree only by their skew — keep TTLs an order of
//! magnitude above worst-case skew plus cell runtime (see the
//! "Distributed campaigns" runbook in PAPER.md).
//!
//! Because simulation results are a deterministic function of the spec,
//! the one harmful race left — a live-but-slow holder losing its lease
//! and its claimed cells running twice — produces *identical* results,
//! which the journal merge accepts (and counts) rather than corrupt
//! anything.

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use ccsim_campaign::spec::fnv1a64;
use ccsim_campaign::{CampaignGrid, Json, LeaseView};

/// Lease file format version.
const LEASE_VERSION: u64 = 1;

/// The lease id of a **workload band** — all pending cells of one
/// workload, claimed together so the holder can replay the trace once
/// for the whole band ([`ccsim_campaign::AcquiredTrace::simulate_cells`]).
///
/// Band ids live in the same lease namespace as per-cell ids but can
/// never collide with them: cell ids embed `|` separators and workload
/// selectors (suite names or `trace:<path>`) never start with `band:`.
pub fn band_lease_id(workload: &str) -> String {
    format!("band:{workload}")
}

/// The workload a band lease id claims, or `None` for per-cell ids.
pub fn band_workload(id: &str) -> Option<&str> {
    id.strip_prefix("band:")
}

/// Expands a scanned lease map — which may contain band claims — into
/// the per-cell overlay [`ccsim_campaign::Campaign::leases`] expects:
/// a band lease covers every cell of its workload, and a cell-specific
/// lease (from an older per-cell worker or an operator tool) wins over
/// a band expansion for its cell.
pub fn cell_lease_views(
    grid: &CampaignGrid,
    views: &std::collections::BTreeMap<String, LeaseView>,
) -> std::collections::BTreeMap<String, LeaseView> {
    let mut out = std::collections::BTreeMap::new();
    for (id, view) in views {
        if let Some(workload) = band_workload(id) {
            for cell in grid.cells_of(workload) {
                out.insert(cell.id.clone(), view.clone());
            }
        }
    }
    for (id, view) in views {
        if band_workload(id).is_none() {
            out.insert(id.clone(), view.clone());
        }
    }
    out
}

/// A parsed lease file, plus the derived age/staleness at scan time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The claimed lease id: a workload band (`band:<workload>`, the
    /// worker default) or a single cell (`<workload>|<config>|<policy>`).
    pub cell: String,
    /// Claiming worker id.
    pub worker: String,
    /// Claim epoch: 1 for a fresh claim, bumped on every reclaim.
    pub epoch: u64,
    /// TTL the claimer promised to renew within.
    pub ttl_secs: u64,
    /// Seconds since the last write (claim or renewal).
    pub age_secs: u64,
    /// `age_secs > ttl_secs`: the holder is presumed dead.
    pub stale: bool,
}

impl Lease {
    /// The [`LeaseView`] campaign dry-runs overlay on their plan.
    pub fn view(&self) -> LeaseView {
        LeaseView { worker: self.worker.clone(), epoch: self.epoch, stale: self.stale }
    }
}

/// The outcome of a claim attempt.
#[derive(Debug)]
pub enum Claim {
    /// This worker now holds the cell; drop or release the guard to free
    /// it.
    Acquired(LeaseGuard),
    /// Another worker holds a live lease on the cell.
    Held(Lease),
}

/// The `leases/` directory of one shared campaign directory.
#[derive(Debug)]
pub struct LeaseDir {
    root: PathBuf,
}

impl LeaseDir {
    /// Opens (creating if needed) the lease directory at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<LeaseDir> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(LeaseDir { root })
    }

    /// The lease directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The lease-file path of `cell`: a sanitized, length-bounded prefix
    /// for humans plus the FNV-1a hash of the full id for uniqueness
    /// (cell ids contain `|` and, for `trace:` selectors, arbitrary
    /// paths).
    pub fn path_for(&self, cell: &str) -> PathBuf {
        let sanitized: String = cell
            .chars()
            .take(80)
            .map(|c| if c.is_ascii_alphanumeric() || ".-_".contains(c) { c } else { '_' })
            .collect();
        self.root.join(format!("{sanitized}-{:016x}.lease", fnv1a64(cell.as_bytes())))
    }

    /// Attempts to claim `cell` for `worker` with the given TTL.
    ///
    /// A live foreign lease yields [`Claim::Held`]. A stale lease is
    /// removed and re-raced; the winning claim carries the dead lease's
    /// `epoch + 1`.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failures other than losing the claim
    /// race.
    pub fn claim(&self, cell: &str, worker: &str, ttl: Duration) -> Result<Claim, String> {
        let path = self.path_for(cell);
        let mut epoch = 1u64;
        if let Some(existing) = read_lease(&path) {
            if !existing.stale {
                return Ok(Claim::Held(existing));
            }
            // Stale: heal it. Re-read immediately before removing — a
            // peer may have reclaimed (removed + re-linked a fresh
            // lease) since our first read, and removing *that* would
            // strip a live holder. The remaining read→remove window is
            // two adjacent syscalls; a peer lease lost there is caught
            // by its own renew()/release() ownership checks, and the
            // doubly-run cell is deterministic, so merges stay clean.
            epoch = existing.epoch + 1;
            match read_lease(&path) {
                Some(l) if !l.stale => return Ok(Claim::Held(l)),
                _ => {}
            }
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("removing stale lease {}: {e}", path.display())),
            }
        }
        let guard = LeaseGuard {
            dir: self.root.clone(),
            path: path.clone(),
            cell: cell.to_owned(),
            worker: worker.to_owned(),
            epoch,
            ttl_secs: ttl.as_secs(),
            released: false,
        };
        let tmp = guard.write_tmp().map_err(|e| format!("writing lease claim: {e}"))?;
        let linked = std::fs::hard_link(&tmp, &path);
        let _ = std::fs::remove_file(&tmp);
        match linked {
            Ok(()) => Ok(Claim::Acquired(guard)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // Lost the race; report the winner (or a placeholder if
                // its write is still in flight).
                let held = read_lease(&path).unwrap_or(Lease {
                    cell: cell.to_owned(),
                    worker: "?".to_owned(),
                    epoch,
                    ttl_secs: ttl.as_secs(),
                    age_secs: 0,
                    stale: false,
                });
                Ok(Claim::Held(held))
            }
            Err(e) => Err(format!("claiming lease {}: {e}", path.display())),
        }
    }

    /// All leases currently on disk, sorted by cell id — live and stale
    /// alike. Unreadable/torn files are skipped (a claim or renewal is in
    /// flight; the next scan sees them).
    pub fn scan(&self) -> Vec<Lease> {
        let mut leases: Vec<Lease> = match std::fs::read_dir(&self.root) {
            Err(_) => Vec::new(),
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "lease"))
                .filter_map(|p| read_lease(&p))
                .collect(),
        };
        leases.sort_by(|a, b| a.cell.cmp(&b.cell));
        leases
    }

    /// The scan as a lease-id → [`LeaseView`] map. Band claims keep
    /// their `band:<workload>` ids here; expand with
    /// [`cell_lease_views`] before feeding the map to
    /// [`ccsim_campaign::Campaign::leases`] (as `ccsim campaign
    /// --dry-run` does).
    pub fn views(&self) -> std::collections::BTreeMap<String, LeaseView> {
        self.scan().into_iter().map(|l| (l.cell.clone(), l.view())).collect()
    }
}

/// Parses the lease file at `path`, deriving age and staleness from its
/// mtime. `None` for missing, torn or foreign files.
fn read_lease(path: &Path) -> Option<Lease> {
    let text = std::fs::read_to_string(path).ok()?;
    let meta = std::fs::metadata(path).ok()?;
    let age =
        SystemTime::now().duration_since(meta.modified().ok()?).unwrap_or(Duration::ZERO).as_secs();
    let v = Json::parse(text.trim_end()).ok()?;
    if v.get("ccsim_lease").and_then(Json::as_u64) != Some(LEASE_VERSION) {
        return None;
    }
    let ttl_secs = v.get("ttl_secs")?.as_u64()?;
    Some(Lease {
        cell: v.get("cell")?.as_str()?.to_owned(),
        worker: v.get("worker")?.as_str()?.to_owned(),
        epoch: v.get("epoch")?.as_u64()?,
        ttl_secs,
        age_secs: age,
        stale: age > ttl_secs,
    })
}

/// An acquired lease. Dropping (or [`LeaseGuard::release`]-ing) removes
/// the lease file; [`LeaseGuard::renew`] refreshes its mtime so long
/// batches can heartbeat past the TTL.
#[derive(Debug)]
pub struct LeaseGuard {
    dir: PathBuf,
    path: PathBuf,
    cell: String,
    worker: String,
    epoch: u64,
    ttl_secs: u64,
    released: bool,
}

impl LeaseGuard {
    /// The claimed cell id.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// The claim epoch (> 1 means the cell was reclaimed from a stale
    /// holder).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The lease content as a JSON line.
    fn content(&self) -> String {
        Json::obj(vec![
            ("ccsim_lease", Json::int(LEASE_VERSION)),
            ("cell", Json::str(&self.cell)),
            ("worker", Json::str(&self.worker)),
            ("epoch", Json::int(self.epoch)),
            ("ttl_secs", Json::int(self.ttl_secs)),
        ])
        .to_string()
    }

    /// Writes the lease content to a uniquely-named temporary file in the
    /// lease directory and returns its path.
    fn write_tmp(&self) -> std::io::Result<PathBuf> {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".claim-{}-{}-{}.tmp",
            self.worker,
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        std::fs::write(&tmp, format!("{}\n", self.content()))?;
        Ok(tmp)
    }

    /// `true` while the lease file still carries this guard's identity.
    /// `false` means the lease was stolen (a peer judged it stale and
    /// reclaimed it) — the guard must no longer rewrite or remove the
    /// path, or it would strip the new holder.
    fn still_owned(&self) -> bool {
        match read_lease(&self.path) {
            Some(l) => l.worker == self.worker && l.epoch == self.epoch && l.cell == self.cell,
            // Missing or torn: don't clobber whatever is happening.
            None => false,
        }
    }

    /// Heartbeat: atomically rewrites the lease file (write-temp +
    /// rename), refreshing the mtime staleness is judged by. Callable
    /// from a renewal thread while the cell simulates (`&self`). A
    /// lease that was meanwhile stolen by a reclaiming peer is left
    /// untouched (renewing it would clobber the new holder) and
    /// reported as an error.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; reports a stolen lease.
    pub fn renew(&self) -> std::io::Result<()> {
        if !self.still_owned() {
            return Err(std::io::Error::other("lease no longer owned by this guard"));
        }
        let tmp = self.write_tmp()?;
        let renamed = std::fs::rename(&tmp, &self.path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }

    /// Releases the lease, removing its file — only while it is still
    /// ours (a stolen lease belongs to its new holder now).
    pub fn release(mut self) {
        self.released = true;
        if self.still_owned() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl Drop for LeaseGuard {
    fn drop(&mut self) {
        if !self.released && self.still_owned() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_leases(tag: &str) -> LeaseDir {
        let dir = std::env::temp_dir().join(format!("ccsim_lease_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        LeaseDir::open(dir).unwrap()
    }

    const TTL: Duration = Duration::from_secs(300);

    /// Backdates a lease file far past its TTL, simulating a crashed
    /// holder.
    fn expire(dir: &LeaseDir, cell: &str) {
        let f = std::fs::File::options().write(true).open(dir.path_for(cell)).unwrap();
        f.set_modified(SystemTime::now() - Duration::from_secs(100_000)).unwrap();
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let dir = temp_leases("exclusive");
        let g = match dir.claim("w|c|lru", "alpha", TTL).unwrap() {
            Claim::Acquired(g) => g,
            Claim::Held(h) => panic!("fresh cell held by {h:?}"),
        };
        assert_eq!(g.epoch(), 1);
        // A second worker loses the race and learns the holder.
        match dir.claim("w|c|lru", "beta", TTL).unwrap() {
            Claim::Acquired(_) => panic!("double claim"),
            Claim::Held(h) => {
                assert_eq!(h.worker, "alpha");
                assert!(!h.stale);
            }
        }
        // A different cell is independent.
        assert!(matches!(dir.claim("w|c|srrip", "beta", TTL).unwrap(), Claim::Acquired(_)));
        g.release();
        assert!(matches!(dir.claim("w|c|lru", "beta", TTL).unwrap(), Claim::Acquired(_)));
        std::fs::remove_dir_all(dir.root()).unwrap();
    }

    #[test]
    fn dropping_the_guard_releases_like_a_crash_cleanup() {
        let dir = temp_leases("drop");
        {
            let _g = match dir.claim("w|c|lru", "alpha", TTL).unwrap() {
                Claim::Acquired(g) => g,
                Claim::Held(_) => unreachable!(),
            };
        }
        assert!(matches!(dir.claim("w|c|lru", "beta", TTL).unwrap(), Claim::Acquired(_)));
        std::fs::remove_dir_all(dir.root()).unwrap();
    }

    #[test]
    fn stale_lease_is_reclaimed_with_a_bumped_epoch() {
        let dir = temp_leases("stale");
        let g = match dir.claim("w|c|lru", "dead", TTL).unwrap() {
            Claim::Acquired(g) => g,
            Claim::Held(_) => unreachable!(),
        };
        std::mem::forget(g); // the holder "crashes": no release, no renewal
        expire(&dir, "w|c|lru");
        let scanned = dir.scan();
        assert_eq!(scanned.len(), 1);
        assert!(scanned[0].stale);
        assert_eq!(scanned[0].worker, "dead");

        match dir.claim("w|c|lru", "healer", TTL).unwrap() {
            Claim::Acquired(g) => assert_eq!(g.epoch(), 2, "reclaim bumps the epoch"),
            Claim::Held(h) => panic!("stale lease not reclaimed: {h:?}"),
        }
        std::fs::remove_dir_all(dir.root()).unwrap();
    }

    #[test]
    fn renewal_unstales_a_lease() {
        let dir = temp_leases("renew");
        let g = match dir.claim("w|c|lru", "alpha", TTL).unwrap() {
            Claim::Acquired(g) => g,
            Claim::Held(_) => unreachable!(),
        };
        expire(&dir, "w|c|lru");
        assert!(dir.scan()[0].stale);
        g.renew().unwrap();
        let l = &dir.scan()[0];
        assert!(!l.stale, "renewal refreshes the mtime");
        assert_eq!(l.epoch, 1, "renewal keeps the epoch");
        std::fs::remove_dir_all(dir.root()).unwrap();
    }

    #[test]
    fn a_stolen_lease_is_not_renewed_or_released_by_the_old_guard() {
        let dir = temp_leases("stolen");
        let victim = match dir.claim("w|c|lru", "slow", TTL).unwrap() {
            Claim::Acquired(g) => g,
            Claim::Held(_) => unreachable!(),
        };
        // The victim stalls past its TTL; a peer reclaims.
        expire(&dir, "w|c|lru");
        let thief = match dir.claim("w|c|lru", "thief", TTL).unwrap() {
            Claim::Acquired(g) => g,
            Claim::Held(h) => panic!("stale lease not reclaimed: {h:?}"),
        };
        assert_eq!(thief.epoch(), 2);

        // The slow victim wakes up: its renew must refuse (rewriting
        // would clobber the thief), and releasing/dropping its guard
        // must leave the thief's live lease in place.
        assert!(victim.renew().is_err(), "renewing a stolen lease must fail");
        victim.release();
        let left = dir.scan();
        assert_eq!(left.len(), 1, "thief's lease survives the victim's release");
        assert_eq!(left[0].worker, "thief");
        assert_eq!(left[0].epoch, 2);
        thief.release();
        assert!(dir.scan().is_empty());
        std::fs::remove_dir_all(dir.root()).unwrap();
    }

    #[test]
    fn views_expose_cells_for_dry_run_overlays() {
        let dir = temp_leases("views");
        let selector = "trace:/data/some path/t.champsim|llc_x1|lru";
        let _g = match dir.claim(selector, "alpha", TTL).unwrap() {
            Claim::Acquired(g) => g,
            Claim::Held(_) => unreachable!(),
        };
        let views = dir.views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[selector].worker, "alpha");
        assert!(!views[selector].stale, "sanitized path still maps back to the full cell id");
        std::fs::remove_dir_all(dir.root()).unwrap();
    }

    #[test]
    fn band_ids_round_trip_and_expand_to_per_cell_views() {
        assert_eq!(band_lease_id("xsbench.small"), "band:xsbench.small");
        assert_eq!(band_workload("band:xsbench.small"), Some("xsbench.small"));
        assert_eq!(band_workload("xsbench.small|llc_x1|lru"), None);

        let spec = ccsim_campaign::CampaignSpec::from_json_str(
            r#"{"name": "b", "base_config": "tiny",
                "workloads": ["xsbench.small", "spec.stack"],
                "policies": ["lru", "srrip"]}"#,
        )
        .unwrap();
        let grid = ccsim_campaign::Campaign::new(spec).grid().unwrap();
        let mut views = std::collections::BTreeMap::new();
        views.insert(
            band_lease_id("xsbench.small"),
            LeaseView { worker: "w1".into(), epoch: 2, stale: false },
        );
        views.insert(
            "spec.stack|llc_x1|lru".to_owned(),
            LeaseView { worker: "w2".into(), epoch: 1, stale: true },
        );
        // A cell-specific lease inside a banded workload wins its cell.
        views.insert(
            "xsbench.small|llc_x1|srrip".to_owned(),
            LeaseView { worker: "w3".into(), epoch: 1, stale: false },
        );
        let cells = cell_lease_views(&grid, &views);
        assert_eq!(cells.len(), 3, "band covers 2 cells, plus the foreign cell lease");
        assert_eq!(cells["xsbench.small|llc_x1|lru"].worker, "w1");
        assert_eq!(cells["xsbench.small|llc_x1|lru"].epoch, 2);
        assert_eq!(cells["xsbench.small|llc_x1|srrip"].worker, "w3");
        assert_eq!(cells["spec.stack|llc_x1|lru"].worker, "w2");
        assert!(cells["spec.stack|llc_x1|lru"].stale);
    }

    #[test]
    fn concurrent_claims_have_exactly_one_winner() {
        let dir = temp_leases("race");
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..8 {
                let (dir, winners) = (&dir, &winners);
                s.spawn(move || {
                    let worker = format!("w{i}");
                    if let Claim::Acquired(g) = dir.claim("w|c|lru", &worker, TTL).unwrap() {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        std::mem::forget(g); // keep the lease until the end
                    }
                });
            }
        });
        assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(dir.scan().len(), 1);
        std::fs::remove_dir_all(dir.root()).unwrap();
    }
}
