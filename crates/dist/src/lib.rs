//! # ccsim-dist
//!
//! Coordinator-free **distributed campaign execution**: N worker
//! processes — on one host or many hosts sharing a filesystem — drain
//! one campaign's pending cells cooperatively, with crash healing and
//! byte-identical report assembly.
//!
//! The paper's characterization sweeps (policies × LLC configs ×
//! workloads) are embarrassingly parallel, and big-data-scale inputs
//! (multi-GB ingested traces, full-suite grids) exceed what one box
//! turns around interactively. This crate shards those grids with **no
//! coordinator, no network protocol and no new state**: everything rides
//! on the campaign journal and a directory of lease files.
//!
//! * [`lease`] — atomic, TTL'd claims (`leases/<id>.lease`, hard-link
//!   creation, mtime-based staleness, epoch-bumped reclaims). Workers
//!   claim **workload bands** (`band:<workload>` — every pending cell
//!   sharing a trace) so each claim is one one-pass replay; per-cell
//!   ids share the same machinery;
//! * [`worker`] — the claim-band → simulate-in-one-pass → journal →
//!   release loop behind `ccsim campaign worker`, with contention
//!   backoff and a lease heartbeat; each worker writes its own journal
//!   segment (`journal.<worker>.jsonl`), so concurrent appends can
//!   never interleave, and each band cell is journaled individually, so
//!   a reclaimed band resumes from the dead holder's last journaled
//!   cell;
//! * [`assemble`] — merges any worker set's partial journals into the
//!   same byte-identical report a single-process run produces, failing
//!   loudly on conflicts or an unfinished grid;
//! * [`status`] — a read-only progress snapshot: per-worker
//!   contributions, live claims, stale leases;
//! * [`watch`] — the polling dashboard behind `ccsim campaign watch`:
//!   [`status`] joined with every worker's telemetry manifest
//!   (throughput, cell timings, ETA), incremental via a journal
//!   [`ccsim_campaign::MergeCursor`] so polls never re-read completed
//!   segments.
//!
//! The shared trace cache (`trace-cache/`) is content-addressed
//! (digest-keyed filenames, tmp-file + atomic-rename writes), so workers
//! racing to convert the same trace are benign and the directory is
//! rsync/NFS-safe.
//!
//! # Shared directory layout
//!
//! ```text
//! <shared>/
//!   leases/<id>-<hash>.lease     live claims, band or per-cell
//!                                (TTL'd, crash-healing)
//!   journal.<worker>.jsonl       one append-only segment per worker
//!   obs.<worker>.jsonl           per-worker telemetry event log
//!   manifest.<worker>.json       per-worker telemetry manifest
//!                                (rewritten atomically after each band)
//!   trace-cache/*.cctr           content-addressed shared traces
//! ```
//!
//! # Example
//!
//! ```
//! use ccsim_campaign::CampaignSpec;
//! use ccsim_dist::{assemble, run_worker, WorkerOptions};
//!
//! let spec = CampaignSpec::from_json_str(r#"{
//!     "name": "demo", "base_config": "tiny",
//!     "workloads": ["xsbench.small"], "policies": ["lru", "srrip"]
//! }"#).unwrap();
//! let shared = std::env::temp_dir().join(format!("ccsim_dist_doc_{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&shared);
//! let outcome = run_worker(&spec, &shared, &WorkerOptions::new("w1")).unwrap();
//! assert!(outcome.campaign_done);
//! let assembled = assemble(&spec, &shared).unwrap();
//! assert_eq!(assembled.report.cells.len(), 2);
//! # std::fs::remove_dir_all(&shared).unwrap();
//! ```

#![warn(missing_docs)]

pub mod assemble;
pub mod lease;
pub mod status;
pub mod watch;
pub mod worker;

pub use assemble::{assemble, AssembleOutcome};
pub use lease::{
    band_lease_id, band_workload, cell_lease_views, Claim, Lease, LeaseDir, LeaseGuard,
};
pub use status::{status, status_with_cursor, DistStatus, WorkerStatus};
pub use watch::{dir_fingerprint, WatchPacing, WatchView, WatchWorker, Watcher, WorkerManifest};
pub use worker::{default_worker_id, run_worker, sanitize_worker_id, WorkerOptions, WorkerOutcome};

use std::path::{Path, PathBuf};

/// The lease directory under a shared campaign directory.
pub fn leases_dir(shared_dir: &Path) -> PathBuf {
    shared_dir.join("leases")
}

/// The shared trace-cache directory under a shared campaign directory.
pub fn trace_cache_dir(shared_dir: &Path) -> PathBuf {
    shared_dir.join("trace-cache")
}
