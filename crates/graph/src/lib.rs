//! # ccsim-graph
//!
//! The graph-processing substrate of the ccsim characterization suite:
//! CSR/CSC graph structures (the paper's Figure 1 layout), synthetic
//! generators standing in for the GAP input graphs, and the six GAP
//! benchmark kernels in two forms — reference implementations
//! ([`kernels`]) and instrumented versions ([`traced`]) that execute
//! through a [`ccsim_trace::TraceArena`] and capture every OA/NA/PA access
//! as a trace record.
//!
//! # Example
//!
//! ```
//! use ccsim_graph::{generators::kronecker, traced};
//!
//! let g = kronecker(10, 8, 42);
//! let (trace, parents) = traced::bfs(&g, 0);
//! println!("bfs touched {} blocks over {} memory ops",
//!          ccsim_trace::stats::TraceStats::compute(&trace).footprint_blocks,
//!          trace.len());
//! assert_eq!(parents.len(), g.num_vertices() as usize);
//! ```

#![warn(missing_docs)]

mod csr;
pub mod generators;
pub mod kernels;
pub mod traced;

pub use csr::Graph;
