//! Kronecker (R-MAT) graphs with Graph500 parameters (the GAP `kron`
//! input).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// R-MAT edge-quadrant probabilities used by Graph500 and GAP's `kron`:
/// A = 0.57, B = 0.19, C = 0.19 (D implied 0.05).
const A: f64 = 0.57;
/// Upper-right quadrant probability.
const B: f64 = 0.19;
/// Lower-left quadrant probability.
const C: f64 = 0.19;

/// Generates a Kronecker graph with `2^scale` vertices and
/// `edge_factor * n` undirected edges by recursive R-MAT quadrant descent.
/// Produces the heavy-tailed degree distribution with large hubs that
/// characterizes `kron`.
pub fn kronecker(scale: u32, edge_factor: u32, seed: u64) -> Graph {
    assert!(scale <= 28, "scale {scale} unreasonably large for simulation");
    let n = 1u32 << scale;
    let m = n as u64 * edge_factor as u64 / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < A {
                // upper-left: no bits set
            } else if r < A + B {
                v |= 1;
            } else if r < A + B + C {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_hubs() {
        let g = kronecker(12, 16, 1);
        let n = g.num_vertices();
        let max = (0..n).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / n as f64;
        assert!(max as f64 > 10.0 * avg, "kron should have hubs: max {max}, avg {avg:.1}");
    }

    #[test]
    fn has_isolated_or_low_degree_tail() {
        let g = kronecker(12, 16, 2);
        let low = (0..g.num_vertices()).filter(|&v| g.degree(v) <= 1).count();
        assert!(
            low > g.num_vertices() as usize / 20,
            "kron's skew should leave many near-isolated vertices, got {low}"
        );
    }
}
