//! Web-crawl-like graphs (the GAP `web` input, sk-2005).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// Web crawls are power-law graphs with one crucial extra property: *host
/// locality* — pages link overwhelmingly within their own site, and crawl
/// ordering assigns neighbouring ids to same-site pages. We model hosts as
/// contiguous id blocks of geometric size; each edge stays within its host
/// with probability 0.8 and otherwise targets a power-law-sampled global
/// vertex. The result keeps `web`'s signature: skewed degrees *and* much
/// better spatial locality than twitter-class graphs.
pub fn web(scale: u32, avg_degree: u32, seed: u64) -> Graph {
    assert!(scale <= 28, "scale {scale} unreasonably large for simulation");
    let n = 1u32 << scale;
    let m = n as u64 * avg_degree as u64 / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    // Host boundaries: geometric sizes between 16 and 4096 pages.
    let mut hosts = Vec::new();
    let mut start = 0u32;
    while start < n {
        let size = 16u32 << rng.gen_range(0..9); // 16..=4096
        let end = (start + size).min(n);
        hosts.push((start, end));
        start = end;
    }
    // Global power-law weight for cross-host links (gamma ~ 2.1).
    let mut cum = Vec::with_capacity(n as usize);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += ((i + 10) as f64).powf(-1.0 / 1.1);
        cum.push(acc);
    }
    let total = acc;
    let global = |rng: &mut StdRng| -> u32 {
        let t: f64 = rng.gen::<f64>() * total;
        match cum.binary_search_by(|c| c.partial_cmp(&t).expect("finite")) {
            Ok(i) => i as u32,
            Err(i) => (i as u32).min(n - 1),
        }
    };
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let h = rng.gen_range(0..hosts.len());
        let (lo, hi) = hosts[h];
        let u = rng.gen_range(lo..hi);
        let v = if rng.gen::<f64>() < 0.8 {
            rng.gen_range(lo..hi) // intra-host link
        } else {
            global(&mut rng)
        };
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_edges_are_short_range() {
        let g = web(12, 12, 1);
        let n = g.num_vertices();
        let mut near = 0u64;
        let mut far = 0u64;
        for v in 0..n {
            for &u in g.neighbors(v) {
                if (u as i64 - v as i64).unsigned_abs() < 4096 {
                    near += 1;
                } else {
                    far += 1;
                }
            }
        }
        assert!(near > 2 * far, "web should be locality-dominated: near={near} far={far}");
    }

    #[test]
    fn still_has_degree_skew() {
        let g = web(12, 12, 2);
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        let max = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(max as f64 > 5.0 * avg, "web keeps hubs: max {max}, avg {avg:.1}");
    }
}
