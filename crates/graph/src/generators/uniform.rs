//! Uniform random graphs (the GAP `urand` input).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// Erdős–Rényi-style graph: `2^scale` vertices, `avg_degree/2 * n`
/// undirected edges with uniformly random endpoints. Degree is tightly
/// concentrated and there is no locality whatsoever — the worst case for
/// any cache.
pub fn uniform(scale: u32, avg_degree: u32, seed: u64) -> Graph {
    assert!(scale <= 28, "scale {scale} unreasonably large for simulation");
    let n = 1u32 << scale;
    let undirected_edges = (n as u64 * avg_degree as u64 / 2) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(undirected_edges);
    for _ in 0..undirected_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_close_to_requested() {
        let g = uniform(12, 16, 3);
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        // Undirected edges doubled; duplicates/self-loops shave a little.
        assert!((14.0..=16.5).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn degrees_are_concentrated() {
        let g = uniform(12, 16, 4);
        let max = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(max < 64, "uniform graph should have no hubs, max degree {max}");
    }
}
