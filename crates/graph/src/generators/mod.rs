//! Synthetic graph generators standing in for the GAP input graphs.
//!
//! The real GAP inputs are multi-gigabyte downloads (twitter: 61 M
//! vertices / 1.5 B edges; friendster even larger). We generate scaled
//! graphs that preserve each input's *class* — the properties that drive
//! cache behaviour:
//!
//! | GAP input | Class | Generator |
//! |-----------|-------|-----------|
//! | `urand` | uniform random (Erdős–Rényi) | [`uniform`] |
//! | `kron` | Kronecker/R-MAT power law (Graph500 A=.57 B=.19 C=.19) | [`kronecker`] |
//! | `road` | high-diameter, constant low degree | [`road`] |
//! | `twitter` | heavy power law, no locality | [`power_law`] |
//! | `friendster`| power law, higher average degree | [`power_law`] |
//! | `web` | power law with host-clustered locality | [`web`] |

mod kronecker;
mod powerlaw;
mod road;
mod uniform;
mod web;

pub use kronecker::kronecker;
pub use powerlaw::power_law;
pub use road::road;
pub use uniform::uniform;
pub use web::web;

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared sanity: every generator produces a verified graph with a
    /// plausible edge count.
    #[test]
    fn all_generators_verify() {
        let graphs = [
            ("uniform", uniform(10, 8, 1)),
            ("kronecker", kronecker(10, 8, 2)),
            ("road", road(10, 3)),
            ("power_law", power_law(10, 8, 1.8, 4)),
            ("web", web(10, 8, 5)),
        ];
        for (name, g) in graphs {
            g.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(g.num_vertices(), 1024, "{name}");
            assert!(g.num_edges() > 1024, "{name} too sparse: {}", g.num_edges());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform(8, 4, 9), uniform(8, 4, 9));
        assert_eq!(kronecker(8, 4, 9), kronecker(8, 4, 9));
        assert_eq!(power_law(8, 4, 2.0, 9), power_law(8, 4, 2.0, 9));
        assert_eq!(web(8, 4, 9), web(8, 4, 9));
        assert_eq!(road(8, 1), road(8, 1));
    }

    #[test]
    fn seeds_change_structure() {
        assert_ne!(uniform(8, 4, 1), uniform(8, 4, 2));
        assert_ne!(kronecker(8, 4, 1), kronecker(8, 4, 2));
    }
}
