//! Road-network-like graphs (the GAP `road` input).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// A road-like graph: a sqrt(n) x sqrt(n) grid (degree ~4) with a sprinkle
/// of diagonal shortcuts, yielding the constant low degree and enormous
/// diameter of road networks — the one GAP input whose frontier stays tiny
/// and whose working set exhibits real locality.
pub fn road(scale: u32, seed: u64) -> Graph {
    assert!(scale % 2 == 0 || scale <= 28, "scale {scale} unreasonable");
    let n = 1u32 << scale;
    let side = 1u32 << (scale / 2);
    let side_y = n / side;
    let idx = |x: u32, y: u32| y * side + x;
    let mut edges = Vec::with_capacity(2 * n as usize);
    for y in 0..side_y {
        for x in 0..side {
            if x + 1 < side {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < side_y {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    // ~2% diagonal shortcuts model highways/bridges.
    let mut rng = StdRng::seed_from_u64(seed);
    let shortcuts = n / 50;
    for _ in 0..shortcuts {
        let x = rng.gen_range(0..side.saturating_sub(1));
        let y = rng.gen_range(0..side_y.saturating_sub(1));
        edges.push((idx(x, y), idx(x + 1, y + 1)));
    }
    Graph::from_edges(n, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_is_constant_and_small() {
        let g = road(12, 1);
        let max = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max <= 8, "road max degree {max}");
        assert!((3.0..=4.6).contains(&avg), "road avg degree {avg}");
    }

    #[test]
    fn is_connected_enough_for_bfs() {
        // A BFS from vertex 0 must reach nearly everything (grid is
        // connected; shortcuts only add edges).
        let g = road(10, 2);
        let n = g.num_vertices() as usize;
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(count, n, "grid must be fully connected");
    }
}
