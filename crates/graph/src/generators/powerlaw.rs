//! Chung–Lu power-law graphs (the GAP `twitter` / `friendster` inputs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// Generates a Chung–Lu random graph with `2^scale` vertices whose expected
/// degree sequence follows a power law with exponent `gamma` and the given
/// average degree: vertex `i` gets weight `(i + i0)^(-1/(gamma - 1))`,
/// normalized, and `avg_degree * n / 2` undirected edges are sampled with
/// probability proportional to the endpoint weight product.
///
/// `gamma ~ 1.8-2.2` reproduces social-network skew (twitter/friendster):
/// a few celebrity hubs adjacent to a large fraction of all vertices.
pub fn power_law(scale: u32, avg_degree: u32, gamma: f64, seed: u64) -> Graph {
    assert!(scale <= 28, "scale {scale} unreasonably large for simulation");
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let n = 1u32 << scale;
    let m = n as u64 * avg_degree as u64 / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative weight table for inverse-CDF endpoint sampling.
    let exponent = -1.0 / (gamma - 1.0);
    let mut cum = Vec::with_capacity(n as usize);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += ((i + 10) as f64).powf(exponent);
        cum.push(acc);
    }
    let total = acc;
    let sample = |rng: &mut StdRng| -> u32 {
        let t: f64 = rng.gen::<f64>() * total;
        match cum.binary_search_by(|c| c.partial_cmp(&t).expect("finite")) {
            Ok(i) => i as u32,
            Err(i) => (i as u32).min(n - 1),
        }
    };
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_vertices_are_hubs() {
        let g = power_law(12, 16, 1.9, 1);
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        let head_max = (0..10).map(|v| g.degree(v)).max().unwrap();
        assert!(
            head_max as f64 > 20.0 * avg,
            "low-id vertices should be hubs: max {head_max}, avg {avg:.1}"
        );
    }

    #[test]
    fn tail_is_sparse() {
        let g = power_law(12, 16, 1.9, 2);
        let n = g.num_vertices();
        let tail_avg: f64 = (n - 1000..n).map(|v| g.degree(v) as f64).sum::<f64>() / 1000.0;
        let avg = g.num_edges() as f64 / n as f64;
        assert!(tail_avg < avg, "tail should be below average: {tail_avg} vs {avg}");
    }

    #[test]
    #[should_panic(expected = "power-law exponent must exceed 1")]
    fn gamma_validated() {
        let _ = power_law(8, 4, 0.9, 1);
    }
}
