//! Instrumented delta-stepping SSSP.

use ccsim_trace::{Trace, TraceArena};

use crate::kernels::INF;
use crate::traced::TracedCsr;
use crate::Graph;

/// Traced delta-stepping SSSP from `source`. Returns the trace and the
/// distance array (identical to [`crate::kernels::sssp`]).
///
/// Bucket contents are stored in a traced scratch region sized `4 * n`
/// slots, modelling GAP's bucket vectors: pushes are stores, pops are
/// loads. Bucket *bookkeeping* (lengths, indices) stays in registers, as
/// it does in the real implementation.
pub fn sssp(g: &Graph, source: u32, delta: u32) -> (Trace, Vec<u32>) {
    assert!(delta > 0, "delta must be positive");
    assert!(g.weights().is_some(), "sssp requires an edge-weighted graph");
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");
    let arena = TraceArena::new("sssp");
    let csr = TracedCsr::new(&arena, g);
    let s_dist_rd = arena.code_site();
    let s_dist_wr = arena.code_site();
    let s_bucket_rd = arena.code_site();
    let s_bucket_wr = arena.code_site();

    let mut dist = arena.vec_of(vec![INF; n]);
    // Traced bucket slab: a rotating scratch region modelling the memory
    // traffic of GAP's bucket vectors. The vertex is also carried in the
    // untraced bucket index so slab wrap-around cannot corrupt results —
    // the slab load/store is pure traffic, its *address* is what matters.
    let slab_cap = 4 * n;
    let mut slab = arena.vec_of(vec![0u32; slab_cap]);
    let mut slab_cursor = 0usize;
    // Untraced bucket index: per bucket, (slab position, vertex).
    let mut buckets: Vec<Vec<(usize, u32)>> = vec![Vec::new()];

    let push = |slab: &mut ccsim_trace::TracedVec<'_, u32>,
                buckets: &mut Vec<Vec<(usize, u32)>>,
                cursor: &mut usize,
                b: usize,
                v: u32| {
        if b >= buckets.len() {
            buckets.resize_with(b + 1, Vec::new);
        }
        let pos = *cursor % slab_cap;
        *cursor += 1;
        slab.set(s_bucket_wr, pos, v);
        buckets[b].push((pos, v));
    };

    dist.set(s_dist_wr, source as usize, 0);
    push(&mut slab, &mut buckets, &mut slab_cursor, 0, source);

    let mut next_bucket = 0usize;
    while next_bucket < buckets.len() {
        while let Some((pos, u)) = buckets[next_bucket].pop() {
            arena.work(6);
            let _ = slab.get(s_bucket_rd, pos);
            let du = dist.get(s_dist_rd, u as usize);
            if du == INF || (du / delta) as usize != next_bucket {
                continue; // stale entry
            }
            let (lo, hi) = csr.bounds(u);
            for k in lo..hi {
                arena.work(7);
                let v = csr.neighbor(k);
                let w = csr.weight(k);
                let nd = du.saturating_add(w);
                if nd < dist.get(s_dist_rd, v as usize) {
                    dist.set(s_dist_wr, v as usize, nd);
                    push(&mut slab, &mut buckets, &mut slab_cursor, (nd / delta) as usize, v);
                }
            }
        }
        next_bucket += 1;
    }

    let result = dist.into_inner();
    drop(slab);
    drop(csr);
    (arena.finish(), result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{road, uniform};
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn matches_dijkstra() {
        for seed in 0..3 {
            let g = uniform(9, 6, seed).with_random_weights(64, 7);
            let (_, traced) = sssp(&g, 0, 16);
            assert_eq!(traced, crate::kernels::dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn grid_distances_match() {
        let g = road(10, 2).with_random_weights(32, 9);
        let (_, traced) = sssp(&g, 5, 8);
        assert_eq!(traced, crate::kernels::dijkstra(&g, 5));
    }

    #[test]
    fn weight_loads_present_in_trace() {
        let g = uniform(8, 8, 1).with_random_weights(64, 3);
        let (trace, _) = sssp(&g, 0, 16);
        let stats = TraceStats::compute(&trace);
        // OA/NA/W + dist r/w + bucket r/w sites.
        assert!(stats.distinct_pcs >= 6 && stats.distinct_pcs <= 8, "pcs {}", stats.distinct_pcs);
    }
}
