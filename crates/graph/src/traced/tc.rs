//! Instrumented triangle counting.

use ccsim_trace::{Trace, TraceArena};

use crate::traced::TracedCsr;
use crate::Graph;

/// Traced triangle counting by ordered adjacency merging. Returns the
/// trace and the triangle count (identical to
/// [`crate::kernels::triangle_count`]).
///
/// TC is by far the most edge-intensive GAP kernel (quadratic in hub
/// degree); callers control cost through the graph scale.
pub fn triangle_count(g: &Graph) -> (Trace, u64) {
    let arena = TraceArena::new("tc");
    let csr = TracedCsr::new(&arena, g);
    let mut count = 0u64;
    for u in 0..g.num_vertices() {
        let (ulo, uhi) = csr.bounds(u);
        for k in ulo..uhi {
            arena.work(7);
            let v = csr.neighbor(k);
            if v <= u {
                continue;
            }
            let (vlo, vhi) = csr.bounds(v);
            // Sorted merge of NA[ulo..uhi] and NA[vlo..vhi], floor v.
            let (mut i, mut j) = (ulo, vlo);
            while i < uhi && j < vhi {
                arena.work(6);
                let x = csr.neighbor(i);
                let y = csr.neighbor(j);
                if x <= v {
                    i += 1;
                } else if y <= v {
                    j += 1;
                } else if x == y {
                    count += 1;
                    i += 1;
                    j += 1;
                } else if x < y {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    drop(csr);
    (arena.finish(), count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{kronecker, uniform};
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn matches_reference() {
        for seed in 0..3 {
            let g = uniform(8, 8, seed);
            let (_, traced) = triangle_count(&g);
            assert_eq!(traced, crate::kernels::triangle_count(&g), "seed {seed}");
        }
    }

    #[test]
    fn kron_has_many_triangles() {
        let g = kronecker(10, 8, 2);
        let (trace, count) = triangle_count(&g);
        assert!(count > 100, "kron triangles {count}");
        // TC's trace is NA-dominated: almost everything is the NA site.
        let stats = TraceStats::compute(&trace);
        assert!(stats.distinct_pcs <= 3, "pcs {}", stats.distinct_pcs);
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // Star graphs are triangle-free.
        let edges: Vec<(u32, u32)> = (1..32u32).map(|v| (0, v)).collect();
        let g = Graph::from_edges(32, &edges, true);
        let (_, traced) = triangle_count(&g);
        assert_eq!(traced, 0);
    }
}
