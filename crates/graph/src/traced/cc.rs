//! Instrumented Shiloach–Vishkin connected components.

use ccsim_trace::{Trace, TraceArena};

use crate::traced::TracedCsr;
use crate::Graph;

/// Traced Shiloach–Vishkin connected components. Returns the trace and the
/// component labels (identical to [`crate::kernels::connected_components`]).
pub fn connected_components(g: &Graph) -> (Trace, Vec<u32>) {
    let n = g.num_vertices();
    let arena = TraceArena::new("cc");
    let csr = TracedCsr::new(&arena, g);
    let s_comp_rd = arena.code_site();
    let s_comp_wr = arena.code_site();
    let s_jump_rd = arena.code_site();

    // 64-bit labels (GAP int64 build): doubles the comp footprint.
    let mut comp = arena.vec_of((0..n as u64).collect::<Vec<u64>>());
    loop {
        let mut changed = false;
        for u in 0..n {
            let (lo, hi) = csr.bounds(u);
            for k in lo..hi {
                arena.work(7);
                let v = csr.neighbor(k);
                let cu = comp.get(s_comp_rd, u as usize);
                let cv = comp.get(s_comp_rd, v as usize);
                if cu < cv && cv == comp.get(s_comp_rd, cv as usize) {
                    comp.set(s_comp_wr, cv as usize, cu);
                    changed = true;
                }
            }
        }
        for v in 0..n {
            arena.work(7);
            let mut c = comp.get(s_jump_rd, v as usize);
            loop {
                let parent = comp.get(s_jump_rd, c as usize);
                if parent == c {
                    break;
                }
                arena.work(2);
                c = parent;
            }
            comp.set(s_comp_wr, v as usize, c);
        }
        if !changed {
            break;
        }
    }

    let result: Vec<u32> = comp.into_inner().into_iter().map(|c| c as u32).collect();
    drop(csr);
    (arena.finish(), result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{kronecker, uniform};
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn matches_reference() {
        for seed in 0..3 {
            let g = uniform(9, 3, seed);
            let (_, traced) = connected_components(&g);
            let reference = crate::kernels::connected_components(&g);
            assert_eq!(traced, reference, "seed {seed}");
        }
    }

    #[test]
    fn skewed_graph_labels_consistent() {
        let g = kronecker(10, 8, 1);
        let (_, traced) = connected_components(&g);
        // Every edge's endpoints share a label.
        for u in 0..g.num_vertices() {
            for &v in g.neighbors(u) {
                assert_eq!(traced[u as usize], traced[v as usize]);
            }
        }
    }

    #[test]
    fn comp_array_dominates_pc_footprint() {
        let g = uniform(10, 8, 4);
        let (trace, _) = connected_components(&g);
        let stats = TraceStats::compute(&trace);
        assert!(stats.distinct_pcs <= 6, "pcs {}", stats.distinct_pcs);
        assert!(stats.max_blocks_per_pc > 50, "comp chasing footprint");
    }
}
