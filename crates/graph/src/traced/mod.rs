//! Instrumented GAP kernels: the same algorithms as [`crate::kernels`],
//! executed through a [`TraceArena`] so that every load and store of the
//! graph's data structures — the Offset Array (OA), Neighbours Array (NA)
//! and Property Arrays (PA) of the paper's Figure 1 — is recorded with a
//! static pseudo-PC per source access site.
//!
//! Each kernel returns both its *result* (verified against the reference
//! implementation by the test suite) and the captured
//! [`Trace`](ccsim_trace::Trace). The small
//! number of distinct code sites per kernel (5-12) is not a modelling
//! shortcut: compiled GAP kernels genuinely concentrate their memory
//! traffic in a handful of instructions, which is the paper's central
//! explanation for why PC-correlating policies fail on them.

mod bc;
mod bfs;
mod cc;
mod pr;
mod sssp;
mod tc;

pub use bc::betweenness;
pub use bfs::bfs;
pub use cc::connected_components;
pub use pr::pagerank;
pub use sssp::sssp;
pub use tc::triangle_count;

use ccsim_trace::{Pc, TraceArena, TracedVec};

use crate::Graph;

/// A CSR graph laid out in a trace arena: loads of OA/NA/weights are
/// recorded at dedicated code sites.
#[derive(Debug)]
pub struct TracedCsr<'a> {
    arena: &'a TraceArena,
    oa: TracedVec<'a, u64>,
    na: TracedVec<'a, u32>,
    weights: Option<TracedVec<'a, u32>>,
    s_oa: Pc,
    s_na: Pc,
    s_w: Pc,
}

impl<'a> TracedCsr<'a> {
    /// Copies `g`'s CSR arrays into `arena`.
    pub fn new(arena: &'a TraceArena, g: &Graph) -> Self {
        TracedCsr {
            arena,
            oa: arena.vec_of(g.raw_offsets().to_vec()),
            na: arena.vec_of(g.raw_neighbors().to_vec()),
            weights: g.weights().map(|w| arena.vec_of(w.to_vec())),
            s_oa: arena.code_site(),
            s_na: arena.code_site(),
            s_w: arena.code_site(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.oa.len() - 1) as u32
    }

    /// Loads the NA index range of `v`'s adjacency list (two OA loads plus
    /// index arithmetic).
    #[inline]
    pub fn bounds(&self, v: u32) -> (usize, usize) {
        self.arena.work(2);
        let lo = self.oa.get(self.s_oa, v as usize);
        let hi = self.oa.get(self.s_oa, v as usize + 1);
        (lo as usize, hi as usize)
    }

    /// Loads the neighbour at NA position `k`.
    #[inline]
    pub fn neighbor(&self, k: usize) -> u32 {
        self.na.get(self.s_na, k)
    }

    /// Loads the edge weight at NA position `k`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is unweighted.
    #[inline]
    pub fn weight(&self, k: usize) -> u32 {
        self.weights.as_ref().expect("graph has no weights").get(self.s_w, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn traced_csr_reads_match_graph() {
        let g = uniform(8, 6, 1);
        let arena = TraceArena::new("t");
        let tg = TracedCsr::new(&arena, &g);
        for v in [0u32, 7, 100] {
            let (lo, hi) = tg.bounds(v);
            let ns: Vec<u32> = (lo..hi).map(|k| tg.neighbor(k)).collect();
            assert_eq!(ns, g.neighbors(v), "vertex {v}");
        }
        drop(tg);
        assert!(!arena.finish().is_empty());
    }

    #[test]
    fn oa_and_na_use_distinct_sites() {
        let g = uniform(6, 4, 2);
        let arena = TraceArena::new("t");
        let tg = TracedCsr::new(&arena, &g);
        let (lo, hi) = tg.bounds(0);
        for k in lo..hi {
            tg.neighbor(k);
        }
        drop(tg);
        let trace = arena.finish();
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.distinct_pcs, 2, "oa site + na site");
    }
}
