//! Instrumented pull-based PageRank.

use ccsim_trace::{Trace, TraceArena};

use crate::traced::TracedCsr;
use crate::Graph;

/// Traced pull PageRank: `iterations` sweeps over the transpose graph.
/// Returns the trace and the final ranks (identical to
/// [`crate::kernels::pagerank`]).
///
/// The inner loop's load of `contrib[u]` indexed by NA contents is the
/// irregular SpMV access the paper's extended abstract highlights.
pub fn pagerank(g: &Graph, transpose: &Graph, iterations: u32, damping: f64) -> (Trace, Vec<f64>) {
    let n = g.num_vertices() as usize;
    assert_eq!(transpose.num_vertices() as usize, n, "transpose mismatch");
    let arena = TraceArena::new("pr");
    // Kernel iterates the transpose (incoming edges); out-degrees come from
    // the forward graph's degree array (precomputed, as GAP does).
    let csr = TracedCsr::new(&arena, transpose);
    let s_deg = arena.code_site();
    let s_rank_rd = arena.code_site();
    let s_rank_wr = arena.code_site();
    let s_contrib_rd = arena.code_site();
    let s_contrib_wr = arena.code_site();

    let degrees: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let deg = arena.vec_of(degrees);
    let mut rank = arena.vec_of(vec![1.0f64 / n as f64; n]);
    let mut contrib = arena.vec_of(vec![0.0f64; n]);
    let base = (1.0 - damping) / n as f64;

    for _ in 0..iterations {
        for v in 0..n {
            arena.work(6);
            let d = deg.get(s_deg, v);
            let r = rank.get(s_rank_rd, v);
            contrib.set(s_contrib_wr, v, if d == 0 { 0.0 } else { r / d as f64 });
        }
        for v in 0..n as u32 {
            let (lo, hi) = csr.bounds(v);
            let mut incoming = 0.0f64;
            for k in lo..hi {
                arena.work(7);
                let u = csr.neighbor(k);
                incoming += contrib.get(s_contrib_rd, u as usize);
            }
            arena.work(6);
            rank.set(s_rank_wr, v as usize, base + damping * incoming);
        }
    }

    let result = rank.into_inner();
    drop(contrib);
    drop(deg);
    drop(csr);
    (arena.finish(), result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::power_law;
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn matches_reference_exactly() {
        let g = power_law(9, 8, 2.0, 1);
        let t = g.transpose();
        let (_, traced) = pagerank(&g, &t, 5, 0.85);
        let reference = crate::kernels::pagerank(&g, &t, 5, 0.85);
        for (a, b) in traced.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn trace_scales_with_iterations() {
        let g = power_law(8, 6, 2.0, 2);
        let t = g.transpose();
        let (t1, _) = pagerank(&g, &t, 1, 0.85);
        let (t3, _) = pagerank(&g, &t, 3, 0.85);
        assert!(t3.len() > 2 * t1.len());
    }

    #[test]
    fn few_pcs_many_addresses() {
        let g = power_law(10, 8, 1.9, 3);
        let t = g.transpose();
        let (trace, _) = pagerank(&g, &t, 2, 0.85);
        let stats = TraceStats::compute(&trace);
        assert!(stats.distinct_pcs <= 10, "pcs {}", stats.distinct_pcs);
        assert!(stats.mean_blocks_per_pc > 100.0, "addresses per pc {}", stats.mean_blocks_per_pc);
    }
}
