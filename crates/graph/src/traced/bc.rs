//! Instrumented Brandes betweenness centrality.

use ccsim_trace::{Trace, TraceArena};

use crate::traced::TracedCsr;
use crate::Graph;

/// Traced Brandes betweenness centrality from the given sources. Returns
/// the trace and per-vertex scores (identical to
/// [`crate::kernels::betweenness`]).
pub fn betweenness(g: &Graph, sources: &[u32]) -> (Trace, Vec<f64>) {
    let n = g.num_vertices() as usize;
    let arena = TraceArena::new("bc");
    let csr = TracedCsr::new(&arena, g);
    let s_depth_rd = arena.code_site();
    let s_depth_wr = arena.code_site();
    let s_sigma_rd = arena.code_site();
    let s_sigma_wr = arena.code_site();
    let s_delta_rd = arena.code_site();
    let s_delta_wr = arena.code_site();
    let s_cent = arena.code_site();
    let s_order = arena.code_site();

    let mut centrality = arena.vec_of(vec![0.0f64; n]);
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
        let mut depth = arena.vec_of(vec![u32::MAX; n]);
        let mut sigma = arena.vec_of(vec![0.0f64; n]);
        let mut order = arena.vec_of(vec![0u64; n]);
        let mut order_len = 0usize;
        depth.set(s_depth_wr, s as usize, 0);
        sigma.set(s_sigma_wr, s as usize, 1.0);
        let mut frontier = vec![s];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                arena.work(6);
                order.set(s_order, order_len, u as u64);
                order_len += 1;
                let du = depth.get(s_depth_rd, u as usize);
                let (lo, hi) = csr.bounds(u);
                for k in lo..hi {
                    arena.work(6);
                    let v = csr.neighbor(k);
                    let dv = depth.get(s_depth_rd, v as usize);
                    if dv == u32::MAX {
                        depth.set(s_depth_wr, v as usize, du + 1);
                        let su = sigma.get(s_sigma_rd, u as usize);
                        sigma.update(s_sigma_rd, s_sigma_wr, v as usize, |x| x + su);
                        next.push(v);
                    } else if dv == du + 1 {
                        let su = sigma.get(s_sigma_rd, u as usize);
                        sigma.update(s_sigma_rd, s_sigma_wr, v as usize, |x| x + su);
                    }
                }
            }
            frontier = next;
        }
        let mut delta = arena.vec_of(vec![0.0f64; n]);
        for i in (0..order_len).rev() {
            arena.work(7);
            let u = order.get(s_order, i) as u32;
            let du = depth.get(s_depth_rd, u as usize);
            let (lo, hi) = csr.bounds(u);
            for k in lo..hi {
                arena.work(7);
                let v = csr.neighbor(k);
                if depth.get(s_depth_rd, v as usize) == du + 1 {
                    let su = sigma.get(s_sigma_rd, u as usize);
                    let sv = sigma.get(s_sigma_rd, v as usize);
                    let dv = delta.get(s_delta_rd, v as usize);
                    delta.update(s_delta_rd, s_delta_wr, u as usize, |x| x + su / sv * (1.0 + dv));
                }
            }
            if u != s {
                let d = delta.get(s_delta_rd, u as usize);
                centrality.update(s_cent, s_cent, u as usize, |x| x + d);
            }
        }
        drop(depth);
        drop(sigma);
        drop(order);
        drop(delta);
    }

    let result = centrality.into_inner();
    drop(csr);
    (arena.finish(), result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn matches_reference() {
        let g = uniform(8, 6, 2);
        let (_, traced) = betweenness(&g, &[0, 5]);
        let reference = crate::kernels::betweenness(&g, &[0, 5]);
        for (i, (a, b)) in traced.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {i}: {a} vs {b}");
        }
    }

    #[test]
    fn trace_covers_forward_and_backward_passes() {
        let g = uniform(8, 8, 3);
        let (trace, _) = betweenness(&g, &[0]);
        // Forward + backward both scan edges: at least 2x edges records.
        assert!(trace.len() as u64 > 2 * g.num_edges() / 2);
        let stats = TraceStats::compute(&trace);
        assert!(stats.distinct_pcs <= 12, "pcs {}", stats.distinct_pcs);
    }
}
