//! Instrumented direction-optimizing BFS.

use ccsim_trace::{Trace, TraceArena};

use crate::kernels::NO_PARENT;
use crate::traced::TracedCsr;
use crate::Graph;

/// Frontier-size threshold divisor for switching to bottom-up (matches the
/// reference implementation).
const BOTTOM_UP_THRESHOLD_DIV: usize = 20;

/// Traced direction-optimizing BFS from `source`. Returns the captured
/// trace and the parent array (identical to [`crate::kernels::bfs`]).
pub fn bfs(g: &Graph, source: u32) -> (Trace, Vec<u32>) {
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");
    let arena = TraceArena::new("bfs");
    let csr = TracedCsr::new(&arena, g);
    let s_parent_rd = arena.code_site();
    let s_parent_wr = arena.code_site();
    let s_front_rd = arena.code_site();
    let s_front_wr = arena.code_site();
    let s_bitmap_rd = arena.code_site();
    let s_bitmap_wr = arena.code_site();

    // Property arrays use 64-bit node ids (GAP's int64 build), which
    // also doubles the randomly-accessed footprint per vertex.
    let mut parent = arena.vec_of(vec![NO_PARENT as u64; n]);
    // The sliding-queue frontier (contiguous storage, as in GAP).
    let mut queue = arena.vec_of(vec![0u64; n + 1]);
    // Bottom-up frontier bitmap, one byte per vertex.
    let mut bitmap = arena.vec_of(vec![0u8; n]);

    parent.set(s_parent_wr, source as usize, source as u64);
    queue.set(s_front_wr, 0, source as u64);
    let (mut q_lo, mut q_hi) = (0usize, 1usize);
    let mut frontier_len = 1usize;

    while frontier_len > 0 {
        if frontier_len > n / BOTTOM_UP_THRESHOLD_DIV {
            // Bottom-up step: mark the frontier in the bitmap, then every
            // unvisited vertex scans its neighbours for a marked one.
            for i in q_lo..q_hi {
                arena.work(7);
                let v = queue.get(s_front_rd, i);
                bitmap.set(s_bitmap_wr, v as usize, 1);
            }
            let mut next_len = 0usize;
            for v in 0..n as u32 {
                arena.work(7);
                if parent.get(s_parent_rd, v as usize) != NO_PARENT as u64 {
                    continue;
                }
                let (lo, hi) = csr.bounds(v);
                for k in lo..hi {
                    arena.work(6);
                    let u = csr.neighbor(k);
                    if bitmap.get(s_bitmap_rd, u as usize) == 1 {
                        parent.set(s_parent_wr, v as usize, u as u64);
                        queue.set(s_front_wr, (q_hi + next_len) % (n + 1), v as u64);
                        next_len += 1;
                        break;
                    }
                }
            }
            // Clear the bitmap for the next bottom-up epoch.
            for i in q_lo..q_hi {
                arena.work(2);
                let v = queue.get(s_front_rd, i);
                bitmap.set(s_bitmap_wr, v as usize, 0);
            }
            q_lo = q_hi;
            q_hi = (q_hi + next_len) % (n + 1);
            frontier_len = next_len;
        } else {
            // Top-down step: expand the frontier's out-edges.
            let mut next_len = 0usize;
            let (cur_lo, cur_hi) = (q_lo, q_hi);
            let mut i = cur_lo;
            while i != cur_hi {
                arena.work(7);
                let u = queue.get(s_front_rd, i) as u32;
                let (lo, hi) = csr.bounds(u);
                for k in lo..hi {
                    arena.work(6);
                    let v = csr.neighbor(k);
                    if parent.get(s_parent_rd, v as usize) == NO_PARENT as u64 {
                        parent.set(s_parent_wr, v as usize, u as u64);
                        queue.set(s_front_wr, (cur_hi + next_len) % (n + 1), v as u64);
                        next_len += 1;
                    }
                }
                i = (i + 1) % (n + 1);
            }
            q_lo = cur_hi;
            q_hi = (cur_hi + next_len) % (n + 1);
            frontier_len = next_len;
        }
    }

    let result: Vec<u32> = parent.into_inner().into_iter().map(|p| p as u32).collect();
    drop(queue);
    drop(bitmap);
    drop(csr);
    (arena.finish(), result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{kronecker, road, uniform};
    use ccsim_trace::stats::TraceStats;

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = uniform(9, 8, seed);
            let (_, traced) = bfs(&g, 0);
            // Parent arrays may differ (both valid BFS trees), but the
            // reached sets must match and the tree must be valid.
            let reference = crate::kernels::bfs(&g, 0);
            for v in 0..g.num_vertices() as usize {
                assert_eq!(
                    traced[v] == NO_PARENT,
                    reference[v] == NO_PARENT,
                    "seed {seed} vertex {v}"
                );
            }
            crate::kernels::verify_bfs_tree(&g, 0, &traced).unwrap();
        }
    }

    #[test]
    fn grid_fully_reached() {
        let g = road(10, 1);
        let (trace, parents) = bfs(&g, 0);
        assert!(parents.iter().all(|&p| p != NO_PARENT));
        assert!(trace.len() as u64 > g.num_edges(), "every edge examined");
    }

    #[test]
    fn trace_has_graph_kernel_signature() {
        // Few PCs, large footprint: the paper's central observation.
        let g = kronecker(12, 8, 3);
        let (trace, _) = bfs(&g, 0);
        let stats = TraceStats::compute(&trace);
        assert!(stats.distinct_pcs <= 12, "pcs {}", stats.distinct_pcs);
        assert!(stats.footprint_bytes > 100 * 1024, "footprint {}", stats.footprint_bytes);
        assert!(stats.instructions > trace.len() as u64, "nonmem accounted");
    }

    #[test]
    fn dense_graph_triggers_bottom_up() {
        // With degree 16 the second frontier exceeds n/20, so the bitmap
        // sites must appear in the trace.
        let g = uniform(10, 16, 5);
        let (trace, _) = bfs(&g, 0);
        let stats = TraceStats::compute(&trace);
        assert!(stats.distinct_pcs >= 8, "bottom-up sites missing: {}", stats.distinct_pcs);
    }
}
