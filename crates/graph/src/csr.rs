//! Compressed Sparse Row graph representation.
//!
//! The CSR encoding is exactly the paper's Figure 1: an *Offset Array* (OA)
//! of `n + 1` indices into a *Neighbours Array* (NA) of adjacency lists.
//! Optional per-edge weights support SSSP. Kernels that pull along incoming
//! edges (PageRank) use the [`Graph::transpose`] (the CSC view).

use std::fmt;

/// An immutable directed graph in CSR form. Undirected graphs are stored
/// with both edge directions materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
    weights: Option<Vec<u32>>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge list. Self-loops are
    /// dropped, duplicates removed, and adjacency lists sorted. If
    /// `undirected`, each edge is inserted in both directions.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: u32, edges: &[(u32, u32)], undirected: bool) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            if u == v {
                continue;
            }
            adj[u as usize].push(v);
            if undirected {
                adj[v as usize].push(u);
            }
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u64);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u64);
        }
        Graph { offsets, neighbors, weights: None }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges (twice the undirected edge count).
    pub fn num_edges(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Sorted out-neighbour list of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Edge weights aligned with [`Graph::raw_neighbors`], if attached.
    pub fn weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// Weights of `v`'s out-edges (aligned with [`Graph::neighbors`]).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no weights.
    pub fn edge_weights(&self, v: u32) -> &[u32] {
        let w = self.weights.as_ref().expect("graph has no weights");
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &w[lo..hi]
    }

    /// Attaches deterministic pseudo-random weights in `1..=max_weight`
    /// derived from the edge endpoints (so both directions of an
    /// undirected edge carry the same weight).
    pub fn with_random_weights(mut self, max_weight: u32, seed: u64) -> Self {
        assert!(max_weight >= 1, "weights must be at least 1");
        let mut w = Vec::with_capacity(self.neighbors.len());
        for v in 0..self.num_vertices() {
            for &u in self.neighbors(v) {
                let (a, b) = if v < u { (v, u) } else { (u, v) };
                let h = mix(seed ^ ((a as u64) << 32 | b as u64));
                w.push(1 + (h % max_weight as u64) as u32);
            }
        }
        self.weights = Some(w);
        self
    }

    /// The raw offset array (the paper's OA).
    pub fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw neighbour array (the paper's NA).
    pub fn raw_neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// Builds the transposed graph (CSC view: incoming adjacency).
    pub fn transpose(&self) -> Graph {
        let n = self.num_vertices();
        let mut indeg = vec![0u64; n as usize + 1];
        for &v in &self.neighbors {
            indeg[v as usize + 1] += 1;
        }
        for i in 1..indeg.len() {
            indeg[i] += indeg[i - 1];
        }
        let offsets = indeg.clone();
        let mut cursor = indeg;
        let mut neighbors = vec![0u32; self.neighbors.len()];
        let mut weights = self.weights.as_ref().map(|_| vec![0u32; self.neighbors.len()]);
        for u in 0..n {
            let lo = self.offsets[u as usize] as usize;
            for (k, &v) in self.neighbors(u).iter().enumerate() {
                let slot = cursor[v as usize] as usize;
                cursor[v as usize] += 1;
                neighbors[slot] = u;
                if let (Some(dst), Some(src)) = (&mut weights, &self.weights) {
                    dst[slot] = src[lo + k];
                }
            }
        }
        Graph { offsets, neighbors, weights }
    }

    /// Structural invariants: monotone offsets, in-range sorted unique
    /// neighbour lists, weight array alignment.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if *self.offsets.last().expect("offsets non-empty") != self.neighbors.len() as u64 {
            return Err("final offset must equal edge count".into());
        }
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets must be non-decreasing".into());
            }
        }
        for v in 0..n {
            let ns = self.neighbors(v);
            for pair in ns.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("neighbours of {v} not sorted/unique"));
                }
            }
            if let Some(&max) = ns.last() {
                if max >= n {
                    return Err(format!("neighbour of {v} out of range"));
                }
            }
        }
        if let Some(w) = &self.weights {
            if w.len() != self.neighbors.len() {
                return Err("weights misaligned with neighbours".into());
            }
            if w.contains(&0) {
                return Err("weights must be positive".into());
            }
        }
        Ok(())
    }

    /// Memory footprint of the CSR arrays in bytes (OA + NA + weights).
    pub fn footprint_bytes(&self) -> u64 {
        (self.offsets.len() * 8
            + self.neighbors.len() * 4
            + self.weights.as_ref().map_or(0, |w| w.len() * 4)) as u64
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph: {} vertices, {} directed edges, {:.1} avg degree",
            self.num_vertices(),
            self.num_edges(),
            self.num_edges() as f64 / self.num_vertices().max(1) as f64
        )
    }
}

#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (directed).
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], false)
    }

    #[test]
    fn from_edges_builds_sorted_unique_lists() {
        let g = Graph::from_edges(3, &[(0, 2), (0, 1), (0, 2), (0, 0)], false);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
        g.verify().unwrap();
    }

    #[test]
    fn undirected_materializes_both_directions() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], true);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.num_edges(), 4);
        g.verify().unwrap();
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.num_edges(), g.num_edges());
        t.verify().unwrap();
        // Transposing twice restores the original.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn weights_are_symmetric_for_undirected_graphs() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true).with_random_weights(64, 42);
        g.verify().unwrap();
        let w01 = g.edge_weights(0)[g.neighbors(0).iter().position(|&x| x == 1).unwrap()];
        let w10 = g.edge_weights(1)[g.neighbors(1).iter().position(|&x| x == 0).unwrap()];
        assert_eq!(w01, w10);
        assert!((1..=64).contains(&w01));
    }

    #[test]
    fn transpose_carries_weights() {
        let g = diamond().with_random_weights(16, 7);
        let t = g.transpose();
        t.verify().unwrap();
        // Weight of edge 0->1 equals weight of transposed edge 1->0... i.e.
        // in t, vertex 1's incoming list contains 0 with the same weight.
        let w_fwd = g.edge_weights(0)[g.neighbors(0).iter().position(|&x| x == 1).unwrap()];
        let w_rev = t.edge_weights(1)[t.neighbors(1).iter().position(|&x| x == 0).unwrap()];
        assert_eq!(w_fwd, w_rev);
    }

    #[test]
    fn footprint_accounts_all_arrays() {
        let g = diamond();
        assert_eq!(g.footprint_bytes(), 5 * 8 + 4 * 4);
        let gw = diamond().with_random_weights(8, 0);
        assert_eq!(gw.footprint_bytes(), 5 * 8 + 4 * 4 + 4 * 4);
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn out_of_range_edge_rejected() {
        let _ = Graph::from_edges(2, &[(0, 5)], false);
    }

    #[test]
    fn display_summarizes() {
        let s = diamond().to_string();
        assert!(s.contains("4 vertices"));
    }
}
