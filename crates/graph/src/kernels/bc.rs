//! Betweenness centrality (Brandes' algorithm).

use crate::Graph;

/// Brandes betweenness centrality approximated from the given source
/// vertices (GAP's `bc` uses a small sample of sources; exact BC would
/// iterate all of them).
///
/// For each source: a BFS computes shortest-path counts `sigma`, then a
/// reverse sweep accumulates dependencies `delta` along the BFS DAG.
/// Returns per-vertex centrality scores (unnormalized).
pub fn betweenness(g: &Graph, sources: &[u32]) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut centrality = vec![0.0f64; n];
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
        // Forward BFS recording order, depth and path counts.
        let mut depth = vec![u32::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut order = Vec::with_capacity(n);
        depth[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut frontier = vec![s];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                order.push(u);
                for &v in g.neighbors(u) {
                    let (du, dv) = (depth[u as usize], depth[v as usize]);
                    if dv == u32::MAX {
                        depth[v as usize] = du + 1;
                        sigma[v as usize] += sigma[u as usize];
                        next.push(v);
                    } else if dv == du + 1 {
                        sigma[v as usize] += sigma[u as usize];
                    }
                }
            }
            frontier = next;
        }
        // Backward dependency accumulation.
        let mut delta = vec![0.0f64; n];
        for &u in order.iter().rev() {
            for &v in g.neighbors(u) {
                if depth[v as usize] == depth[u as usize] + 1 {
                    let share = sigma[u as usize] / sigma[v as usize];
                    delta[u as usize] += share * (1.0 + delta[v as usize]);
                }
            }
            if u != s {
                centrality[u as usize] += delta[u as usize];
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;

    #[test]
    fn path_center_has_highest_centrality() {
        // 0 - 1 - 2: all shortest paths through 1.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], true);
        let c = betweenness(&g, &[0, 1, 2]);
        assert!(c[1] > c[0]);
        assert!(c[1] > c[2]);
        // From source 0: path 0->2 passes through 1 (delta 1); same from 2.
        assert!((c[1] - 2.0).abs() < 1e-9, "center score {}", c[1]);
    }

    #[test]
    fn star_center_dominates() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)], true);
        let c = betweenness(&g, &[1, 2, 3, 4]);
        assert!(c[0] > 5.0, "star center {}", c[0]);
        for (leaf, &score) in c.iter().enumerate().skip(1) {
            assert!(score < 1e-9, "leaf {leaf} has {score}");
        }
    }

    #[test]
    fn sigma_counts_multiple_shortest_paths() {
        // Diamond 0-1-3, 0-2-3: both 1 and 2 carry half the dependency.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], true);
        let c = betweenness(&g, &[0]);
        assert!((c[1] - 0.5).abs() < 1e-9);
        assert!((c[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scores_are_finite_on_random_graphs() {
        let g = uniform(9, 8, 3);
        let c = betweenness(&g, &[0, 7, 99]);
        assert!(c.iter().all(|x| x.is_finite()));
        assert!(c.iter().any(|&x| x > 0.0));
    }
}
