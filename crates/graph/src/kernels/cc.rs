//! Connected components (Shiloach–Vishkin).

use crate::Graph;

/// Shiloach–Vishkin connected components: repeated *hooking* (adopt the
/// smaller label of any neighbour) and *pointer-jumping* (path compression
/// of the label forest) until a fixpoint. Returns a label per vertex;
/// two vertices share a label iff they are connected.
///
/// The access pattern — scanning NA while randomly chasing the `comp`
/// array — is GAP `cc`'s signature load on the memory system.
pub fn connected_components(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut comp: Vec<u32> = (0..n).collect();
    loop {
        let mut changed = false;
        // Hooking: adopt the smaller component label across each edge.
        for u in 0..n {
            for &v in g.neighbors(u) {
                let (cu, cv) = (comp[u as usize], comp[v as usize]);
                if cu < cv && cv == comp[cv as usize] {
                    comp[cv as usize] = cu;
                    changed = true;
                }
            }
        }
        // Pointer jumping: compress label chains.
        for v in 0..n {
            let mut c = comp[v as usize];
            while c != comp[c as usize] {
                c = comp[c as usize];
            }
            comp[v as usize] = c;
        }
        if !changed {
            return comp;
        }
    }
}

/// Counts distinct component labels (test helper).
#[cfg(test)]
pub(crate) fn component_count(comp: &[u32]) -> usize {
    let mut labels: Vec<u32> = comp.to_vec();
    labels.sort_unstable();
    labels.dedup();
    labels.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{road, uniform};

    #[test]
    fn two_islands_two_labels() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)], true);
        let c = connected_components(&g);
        assert_eq!(component_count(&c), 2);
        assert_eq!(c[0], c[2]);
        assert_eq!(c[3], c[5]);
        assert_ne!(c[0], c[3]);
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let g = Graph::from_edges(4, &[(0, 1)], true);
        let c = connected_components(&g);
        assert_eq!(component_count(&c), 3);
    }

    #[test]
    fn grid_is_one_component() {
        let g = road(10, 3);
        let c = connected_components(&g);
        assert_eq!(component_count(&c), 1);
    }

    #[test]
    fn labels_agree_with_bfs_reachability() {
        let g = uniform(9, 2, 11); // sparse: several components
        let c = connected_components(&g);
        // BFS from vertex 0: all reached vertices share c[0], none others.
        let p = crate::kernels::bfs(&g, 0);
        for v in 0..g.num_vertices() {
            let reached = p[v as usize] != crate::kernels::NO_PARENT;
            assert_eq!(reached, c[v as usize] == c[0], "vertex {v}");
        }
    }

    #[test]
    fn labels_are_canonical_minimum() {
        let g = Graph::from_edges(4, &[(3, 2), (2, 1), (1, 0)], true);
        let c = connected_components(&g);
        assert_eq!(c, vec![0, 0, 0, 0]);
    }
}
