//! PageRank (pull formulation).

use crate::Graph;

/// Pull-based PageRank: `iterations` Jacobi sweeps where each vertex sums
/// `rank[u] / out_degree(u)` over its *incoming* neighbours, which is the
/// access pattern GAP's `pr` exhibits (random reads of the rank array
/// indexed by NA contents).
///
/// `transpose` must be `g.transpose()` (taken as a parameter so callers
/// can reuse it); `damping` is the usual 0.85.
pub fn pagerank(g: &Graph, transpose: &Graph, iterations: u32, damping: f64) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    assert_eq!(transpose.num_vertices() as usize, n, "transpose mismatch");
    assert!((0.0..=1.0).contains(&damping), "damping must be in [0,1]");
    let base = (1.0 - damping) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iterations {
        for v in 0..n {
            let d = g.degree(v as u32);
            contrib[v] = if d == 0 { 0.0 } else { rank[v] / d as f64 };
        }
        for v in 0..n as u32 {
            let incoming: f64 = transpose.neighbors(v).iter().map(|&u| contrib[u as usize]).sum();
            rank[v as usize] = base + damping * incoming;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::power_law;

    #[test]
    fn uniform_cycle_has_uniform_rank() {
        // Directed 4-cycle: perfectly symmetric, all ranks equal.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], false);
        let t = g.transpose();
        let r = pagerank(&g, &t, 50, 0.85);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-6, "rank {x}");
        }
    }

    #[test]
    fn hub_receives_more_rank() {
        // Star: 1,2,3 all point to 0.
        let g = Graph::from_edges(4, &[(1, 0), (2, 0), (3, 0)], false);
        let t = g.transpose();
        let r = pagerank(&g, &t, 30, 0.85);
        assert!(r[0] > r[1] * 3.0, "hub rank {} vs leaf {}", r[0], r[1]);
    }

    #[test]
    fn ranks_sum_to_at_most_one() {
        let g = power_law(10, 8, 2.0, 3);
        let t = g.transpose();
        let r = pagerank(&g, &t, 20, 0.85);
        let sum: f64 = r.iter().sum();
        // Dangling vertices leak rank; the sum stays in (0, 1].
        assert!(sum > 0.2 && sum <= 1.0 + 1e-9, "rank sum {sum}");
    }

    #[test]
    fn more_iterations_converge() {
        let g = power_law(9, 8, 2.0, 4);
        let t = g.transpose();
        let r1 = pagerank(&g, &t, 30, 0.85);
        let r2 = pagerank(&g, &t, 31, 0.85);
        let delta: f64 = r1.iter().zip(&r2).map(|(a, b)| (a - b).abs()).sum();
        assert!(delta < 1e-3, "ranks should be near fixpoint, delta {delta}");
    }
}
