//! Breadth-first search with direction optimization.

use crate::kernels::NO_PARENT;
use crate::Graph;

/// Fraction of vertices the frontier must exceed to switch to bottom-up
/// traversal (GAP's alpha/beta heuristic simplified to a single ratio).
const BOTTOM_UP_THRESHOLD_DIV: usize = 20;

/// Direction-optimizing BFS from `source`, returning the parent array
/// (`NO_PARENT` for unreached vertices; the source is its own parent).
///
/// Top-down steps scan the frontier's adjacency lists; once the frontier
/// exceeds `n / 20`, bottom-up steps instead scan *unvisited* vertices
/// looking for any visited neighbour — the optimization that makes GAP's
/// BFS access pattern so irregular on low-diameter graphs.
pub fn bfs(g: &Graph, source: u32) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");
    let mut parent = vec![NO_PARENT; n];
    parent[source as usize] = source;
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        if frontier.len() > n / BOTTOM_UP_THRESHOLD_DIV {
            // Bottom-up: each unvisited vertex adopts any visited neighbour.
            let in_frontier: Vec<bool> = {
                let mut f = vec![false; n];
                for &v in &frontier {
                    f[v as usize] = true;
                }
                f
            };
            let mut next = Vec::new();
            for v in 0..n as u32 {
                if parent[v as usize] != NO_PARENT {
                    continue;
                }
                for &u in g.neighbors(v) {
                    if in_frontier[u as usize] {
                        parent[v as usize] = u;
                        next.push(v);
                        break;
                    }
                }
            }
            frontier = next;
        } else {
            // Top-down: expand the frontier's out-edges.
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in g.neighbors(u) {
                    if parent[v as usize] == NO_PARENT {
                        parent[v as usize] = u;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
    }
    parent
}

/// Validates a BFS parent array: every reached vertex's parent edge exists
/// and depths are consistent (parent depth + 1). Used by tests.
#[cfg(test)]
pub(crate) fn verify_bfs_tree(g: &Graph, source: u32, parent: &[u32]) -> Result<(), String> {
    let n = g.num_vertices() as usize;
    if parent[source as usize] != source {
        return Err("source must be its own parent".into());
    }
    // Compute depths by following parents (with cycle guard).
    for v in 0..n as u32 {
        let p = parent[v as usize];
        if p == NO_PARENT || v == source {
            continue;
        }
        if !g.neighbors(p).contains(&v) && !g.neighbors(v).contains(&p) {
            return Err(format!("parent edge {p}->{v} not in graph"));
        }
        let mut cur = v;
        let mut steps = 0;
        while cur != source {
            cur = parent[cur as usize];
            steps += 1;
            if steps > n {
                return Err(format!("cycle in parent chain of {v}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{road, uniform};
    use crate::kernels::NO_PARENT;

    #[test]
    fn path_graph_parents() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true);
        let p = bfs(&g, 0);
        assert_eq!(p, vec![0, 0, 1, 2]);
    }

    #[test]
    fn disconnected_vertex_unreached() {
        let g = Graph::from_edges(3, &[(0, 1)], true);
        let p = bfs(&g, 0);
        assert_eq!(p[2], NO_PARENT);
    }

    #[test]
    fn reaches_whole_grid() {
        let g = road(10, 1);
        let p = bfs(&g, 0);
        assert!(p.iter().all(|&x| x != NO_PARENT));
        verify_bfs_tree(&g, 0, &p).unwrap();
    }

    #[test]
    fn tree_valid_on_random_graph() {
        let g = uniform(10, 8, 5);
        let p = bfs(&g, 3);
        verify_bfs_tree(&g, 3, &p).unwrap();
    }

    #[test]
    fn bottom_up_and_top_down_agree_on_reachability() {
        // Dense graph triggers bottom-up; reachable set must match a plain
        // queue BFS.
        let g = uniform(9, 16, 7);
        let p = bfs(&g, 0);
        let mut seen = vec![false; g.num_vertices() as usize];
        let mut q = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    q.push_back(v);
                }
            }
        }
        for v in 0..g.num_vertices() {
            assert_eq!(p[v as usize] != NO_PARENT, seen[v as usize], "vertex {v}");
        }
    }
}
