//! Single-source shortest paths: delta-stepping, with a Dijkstra reference.

use std::collections::BinaryHeap;

use crate::kernels::INF;
use crate::Graph;

/// Delta-stepping SSSP from `source` over positive edge weights.
///
/// Vertices are bucketed by `distance / delta`; each epoch relaxes the
/// lowest non-empty bucket to a fixpoint (re-processing vertices whose
/// tentative distance improves within the bucket), then moves on. With
/// `delta ~ average weight`, this is GAP's `sssp` algorithm and access
/// pattern (bucket churn + random `dist` updates).
///
/// # Panics
///
/// Panics if the graph has no weights or `delta == 0`.
pub fn sssp(g: &Graph, source: u32, delta: u32) -> Vec<u32> {
    assert!(delta > 0, "delta must be positive");
    assert!(g.weights().is_some(), "sssp requires an edge-weighted graph");
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new()];
    buckets[0].push(source);
    let mut next_bucket = 0usize;
    while next_bucket < buckets.len() {
        // Settle the current bucket to a fixpoint.
        while let Some(u) = buckets[next_bucket].pop() {
            let du = dist[u as usize];
            if du == INF || (du / delta) as usize != next_bucket {
                continue; // stale entry: the vertex moved to a lower bucket
            }
            let ws = g.edge_weights(u);
            for (k, &v) in g.neighbors(u).iter().enumerate() {
                let nd = du.saturating_add(ws[k]);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    let b = (nd / delta) as usize;
                    if b >= buckets.len() {
                        buckets.resize_with(b + 1, Vec::new);
                    }
                    buckets[b].push(v);
                }
            }
        }
        next_bucket += 1;
    }
    dist
}

/// Textbook Dijkstra, used as the golden reference for delta-stepping.
pub fn dijkstra(g: &Graph, source: u32) -> Vec<u32> {
    assert!(g.weights().is_some(), "dijkstra requires an edge-weighted graph");
    let n = g.num_vertices() as usize;
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u32, source)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        let ws = g.edge_weights(u);
        for (k, &v) in g.neighbors(u).iter().enumerate() {
            let nd = d.saturating_add(ws[k]);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{kronecker, road, uniform};

    fn weighted(g: Graph) -> Graph {
        g.with_random_weights(64, 123)
    }

    #[test]
    fn line_graph_distances() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true);
        // Manual weights via random: instead check against dijkstra.
        let g = weighted(g);
        assert_eq!(sssp(&g, 0, 8), dijkstra(&g, 0));
    }

    #[test]
    fn unreachable_stays_inf() {
        let g = weighted(Graph::from_edges(3, &[(0, 1)], true));
        let d = sssp(&g, 0, 4);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = weighted(uniform(9, 6, seed));
            assert_eq!(sssp(&g, 0, 16), dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn matches_dijkstra_on_skewed_and_grid_graphs() {
        let k = weighted(kronecker(9, 8, 3));
        assert_eq!(sssp(&k, 1, 32), dijkstra(&k, 1));
        let r = weighted(road(10, 1));
        assert_eq!(sssp(&r, 7, 8), dijkstra(&r, 7));
    }

    #[test]
    fn delta_granularity_does_not_change_results() {
        let g = weighted(uniform(8, 8, 42));
        let base = dijkstra(&g, 5);
        for delta in [1, 3, 17, 1000] {
            assert_eq!(sssp(&g, 5, delta), base, "delta {delta}");
        }
    }

    #[test]
    #[should_panic(expected = "sssp requires an edge-weighted graph")]
    fn unweighted_graph_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)], true);
        let _ = sssp(&g, 0, 4);
    }
}
