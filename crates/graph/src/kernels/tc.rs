//! Triangle counting by ordered adjacency-list merging.

use crate::Graph;

/// Counts triangles: for each edge `(u, v)` with `u < v`, intersects the
/// sorted neighbour lists of `u` and `v` counting common neighbours
/// `w > v`. Each triangle `u < v < w` is counted exactly once — GAP's
/// `tc` formulation after its degree-ordering preprocessing step.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut count = 0u64;
    for u in 0..g.num_vertices() {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = g.neighbors(v);
            count += intersect_above(nu, nv, v);
        }
    }
    count
}

/// Counts elements above `floor` present in both sorted slices.
fn intersect_above(a: &[u32], b: &[u32], floor: u32) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x <= floor {
            i += 1;
        } else if y <= floor {
            j += 1;
        } else if x == y {
            count += 1;
            i += 1;
            j += 1;
        } else if x < y {
            i += 1;
        } else {
            j += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;

    #[test]
    fn single_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)], true);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn square_has_none_until_diagonal() {
        let square = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], true);
        assert_eq!(triangle_count(&square), 0);
        let with_diag = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], true);
        assert_eq!(triangle_count(&with_diag), 2);
    }

    #[test]
    fn complete_graph_count() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, &edges, true);
        assert_eq!(triangle_count(&g), 10);
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        let g = uniform(7, 6, 9);
        let n = g.num_vertices();
        let mut brute = 0u64;
        for u in 0..n {
            for &v in g.neighbors(u).iter().filter(|&&v| v > u) {
                for &w in g.neighbors(v).iter().filter(|&&w| w > v) {
                    if g.neighbors(u).binary_search(&w).is_ok() {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
    }
}
