//! Reference (untraced) implementations of the six GAP benchmark kernels.
//!
//! These are the "golden" algorithms: the instrumented versions in
//! [`crate::traced`] must produce identical results, which the test suites
//! verify on randomized graphs. Algorithms follow the GAP benchmark
//! specification: direction-optimizing BFS, pull PageRank, Shiloach–Vishkin
//! connected components, Brandes betweenness centrality, delta-stepping
//! SSSP and ordered-merge triangle counting.

mod bc;
mod bfs;
mod cc;
mod pr;
mod sssp;
mod tc;

pub use bc::betweenness;
pub use bfs::bfs;
#[cfg(test)]
pub(crate) use bfs::verify_bfs_tree;
pub use cc::connected_components;
pub use pr::pagerank;
pub use sssp::{dijkstra, sssp};
pub use tc::triangle_count;

/// Sentinel for "no parent / unreached" in BFS trees.
pub const NO_PARENT: u32 = u32::MAX;
/// Sentinel distance for unreachable vertices in SSSP.
pub const INF: u32 = u32::MAX;
