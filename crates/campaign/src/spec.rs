//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] describes a full experiment grid — workloads (by
//! name or `suite:` selector), LLC replacement policies, and `SimConfig`
//! variants (an LLC capacity sweep over a base platform) — and parses from
//! a small JSON format so campaigns can be checked into the repo:
//!
//! ```json
//! {
//!   "name": "llc_sweep_quick",
//!   "scale": "quick",
//!   "seed": 0,
//!   "base_config": "cascade_lake",
//!   "llc_scales": [1, 2, 4],
//!   "workloads": ["bfs.kron", "suite:xsbench"],
//!   "policies": ["lru", "srrip", "hawkeye"]
//! }
//! ```
//!
//! `name`, `workloads` and `policies` are required; `scale` defaults to
//! `"quick"`, `seed` to `0`, `base_config` to `"cascade_lake"` and
//! `llc_scales` to `[1]`.

use ccsim_core::SimConfig;
use ccsim_policies::PolicyKind;
use ccsim_workloads::{is_known_workload, Suite, SuiteScale};

use crate::json::Json;

/// The platform a campaign's config variants are derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseConfig {
    /// The paper's Cascade Lake-like setup ([`SimConfig::cascade_lake`]).
    CascadeLake,
    /// The tiny test setup ([`SimConfig::tiny`]) — for fast smoke specs.
    Tiny,
}

impl BaseConfig {
    /// Stable spec-file identifier.
    pub fn name(self) -> &'static str {
        match self {
            BaseConfig::CascadeLake => "cascade_lake",
            BaseConfig::Tiny => "tiny",
        }
    }

    /// Materializes the base [`SimConfig`].
    pub fn config(self) -> SimConfig {
        match self {
            BaseConfig::CascadeLake => SimConfig::cascade_lake(),
            BaseConfig::Tiny => SimConfig::tiny(),
        }
    }

    fn parse(s: &str) -> Result<BaseConfig, String> {
        match s {
            "cascade_lake" => Ok(BaseConfig::CascadeLake),
            "tiny" => Ok(BaseConfig::Tiny),
            other => {
                Err(format!("unknown base_config {other:?}, expected \"cascade_lake\" or \"tiny\""))
            }
        }
    }
}

/// A declarative description of one experiment campaign: the full
/// (workload x policy x config) grid plus naming and seeding.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (also names output files) — `[a-z0-9_-]+`.
    pub name: String,
    /// Synthesis seed, threaded into the stochastic components of every
    /// workload's generation (0 reproduces the paper's traces); also part
    /// of the trace-cache key and the report identity.
    pub seed: u64,
    /// Workload scale preset applied to every workload.
    pub scale: SuiteScale,
    /// Workload selectors in declaration order: canonical workload names
    /// (`bfs.kron`, `spec.stream`, ...), `suite:<spec|xsbench|qualcomm|gap>`,
    /// or `trace:<path>` — an external ChampSim/CVP/CCTR trace file,
    /// ingested on first use (relative paths resolve against the working
    /// directory of the run).
    pub workloads: Vec<String>,
    /// Policies to sweep, in column order.
    pub policies: Vec<PolicyKind>,
    /// Base platform for every config variant.
    pub base_config: BaseConfig,
    /// LLC capacity multipliers (each a power of two); one config variant
    /// per entry.
    pub llc_scales: Vec<u32>,
}

impl CampaignSpec {
    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field, unknown
    /// policy, or invalid workload selector.
    pub fn from_json_str(text: &str) -> Result<CampaignSpec, String> {
        let root = Json::parse(text).map_err(|e| format!("spec is not valid JSON: {e}"))?;
        let Json::Obj(_) = root else {
            return Err("spec must be a JSON object".into());
        };

        let name = root
            .get("name")
            .and_then(Json::as_str)
            .ok_or("spec needs a string \"name\"")?
            .to_owned();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_-".contains(c))
        {
            return Err(format!("campaign name {name:?} must match [a-z0-9_-]+"));
        }

        let seed = match root.get("seed") {
            None => 0,
            Some(v) => v.as_u64().ok_or("\"seed\" must be a non-negative integer")?,
        };

        let scale = match root.get("scale") {
            None => SuiteScale::Quick,
            Some(v) => v.as_str().ok_or("\"scale\" must be a string")?.parse()?,
        };

        let base_config = match root.get("base_config") {
            None => BaseConfig::CascadeLake,
            Some(v) => BaseConfig::parse(v.as_str().ok_or("\"base_config\" must be a string")?)?,
        };

        let llc_scales = match root.get("llc_scales") {
            None => vec![1],
            Some(v) => {
                let items = v.as_array().ok_or("\"llc_scales\" must be an array")?;
                let scales: Vec<u32> = items
                    .iter()
                    .map(|i| {
                        i.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .filter(|n| n.is_power_of_two())
                            .ok_or_else(|| format!("llc scale {i} must be a power of two"))
                    })
                    .collect::<Result<_, _>>()?;
                if scales.is_empty() {
                    return Err("\"llc_scales\" must not be empty".into());
                }
                if let Some(d) = first_duplicate(&scales) {
                    return Err(format!("duplicate llc scale {d}"));
                }
                scales
            }
        };

        let workloads = string_list(&root, "workloads")?;
        if workloads.is_empty() {
            return Err("\"workloads\" must not be empty".into());
        }
        let policies: Vec<PolicyKind> = string_list(&root, "policies")?
            .iter()
            .map(|p| p.parse().map_err(|e| format!("{e}")))
            .collect::<Result<_, _>>()?;
        if policies.is_empty() {
            return Err("\"policies\" must not be empty".into());
        }
        if let Some(d) = first_duplicate(&policies) {
            return Err(format!("duplicate policy {:?}", d.name()));
        }

        let known = ["name", "seed", "scale", "base_config", "llc_scales", "workloads", "policies"];
        if let Json::Obj(pairs) = &root {
            for (k, _) in pairs {
                if !known.contains(&k.as_str()) {
                    return Err(format!("unknown spec field {k:?}"));
                }
            }
        }

        let spec = CampaignSpec { name, seed, scale, workloads, policies, base_config, llc_scales };
        spec.expand_workloads()?; // validate selectors eagerly
        Ok(spec)
    }

    /// Reads and parses a spec file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and parse errors with the path prepended.
    pub fn from_file(path: &std::path::Path) -> Result<CampaignSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Resolves the workload selectors into concrete workload names, in
    /// declaration order, deduplicated (first occurrence wins).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid selector.
    pub fn expand_workloads(&self) -> Result<Vec<String>, String> {
        let mut names: Vec<String> = Vec::new();
        let mut push = |n: String| {
            if !names.contains(&n) {
                names.push(n);
            }
        };
        for sel in &self.workloads {
            if let Some(suite) = sel.strip_prefix("suite:") {
                let suite = Suite::from_selector(suite).ok_or_else(|| {
                    format!("unknown suite selector {sel:?}, expected suite:<spec|xsbench|qualcomm|gap>")
                })?;
                suite.member_names().into_iter().for_each(&mut push);
            } else if let Some(path) = sel.strip_prefix("trace:") {
                // External trace file: the path is validated for shape
                // here and for existence/decodability when first used.
                if path.is_empty() {
                    return Err(format!("{sel:?} names no file, expected trace:<path>"));
                }
                push(sel.clone());
            } else if is_known_workload(sel) {
                push(sel.clone());
            } else {
                return Err(format!("unknown workload {sel:?}; try `ccsim workloads`"));
            }
        }
        Ok(names)
    }

    /// The config variants of the grid: `(label, config)` pairs, one per
    /// LLC scale, labelled `llc_x<scale>`.
    pub fn configs(&self) -> Vec<(String, SimConfig)> {
        self.llc_scales
            .iter()
            .map(|&s| (format!("llc_x{s}"), self.base_config.config().with_llc_scale(s)))
            .collect()
    }

    /// The canonical JSON form: every field explicit, workloads fully
    /// expanded. Two specs that describe the same grid render identically,
    /// which makes this the input to [`CampaignSpec::digest`] and the spec
    /// echo embedded in reports.
    pub fn canonical_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("seed", Json::int(self.seed)),
            ("scale", Json::str(self.scale.name())),
            ("base_config", Json::str(self.base_config.name())),
            (
                "llc_scales",
                Json::Arr(self.llc_scales.iter().map(|&s| Json::int(s as u64)).collect()),
            ),
            (
                "workloads",
                Json::Arr(
                    self.expand_workloads()
                        .expect("spec was validated at parse time")
                        .into_iter()
                        .map(Json::Str)
                        .collect(),
                ),
            ),
            ("policies", Json::Arr(self.policies.iter().map(|p| Json::str(p.name())).collect())),
        ])
    }

    /// FNV-1a digest of the canonical JSON, as 16 hex digits. Campaign
    /// journals record it so a resumed run can tell whether the journal
    /// belongs to the same grid.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_json().to_string().as_bytes()))
    }
}

/// The first value that appears more than once, if any. Duplicate
/// policies/scales would make distinct grid cells share a journal id.
fn first_duplicate<T: PartialEq + Copy>(items: &[T]) -> Option<T> {
    items.iter().enumerate().find(|(i, v)| items[..*i].contains(v)).map(|(_, v)| *v)
}

fn string_list(root: &Json, field: &str) -> Result<Vec<String>, String> {
    root.get(field)
        .and_then(Json::as_array)
        .ok_or(format!("spec needs an array \"{field}\""))?
        .iter()
        .map(|v| {
            v.as_str().map(str::to_owned).ok_or(format!("\"{field}\" entries must be strings"))
        })
        .collect()
}

/// 64-bit FNV-1a hash (stable, dependency-free; used for cache filenames
/// and spec digests, not security).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checked-in equivalents of the figure binaries' grids.
pub mod presets {
    use super::*;

    /// The Figure 3 grid: every suite, LRU plus the paper's six policies,
    /// on the unscaled Cascade Lake platform. Named `fig3_quick` / `fig3`
    /// by scale; `campaigns/fig3_quick.json` is the checked-in quick form.
    pub fn fig3_spec(scale: SuiteScale) -> CampaignSpec {
        let mut policies = vec![PolicyKind::Lru];
        policies.extend(PolicyKind::PAPER_POLICIES);
        CampaignSpec {
            name: match scale {
                SuiteScale::Quick => "fig3_quick",
                SuiteScale::Full => "fig3",
            }
            .to_owned(),
            seed: 0,
            scale,
            workloads: vec![
                "suite:spec".into(),
                "suite:xsbench".into(),
                "suite:qualcomm".into(),
                "suite:gap".into(),
            ],
            policies,
            base_config: BaseConfig::CascadeLake,
            llc_scales: vec![1],
        }
    }

    /// The Figure 2 grid: the 35 GAP workloads under the LRU baseline.
    pub fn fig2_spec(scale: SuiteScale) -> CampaignSpec {
        CampaignSpec {
            name: match scale {
                SuiteScale::Quick => "fig2_quick",
                SuiteScale::Full => "fig2",
            }
            .to_owned(),
            seed: 0,
            scale,
            workloads: vec!["suite:gap".into()],
            policies: vec![PolicyKind::Lru],
            base_config: BaseConfig::CascadeLake,
            llc_scales: vec![1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "name": "mini",
        "workloads": ["xsbench.small"],
        "policies": ["lru", "srrip"]
    }"#;

    #[test]
    fn minimal_spec_gets_defaults() {
        let s = CampaignSpec::from_json_str(MINIMAL).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.seed, 0);
        assert_eq!(s.scale, SuiteScale::Quick);
        assert_eq!(s.base_config, BaseConfig::CascadeLake);
        assert_eq!(s.llc_scales, vec![1]);
        assert_eq!(s.policies, vec![PolicyKind::Lru, PolicyKind::Srrip]);
        assert_eq!(s.configs().len(), 1);
        assert_eq!(s.configs()[0].0, "llc_x1");
    }

    #[test]
    fn trace_selectors_pass_validation_and_expand_verbatim() {
        let s = CampaignSpec::from_json_str(
            r#"{"name": "x",
                "workloads": ["trace:/data/gap/bfs.champsim", "xsbench.small",
                              "trace:/data/gap/bfs.champsim"],
                "policies": ["lru"]}"#,
        )
        .unwrap();
        let w = s.expand_workloads().unwrap();
        assert_eq!(w, ["trace:/data/gap/bfs.champsim", "xsbench.small"], "dedup keeps order");
        // The selector survives the canonical echo and affects the digest.
        let text = s.canonical_json().to_pretty();
        let back = CampaignSpec::from_json_str(&text).unwrap();
        assert_eq!(back.digest(), s.digest());
        let err = CampaignSpec::from_json_str(
            r#"{"name": "x", "workloads": ["trace:"], "policies": ["lru"]}"#,
        )
        .unwrap_err();
        assert!(err.contains("trace:<path>"), "{err}");
    }

    #[test]
    fn suite_selectors_expand_in_order_and_dedup() {
        let s = CampaignSpec::from_json_str(
            r#"{"name": "x", "workloads": ["xsbench.large", "suite:xsbench"],
                "policies": ["lru"]}"#,
        )
        .unwrap();
        let w = s.expand_workloads().unwrap();
        assert_eq!(w, ["xsbench.large", "xsbench.small", "xsbench.xl"]);
    }

    #[test]
    fn gap_suite_expands_to_35_members() {
        let s = CampaignSpec::from_json_str(
            r#"{"name": "g", "workloads": ["suite:gap"], "policies": ["lru"]}"#,
        )
        .unwrap();
        assert_eq!(s.expand_workloads().unwrap().len(), 35);
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        let cases = [
            (r#"{"workloads": ["bfs.kron"], "policies": ["lru"]}"#, "name"),
            (r#"{"name": "Bad Name", "workloads": ["bfs.kron"], "policies": ["lru"]}"#, "name"),
            (r#"{"name": "x", "workloads": [], "policies": ["lru"]}"#, "workloads"),
            (r#"{"name": "x", "workloads": ["bfs.kron"], "policies": ["zap"]}"#, "zap"),
            (r#"{"name": "x", "workloads": ["nope.x"], "policies": ["lru"]}"#, "nope.x"),
            (r#"{"name": "x", "workloads": ["suite:mars"], "policies": ["lru"]}"#, "suite"),
            (
                r#"{"name": "x", "workloads": ["bfs.kron"], "policies": ["lru"],
                    "llc_scales": [3]}"#,
                "power of two",
            ),
            (
                r#"{"name": "x", "workloads": ["bfs.kron"], "policies": ["lru"],
                    "base_config": "xeon"}"#,
                "base_config",
            ),
            (
                r#"{"name": "x", "workloads": ["bfs.kron"], "policies": ["lru"],
                    "scale": "huge"}"#,
                "scale",
            ),
            (
                r#"{"name": "x", "workloads": ["bfs.kron"], "policies": ["lru"],
                    "surprise": 1}"#,
                "surprise",
            ),
            (
                r#"{"name": "x", "workloads": ["bfs.kron"], "policies": ["lru", "lru"]}"#,
                "duplicate policy",
            ),
            (
                r#"{"name": "x", "workloads": ["bfs.kron"], "policies": ["lru"],
                    "llc_scales": [2, 2]}"#,
                "duplicate llc scale",
            ),
        ];
        for (src, needle) in cases {
            let err = CampaignSpec::from_json_str(src).unwrap_err();
            assert!(err.contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn digest_is_stable_across_formatting_but_not_content() {
        let a = CampaignSpec::from_json_str(MINIMAL).unwrap();
        let b = CampaignSpec::from_json_str(
            r#"{"policies":["lru","srrip"],"workloads":["xsbench.small"],"name":"mini","seed":0}"#,
        )
        .unwrap();
        assert_eq!(a.digest(), b.digest(), "field order must not matter");
        let mut c = a.clone();
        c.seed = 1;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn canonical_json_roundtrips_through_parser() {
        let s = presets::fig3_spec(SuiteScale::Quick);
        let text = s.canonical_json().to_pretty();
        let back = CampaignSpec::from_json_str(&text).unwrap();
        assert_eq!(back.name, "fig3_quick");
        assert_eq!(back.expand_workloads().unwrap(), s.expand_workloads().unwrap());
        assert_eq!(back.digest(), s.digest());
    }

    #[test]
    fn llc_scale_configs_grow_capacity() {
        let s = CampaignSpec::from_json_str(
            r#"{"name": "x", "workloads": ["bfs.kron"], "policies": ["lru"],
                "llc_scales": [1, 4], "base_config": "tiny"}"#,
        )
        .unwrap();
        let configs = s.configs();
        assert_eq!(configs[0].0, "llc_x1");
        assert_eq!(configs[1].0, "llc_x4");
        assert_eq!(configs[1].1.llc.capacity_bytes(), 4 * configs[0].1.llc.capacity_bytes());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
