//! A minimal, dependency-free JSON tree with a deterministic serializer.
//!
//! The build environment has no crates.io access, so campaign specs and
//! reports cannot use `serde`; this module implements the small subset we
//! need: a [`Json`] value tree, a recursive-descent parser with byte-offset
//! error reporting, and compact/pretty emitters whose output is
//! byte-deterministic (object keys keep insertion order, numbers use a
//! fixed formatting rule).
//!
//! # Examples
//!
//! ```
//! use ccsim_campaign::json::Json;
//!
//! let v = Json::parse(r#"{"name": "fig3", "llc_scales": [1, 2]}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("fig3"));
//! assert_eq!(v.to_string(), r#"{"name":"fig3","llc_scales":[1,2]}"#);
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts (guards the recursion stack).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
///
/// Objects are ordered key/value lists — insertion order is preserved, and
/// serialization is therefore deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an exact integer value.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds 2^53 and would lose precision in an `f64`.
    pub fn int(n: u64) -> Json {
        assert!(n <= (1u64 << 53), "{n} cannot be represented exactly in JSON");
        Json::Num(n as f64)
    }

    /// Builds a number value; non-finite inputs become `null`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.trunc() == *v && *v <= (1u64 << 53) as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Serializes with 2-space indentation and a trailing newline —
    /// the canonical on-disk report format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                write_escaped(&pairs[i].0, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }
}

impl fmt::Display for Json {
    /// Compact serialization (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Numbers print as integers when they are exactly integral (the common
/// case: counters), otherwise via Rust's shortest-roundtrip `f64` display.
/// Both are deterministic functions of the bit pattern.
fn write_num(v: f64, out: &mut String) {
    use fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
    } else if v.trunc() == v && v.abs() <= (1u64 << 53) as f64 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hex = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                let code =
                    u32::from_str_radix(hex, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
                self.pos += 4;
                // Surrogates are rejected rather than paired: specs and
                // reports only contain ASCII identifiers.
                char::from_u32(code).ok_or_else(|| self.err("\\u escape is not a scalar"))?
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let v: f64 = text.parse().map_err(|_| self.err(format!("bad number {text:?}")))?;
        if !v.is_finite() {
            return Err(self.err(format!("number out of range: {text:?}")));
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#" {"a": [1, {"b": null}], "c": "x\ny"} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let src = r#"{"name":"x","n":3,"f":1.25,"arr":[true,null],"o":{}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        let pretty = v.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.ends_with('\n'));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = Json::parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("quote \" slash \\ tab \t ctrl \u{1} unicode ü".into());
        let s = v.to_string();
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert!(s.contains("\\u0001"));
        let u = Json::parse(r#""Aü""#).unwrap();
        assert_eq!(u.as_str(), Some("Aü"));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::int(7).to_string(), "7");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn u64_accessor_requires_exact_integers() {
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(Json::parse("12.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"12\"").unwrap().as_u64(), None);
    }

    #[test]
    #[should_panic(expected = "cannot be represented")]
    fn oversized_int_panics() {
        let _ = Json::int(u64::MAX);
    }
}
